"""Packaging for the sparse-attention serving reproduction.

The package metadata lives here (there is no ``pyproject.toml``) so that
``pip install -e .`` works in offline environments whose setuptools
predates full PEP 660 editable-install support.  Installing exposes the
``repro-ops`` operations console (see :mod:`repro.obs.cli`); in a bare
checkout the same CLI runs as ``PYTHONPATH=src python -m repro.obs.cli``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-attention",
    version="0.6.0",
    description=(
        "Reproduction of a graph-sparse attention serving stack: ordered-"
        "sparsity kernels, execution-plan compiler, paged KV cache, "
        "iteration-level continuous batching, and an observability layer."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "cli": ["click", "rich"],
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-ops = repro.obs.cli:main",
        ],
    },
)
