"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` (and
``python setup.py develop``) work in offline environments whose setuptools
predates full PEP 660 editable-install support.
"""

from setuptools import setup

setup()
