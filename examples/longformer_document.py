"""Long-document Longformer attention (the Fig. 6 left-panel workload).

A document-QA style transformer layer attends with Longformer's pattern: a
sliding window for every token plus a handful of global tokens (the question /
[CLS] positions).  This example builds that mask, inspects the attention graph
(degree skew explains why the Global kernel needs care), and executes it three
ways, exactly as Section V-F does:

* dense masked SDP (the PyTorch-style baseline),
* a sequential Local + Global kernel composition merged with online softmax,
* a single CSR kernel call on the union mask,

verifying all three agree and reporting the measured runtimes plus the
modelled A100 runtimes at the paper's 30k-45k context lengths.

Run:  python examples/longformer_document.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import longformer_attention, random_qkv, sdp_attention
from repro.core import csr_attention, multi_head_attention
from repro.core.implicit_kernels import local_attention
from repro.bench.experiments import fig6_modeled
from repro.bench.reporting import format_table
from repro.graph import AttentionGraph, degree_stats
from repro.masks import default_global_tokens, longformer_mask
from repro.utils.validation import allclose_report


def run_strategies(q, k, v, reach, global_tokens, mask_csr):
    """Time the three execution strategies of Fig. 6 and check they agree."""
    timings = {}

    start = time.perf_counter()
    dense = sdp_attention(q, k, v, mask_csr)
    timings["sdp (dense masked)"] = time.perf_counter() - start

    start = time.perf_counter()
    composed = longformer_attention(q, k, v, reach=reach, global_tokens=global_tokens)
    timings["local + global kernels"] = time.perf_counter() - start

    start = time.perf_counter()
    single = csr_attention(q, k, v, mask_csr)
    timings["single CSR kernel"] = time.perf_counter() - start

    for name, output in (("composed", composed.output), ("csr", single.output)):
        report = allclose_report(output, dense.output)
        assert report.ok, f"{name} diverged from the dense reference: {report}"
    return timings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()

    length = 1_024 if args.quick else 6_144
    reach = 32 if args.quick else 50
    dim, heads = 32, 4
    global_tokens = default_global_tokens(length, 3)

    print(f"== Longformer document attention: L={length:,}, reach={reach}, globals={list(global_tokens)}")
    mask = longformer_mask(reach=reach, global_tokens=global_tokens)
    mask_csr = mask.to_csr(length)
    print(f"   mask sparsity factor: {mask_csr.sparsity_factor:.5f} ({mask_csr.nnz:,} edges)")

    graph = AttentionGraph.from_mask(mask_csr)
    stats = degree_stats(graph)
    print(f"   attention graph: {stats.num_vertices:,} vertices, {stats.num_edges:,} edges, "
          f"max/mean degree = {stats.max_degree}/{stats.mean_degree:.1f} (imbalance {stats.imbalance:.1f}x)")

    q, k, v = random_qkv(length, dim, dtype=np.float32, seed=7)
    timings = run_strategies(q, k, v, reach, global_tokens, mask_csr)
    print("   measured CPU runtimes (single head):")
    for name, seconds in timings.items():
        print(f"     {name:<24s} {seconds * 1e3:9.2f} ms")

    # a full multi-head layer using the same pattern
    q_mh, k_mh, v_mh = random_qkv(length, dim * heads, dtype=np.float32, seed=8)
    start = time.perf_counter()
    multi = multi_head_attention(
        q_mh, k_mh, v_mh,
        lambda a, b, c: local_attention(a, b, c, reach + 1),
        num_heads=heads,
    )
    elapsed = time.perf_counter() - start
    print(f"   {heads}-head local attention over d_model={dim*heads}: {elapsed*1e3:.2f} ms, "
          f"{multi.ops.dot_products:,} dot products")

    lengths = (30_000,) if args.quick else (30_000, 35_000, 40_000, 45_000)
    print("   modelled A100 runtimes at the paper's Fig. 6 context lengths (Longformer panel):")
    rows = [r for r in fig6_modeled(lengths=lengths) if r["panel"] == "longformer_local_global"]
    print(format_table(rows, columns=["L", "series", "modeled_s"]))
    print("Done.")


if __name__ == "__main__":
    main()
