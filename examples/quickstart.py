"""Quickstart: sparse graph-processing attention in five minutes.

Demonstrates the core workflow of the library:

1. draw Q/K/V for a sequence,
2. pick a sparse attention pattern (a sliding window here),
3. run the work-optimal graph kernel and the dense masked baseline,
4. verify they agree (the paper's Section V-A check) and compare the work
   each performed,
5. ask the analytical device model how far the same pattern scales on an
   NVIDIA A100.

Run:  python examples/quickstart.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import local_attention, random_qkv, sdp_attention
from repro.masks import LocalMask
from repro.perfmodel import A100_SXM4_80GB, RuntimeModel, max_context_length
from repro.utils.validation import allclose_report
from repro.work import check_work_optimality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--length", type=int, default=None, help="context length L")
    parser.add_argument("--dim", type=int, default=64, help="embedded dimension d_k")
    parser.add_argument("--window", type=int, default=None, help="local attention window")
    args = parser.parse_args()

    length = args.length or (1_024 if args.quick else 8_192)
    window = args.window or (16 if args.quick else 128)
    dim = args.dim

    print(f"== Quickstart: local attention, L={length:,}, d_k={dim}, window={window}")
    q, k, v = random_qkv(length, dim, dtype=np.float32, seed=0)
    mask = LocalMask(window=window)
    print(f"   sparsity factor Sf = {mask.sparsity_factor(length):.4f} "
          f"({mask.nnz(length):,} of {length * length:,} pairs)")

    # 1) the work-optimal graph kernel
    start = time.perf_counter()
    sparse_result = local_attention(q, k, v, window)
    sparse_time = time.perf_counter() - start

    # 2) the dense masked SDP baseline (computes every pair, then invalidates)
    start = time.perf_counter()
    dense_result = sdp_attention(q, k, v, mask)
    dense_time = time.perf_counter() - start

    # 3) verification (paper tolerances)
    report = allclose_report(sparse_result.output, dense_result.output)
    print(f"   outputs allclose: {report.ok} (max abs err {report.max_abs_error:.2e})")

    # 4) work comparison
    optimality = check_work_optimality(sparse_result, mask.nnz(length), dim)
    print(f"   graph kernel dot products : {sparse_result.ops.dot_products:>14,} "
          f"(work optimal: {optimality.is_work_optimal})")
    print(f"   dense baseline dot products: {dense_result.ops.dot_products:>14,} "
          f"({dense_result.ops.wasted_dot_products:,} wasted on masked pairs)")
    print(f"   measured CPU time: graph kernel {sparse_time*1e3:8.2f} ms | dense baseline {dense_time*1e3:8.2f} ms")

    # 5) how far does this pattern scale on an 80 GB A100?
    sparsity = mask.sparsity_factor(length)
    limit_sparse = max_context_length("local", A100_SXM4_80GB, dtype="fp16", head_dim=dim)
    limit_dense = max_context_length("sdp", A100_SXM4_80GB, dtype="fp16", head_dim=dim)
    model = RuntimeModel(A100_SXM4_80GB)
    speedup_2m = model.speedup("local", "flash", 2_097_152, dim, sparsity_factor=1e-4, dtype="fp16")
    print(f"   A100 context-length limit: local kernel {limit_sparse:,} vs dense SDP {limit_dense:,}")
    print(f"   modelled speedup over FlashAttention at L=2,097,152 (Sf=1e-4): {speedup_2m:.2f}x")
    print("Done.")


if __name__ == "__main__":
    main()
