"""Context-length planner: how long a sequence fits, and what it costs (Table II / Fig. 4 / Table III).

Given a GPU, a data type and an attention pattern's sparsity, this example
answers the two questions the paper's Section V-D addresses:

* what is the maximum context length each algorithm can hold in memory?
* at a chosen context length, how long does each algorithm take (modelled)?

It regenerates the headline numbers: 160M-token context on one A100 for the
implicit-mask kernels, the ~2 orders of magnitude advantage of CSR/COO over
dense masked SDP, the 51x speedup over FlashAttention at 160M tokens, and the
32-GPU estimate for a 1-billion-token context (Section VI-B).

Run:  python examples/context_length_planner.py [--quick] [--device a100|l40|v100]
"""

from __future__ import annotations

import argparse

from repro.bench.reporting import format_series, format_table
from repro.masks import longnet_sparsity_factor
from repro.perfmodel import RuntimeModel, get_device, max_context_length
from repro.perfmodel.context_limits import TABLE2_ALGORITHMS, context_limit_sweep, context_limit_table


def plan_memory(device, accounting: str) -> None:
    print(f"-- Theoretical maximum context lengths on {device.name} (Sf = 1e-4), Table II reproduction:")
    rows = []
    for limit_row in context_limit_table(device, accounting=accounting):
        row = {
            "dtype": limit_row.dtype,
            "dk": limit_row.head_dim,
            "heads": limit_row.heads,
        }
        row.update({alg: limit_row.limits[alg] for alg in TABLE2_ALGORITHMS})
        rows.append(row)
    print(format_table(rows))


def plan_sweep(device, quick: bool) -> None:
    sparsities = (1e-4, 1e-3, 1e-2, 1e-1, 1.0) if not quick else (1e-4, 1e-2, 1.0)
    print("\n-- Fig. 4 reproduction: limit vs sparsity (FP16, dk = 64):")
    series = {
        algorithm: context_limit_sweep(algorithm, sparsities, device=device, dtype="fp16", head_dim=64)
        for algorithm in ("sdp", "coo", "csr", "flash", "local")
    }
    print(format_series(sparsities, series, x_label="Sf"))


def plan_runtime(device, quick: bool) -> None:
    model = RuntimeModel(device)
    lengths = (1_600_000, 8_000_000) if quick else (1_600_000, 8_000_000, 16_000_000, 160_000_000)
    print("\n-- Table III reproduction (modelled, FP16, dk = 64, LongNet sparsity schedule):")
    rows = []
    for length in lengths:
        sparsity = longnet_sparsity_factor(length)
        flash = model.estimate("flash", length, 64, dtype="fp16").seconds
        local = model.estimate("local", length, 64, sparsity_factor=sparsity, dtype="fp16").seconds
        rows.append(
            {
                "L": length,
                "Sf": sparsity,
                "flash_s": flash,
                "local_s": local,
                "speedup": flash / local,
            }
        )
    print(format_table(rows))


def plan_billion_tokens(device) -> None:
    # Section VI-B: with 25 % of memory available for attention, ~32 GPUs reach 1B tokens
    budget = device.memory_bytes // 4
    per_gpu = max_context_length("local", device, dtype="fp16", head_dim=128)
    usable = int(per_gpu * 0.25)
    gpus_needed = -(-1_000_000_000 // usable)
    print(f"\n-- Scaling to 1 billion tokens (Section VI-B estimate):")
    print(f"   one {device.name} holds ~{per_gpu:,} tokens of attention state (FP16, dk=128);")
    print(f"   with 25% of memory reserved for attention that is ~{usable:,} tokens per GPU,")
    print(f"   so ~{gpus_needed} GPUs reach a 1,000,000,000-token context.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--device", default="a100", choices=["a100", "l40", "v100"])
    parser.add_argument("--accounting", default="paper", choices=["paper", "consistent"])
    args = parser.parse_args()

    device = get_device(args.device)
    plan_memory(device, args.accounting)
    plan_sweep(device, args.quick)
    plan_runtime(device, args.quick)
    plan_billion_tokens(device)
    print("Done.")


if __name__ == "__main__":
    main()
