"""Sequence-parallel sparse attention across simulated ranks (Section VI-A future work).

The paper's discussion proposes distributed-memory execution of the graph
kernels with graph partitioning for load balance.  This example runs that
pipeline end to end on the in-process simulated communicator:

* build a skewed Longformer mask (global rows make naive partitioning unfair),
* compare three row-partitioning strategies (equal rows, edge-balanced
  contiguous, greedy) on work balance and communication volume,
* execute sequence-parallel attention on several rank counts, verify the
  distributed output against the single-node kernel, and report per-rank work
  and all-gather traffic.

Run:  python examples/distributed_sequence_parallel.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import random_qkv, sdp_attention
from repro.bench.reporting import format_table
from repro.distributed import evaluate_partitions, sequence_parallel_attention
from repro.masks import default_global_tokens, longformer_mask
from repro.utils.validation import allclose_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--ranks", type=int, nargs="*", default=None, help="rank counts to simulate")
    args = parser.parse_args()

    length = 512 if args.quick else 2_048
    reach = 8 if args.quick else 25
    dim = 16 if args.quick else 32
    rank_counts = args.ranks or ([2, 4] if args.quick else [2, 4, 8, 16])

    print(f"== Sequence-parallel sparse attention: L={length:,}, reach={reach}, d_k={dim}")
    mask = longformer_mask(reach=reach, global_tokens=default_global_tokens(length, 3))
    mask_csr = mask.to_csr(length)
    print(f"   mask: {mask_csr.nnz:,} edges, Sf = {mask_csr.sparsity_factor:.5f}")

    print("\n-- Partitioning strategies (8 parts): balance = max/mean edges per part")
    quality = evaluate_partitions(mask_csr, 8)
    rows = [
        {
            "strategy": name,
            "balance": q.balance,
            "max_edges": q.max_edges,
            "edge_cut": q.edge_cut,
            "contiguous": q.contiguous,
        }
        for name, q in quality.items()
    ]
    print(format_table(rows))

    q, k, v = random_qkv(length, dim, dtype=np.float64, seed=13)
    reference = sdp_attention(q, k, v, mask_csr).output

    print("\n-- Sequence-parallel execution (edge-balanced contiguous partition)")
    rows = []
    for num_ranks in rank_counts:
        result = sequence_parallel_attention(q, k, v, mask_csr, num_ranks=num_ranks)
        report = allclose_report(result.output, reference)
        assert report.ok, f"distributed output diverged with {num_ranks} ranks: {report}"
        rows.append(
            {
                "ranks": num_ranks,
                "load_balance": result.load_balance(),
                "max_rank_edges": int(result.work_per_rank().max()),
                "comm_MB": result.comm_stats.bytes_moved / 1e6,
                "allclose": report.ok,
            }
        )
    print(format_table(rows))
    print("\n   Every rank ran the work-optimal CSR kernel on its row slice; outputs match the")
    print("   single-node dense reference bit-for-bit within the paper's verification tolerance.")
    print("Done.")


if __name__ == "__main__":
    main()
