"""A Llama-3-shaped multi-head attention layer served end to end.

Demonstrates batch and head dimensions as first-class citizens across the
whole stack (the Table II Llama-3 shape: 32 heads, d_model = 4096):

1. project a ``(B, L, d_model)`` activation batch to Q/K/V and split heads
   into a ``(B, H, L, d_head)`` stack — a pure reshape, no per-head loop,
2. send the *entire stack* through an ``AttentionServer`` as one request: the
   compiled Longformer plan executes all ``B x H`` slices in one vectorized
   kernel pass,
3. alternatively submit each sequence as its own ``(H, L, d_head)`` request
   and watch the scheduler coalesce them back into a single stacked
   execution,
4. merge heads, apply the output projection, and verify a slice against the
   dense reference.

Run:  PYTHONPATH=src python examples/transformer_layer.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import AttentionRequest, AttentionServer
from repro.core.dense import sdp_attention
from repro.core.multihead import AttentionLayer, merge_heads, split_heads
from repro.masks import default_global_tokens, longformer_mask


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()

    if args.quick:
        batch, num_heads, d_model, length, reach = 2, 32, 1024, 256, 16
    else:  # the Llama-3 shape of Table II
        batch, num_heads, d_model, length, reach = 2, 32, 4096, 512, 50
    head_dim = d_model // num_heads

    print(
        f"== Transformer layer through the server: B={batch}, H={num_heads}, "
        f"L={length}, d_model={d_model} (d_head={head_dim})"
    )

    layer = AttentionLayer.initialise(d_model, num_heads, seed=0)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((batch, length, d_model)).astype(np.float32) / np.sqrt(d_model)
    mask = longformer_mask(reach=reach, global_tokens=default_global_tokens(length, 2))

    # 1) project and split heads — a reshape, not a loop
    q = split_heads(x @ layer.w_q, num_heads)
    k = split_heads(x @ layer.w_k, num_heads)
    v = split_heads(x @ layer.w_v, num_heads)
    print(f"   head stack: {q.shape} (batch and heads are leading kernel axes)")

    server = AttentionServer(cache_capacity=8)

    # 2) the whole (B, H, L, d_head) stack as ONE request / ONE kernel pass
    start = time.perf_counter()
    response = server.handle(q, k, v, mask)
    stacked_seconds = time.perf_counter() - start
    attended = response.output
    print(
        f"   one stacked request: plan '{response.result.algorithm}', "
        f"{attended.shape} out in {stacked_seconds * 1e3:.1f} ms"
    )

    # 3) per-sequence requests coalesce back into one stacked execution
    requests = [
        AttentionRequest(q=q[b], k=k[b], v=v[b], mask=mask) for b in range(batch)
    ]
    responses = server.serve(requests)
    stats = server.stats
    print(
        f"   {batch} per-sequence requests -> {stats.stacked_executions} stacked "
        f"execution(s), {stats.coalesced_requests} requests coalesced"
    )
    for b in range(batch):
        np.testing.assert_allclose(responses[b].output, attended[b], atol=1e-5, rtol=1e-5)

    # 4) merge heads, project out, verify one head slice against dense SDP
    y = merge_heads(attended) @ layer.w_o
    print(f"   layer output: {y.shape}")
    reference = sdp_attention(q[0, 0], k[0, 0], v[0, 0], mask).output
    np.testing.assert_allclose(attended[0, 0], reference, atol=1e-4, rtol=1e-4)
    print("   verified head (0, 0) against the dense masked reference")
    print(
        f"   server stats: {stats.requests} requests, {stats.plans_compiled} plan "
        f"compile(s), cache hit rate {server.cache.stats.hit_rate:.2f}"
    )


if __name__ == "__main__":
    main()
