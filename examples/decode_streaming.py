"""Streaming decode quickstart: KV-cache sessions + continuous batching.

Demonstrates the incremental decoding subsystem (``repro.serve.decode``):

1. build a composed Longformer mask (local window + global tokens),
2. open several concurrent ``DecodeSession`` streams against one
   ``AttentionServer`` — the decode-mode plan (per-row stencil program) is
   compiled once and shared through the plan cache,
3. prefill each stream's prompt, then stream new tokens through
   ``server.decode_steps`` — same-plan same-position steps coalesce into one
   stacked kernel pass (continuous batching),
4. verify a stream against a one-shot ``engine.run`` over the causally
   clipped reference mask,
5. report per-token cost, KV-cache growth and coalescing statistics.

Run:  python examples/decode_streaming.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import AttentionServer, GraphAttentionEngine, random_qkv
from repro.masks import longformer_mask
from repro.perfmodel.decode import DecodeRuntimeModel, kv_cache_bytes
from repro.perfmodel.devices import A100_SXM4_80GB
from repro.serve import ServingClient
from repro.serve.decode import decode_reference_mask


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--streams", type=int, default=4, help="concurrent decode sessions")
    parser.add_argument("--dim", type=int, default=32, help="embedded dimension d_k")
    args = parser.parse_args()

    horizon = 256 if args.quick else 1_024
    prompt = horizon // 4
    reach = 16 if args.quick else 50
    dim, streams = args.dim, args.streams

    mask = longformer_mask(reach=reach, global_tokens=(0,))
    print(
        f"== Streaming decode: Longformer Loc+Glo, horizon={horizon:,}, "
        f"prompt={prompt}, d_k={dim}, {streams} concurrent streams"
    )

    with AttentionServer(cache_capacity=8) as server:
        client = ServingClient(server)
        # 1) open the sessions; the decode plan compiles once and is shared
        sessions = [
            client.open_session(mask, horizon, retain_outputs=True)
            for _ in range(streams)
        ]
        hits = sum(1 for s in sessions if s.plan_cache_hit)
        print(f"   decode plan: {sessions[0].plan.describe()}")
        print(f"   plan cache: {hits}/{streams} sessions reused the compiled plan")

        # 2) prefill each stream's prompt in one vectorized causal pass
        data = [random_qkv(horizon, dim, seed=100 + s) for s in range(streams)]
        start = time.perf_counter()
        for session, (q, k, v) in zip(sessions, data):
            session.prefill(q[:prompt], k[:prompt], v[:prompt])
        prefill_seconds = time.perf_counter() - start
        print(
            f"   prefill: {prompt} tokens/stream in {prefill_seconds * 1e3:.1f} ms "
            f"({sessions[0].ops.dot_products:,} causal edges each)"
        )

        # 3) stream the remaining tokens; concurrent steps coalesce
        start = time.perf_counter()
        for i in range(prompt, horizon):
            server.decode_steps(
                [
                    (session, data[s][0][i], data[s][1][i], data[s][2][i])
                    for s, session in enumerate(sessions)
                ]
            )
        decode_seconds = time.perf_counter() - start
        tokens = (horizon - prompt) * streams
        stats = server.stats
        print(
            f"   decode: {tokens:,} tokens in {decode_seconds:.3f} s "
            f"({decode_seconds / tokens * 1e6:.0f} us/token, "
            f"{stats.decode_steps_per_second:,.0f} tokens/s)"
        )
        print(
            f"   continuous batching: {stats.decode_stacked_executions} stacked passes "
            f"covered {stats.decode_coalesced_steps} of {stats.decode_steps} steps"
        )
        cache = sessions[0].cache
        print(
            f"   KV cache/stream: {cache.length} tokens, capacity {cache.capacity} "
            f"after {cache.grows} geometric doublings ({cache.nbytes / 1024:.0f} KiB; "
            f"A100 fp16 would hold "
            f"{kv_cache_bytes(horizon, dim, dtype='fp16') / 1024:.0f} KiB)"
        )

        # 4) verify stream 0 against the one-shot causal reference
        q, k, v = data[0]
        reference = GraphAttentionEngine().run(q, k, v, decode_reference_mask(mask, horizon))
        max_err = float(np.abs(sessions[0].outputs() - reference.output).max())
        print(f"   one-shot reference check on stream 0: max abs err {max_err:.2e}")
        assert max_err < 1e-6, "incremental decode diverged from the one-shot reference"

        # 5) what the analytical A100 model says about this configuration
        model = DecodeRuntimeModel(A100_SXM4_80GB)
        row_edges = int(sessions[0].program.causal_row(horizon - 1).size)
        step = model.estimate_step(row_edges, dim, batch=streams)
        print(
            f"   modelled A100 step ({streams} coalesced streams): "
            f"{step.seconds * 1e6:.1f} us -> "
            f"{streams / step.seconds:,.0f} tokens/s aggregate"
        )
    print("Done.")


if __name__ == "__main__":
    main()
