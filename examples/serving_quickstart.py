"""Serving quickstart: compile once, cache the plan, serve many requests.

Demonstrates the attention serving subsystem (``repro.serve``):

1. build a composed Longformer mask (local window + global tokens),
2. compile it into an execution plan and inspect the kernel choice plus the
   predicted A100 runtime from the analytical device model,
3. stand up an ``AttentionServer`` and push a burst of repeated requests
   through it — the first request compiles the plan, the rest hit the cache,
4. compare warm-cache serving against dispatching every request through a
   fresh ``GraphAttentionEngine.run()`` call,
5. report cache hit rate, throughput and mean latency.

Run:  python examples/serving_quickstart.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import AttentionRequest, AttentionServer, GraphAttentionEngine, random_qkv
from repro.core.dense import sdp_attention
from repro.masks import default_global_tokens, longformer_mask
from repro.perfmodel import A100_SXM4_80GB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--length", type=int, default=None, help="context length L")
    parser.add_argument("--dim", type=int, default=32, help="embedded dimension d_k")
    parser.add_argument("--requests", type=int, default=None, help="requests to serve")
    parser.add_argument("--workers", type=int, default=1, help="scheduler thread-pool size")
    args = parser.parse_args()

    length = args.length or (512 if args.quick else 2_048)
    num_requests = args.requests or (40 if args.quick else 400)
    reach = 16 if args.quick else 50
    dim = args.dim

    mask = longformer_mask(reach=reach, global_tokens=default_global_tokens(length, 2))
    print(f"== Serving quickstart: Longformer Loc+Glo, L={length:,}, d_k={dim}, N={num_requests}")
    print(f"   mask: {mask.describe()}")

    # 1) compile the execution plan once, with a predicted A100 runtime
    server = AttentionServer(
        cache_capacity=8,
        device=A100_SXM4_80GB,
        head_dim=dim,
        max_workers=args.workers if args.workers > 1 else None,
    )
    start = time.perf_counter()
    plan, _ = server.plan_for(mask, length)
    compile_seconds = time.perf_counter() - start
    print(f"   compiled plan: kernels = {' + '.join(plan.kernels)}, nnz = {plan.nnz:,} "
          f"(Sf = {plan.sparsity_factor:.4f})")
    print(f"   compile cost: {compile_seconds * 1e3:.1f} ms (paid once, then cached)")
    print(f"   predicted A100 runtime per request: {plan.predicted.seconds * 1e6:.1f} us")

    # 2) serve a burst of repeated requests through the warm cache
    requests = []
    for i in range(num_requests):
        q, k, v = random_qkv(length, dim, seed=1_000 + i)
        requests.append(AttentionRequest(q=q, k=k, v=v, mask=mask))
    start = time.perf_counter()
    responses = server.serve(requests)
    serve_seconds = time.perf_counter() - start

    # 3) the same work dispatched per request through a bare engine
    engine = GraphAttentionEngine()
    start = time.perf_counter()
    for request in requests:
        engine.run(request.q, request.k, request.v, mask)
    engine_seconds = time.perf_counter() - start

    # 4) verify one response against the dense reference
    probe = requests[0]
    reference = sdp_attention(probe.q, probe.k, probe.v, mask).output
    max_err = float(np.abs(responses[0].output - reference).max())
    print(f"   dense-reference check on request 0: max abs err {max_err:.2e}")

    stats = server.stats
    print(f"   cache: {stats.cache.hits} hits / {stats.cache.misses} misses "
          f"(hit rate {stats.cache.hit_rate:.1%}), {stats.plans_compiled} plan(s) compiled")
    print(f"   warm serving : {serve_seconds:8.3f} s total, "
          f"{serve_seconds / num_requests * 1e3:7.2f} ms/request, "
          f"{stats.throughput_rps:8.1f} req/s")
    print(f"   engine.run() : {engine_seconds:8.3f} s total, "
          f"{engine_seconds / num_requests * 1e3:7.2f} ms/request")
    print(f"   per-request speedup from plan caching: {engine_seconds / serve_seconds:.2f}x")
    print("Done.")


if __name__ == "__main__":
    main()
