"""The unified serving surface: ServingClient, streaming edge, tenant SLOs.

Walks the PR's public API end to end:

1. ``ServingClient.generate`` — one call from tensors to a verified output,
   routed through the continuous-batching loop.
2. ``client.agenerate`` / ``AsyncServingEdge`` — the same requests streamed
   chunk-by-chunk over asyncio, with two tenants: a best-effort ``batch``
   tenant and a rate-limited ``chat`` tenant carrying latency SLOs under the
   least-slack-first policy.
3. Tenant isolation — the chat tenant's token bucket throttles a burst at
   admission; the batch tenant cannot starve chat deadlines.
4. ``repro.perfmodel.min_feasible_slo`` — the analytical floor that says
   which deadlines were achievable in the first place.

Run:  PYTHONPATH=src python examples/serving_edge.py [--quick]
"""

import argparse
import asyncio

import numpy as np

from repro.masks import longformer_mask
from repro.perfmodel import get_device, min_feasible_slo
from repro.serve import (
    DecodeSession,
    LoopRequest,
    ServingClient,
    TenantConfig,
    TenantThrottled,
    VirtualClock,
)
from repro.utils.rng import random_qkv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--dim", type=int, default=16, help="embedded dimension d_k")
    args = parser.parse_args()

    dim = args.dim
    prompt = 8 if args.quick else 32
    decode = 16 if args.quick else 64
    total = prompt + decode
    streams = 4 if args.quick else 8
    mask = longformer_mask(reach=4 if args.quick else 16, global_tokens=(0,))

    print(f"== Serving edge: prompt={prompt}, +{decode} decoded, d_k={dim}, {streams} streams")

    # 1) the one-call sync path
    client = ServingClient(
        key_dim=dim,
        num_blocks=streams * (total // 4 + 2),
        block_size=4,
        policy="slack",
        clock=VirtualClock(),
        tenants={"chat": TenantConfig(rate_per_second=1.0, burst=1)},
    )
    q, k, v = random_qkv(total, dim, dtype=np.float32, seed=3)
    result = client.generate(
        q, k, v, mask, prompt_tokens=prompt, tenant="chat", slo_latency_seconds=60.0
    )
    oracle = DecodeSession.start(mask, total, retain_outputs=True)
    oracle.prefill(q[:prompt], k[:prompt], v[:prompt])
    for i in range(prompt, total):
        oracle.step(q[i], k[i], v[i])
    np.testing.assert_array_equal(result.output, oracle.outputs())
    print(
        f"   client.generate: {result.output.shape} verified vs the session oracle, "
        f"slo_attained={result.slo_attained} "
        f"(slack {result.telemetry.slack_at_finish:+.1f}s at finish)"
    )

    # 2) + 3) the async streaming edge with two tenants
    async def streamed():
        chunks_seen = 0
        throttled = 0
        tasks = []
        for s in range(streams):
            tenant = "chat" if s % 2 == 0 else "batch"
            sq, sk, sv = random_qkv(total, dim, dtype=np.float32, seed=100 + s)
            slo = 10.0 * total if tenant == "chat" else None
            try:
                stream = await client.astream(
                    LoopRequest(
                        q=sq, k=sk, v=sv, mask=mask, prompt_tokens=prompt,
                        tenant=tenant, slo_latency_seconds=slo,
                    )
                )
            except TenantThrottled as error:
                throttled += 1
                print(f"   throttled at admission: {error}")
                continue

            async def consume(handle, data):
                nonlocal chunks_seen
                chunks = [chunk async for chunk in handle]
                chunks_seen += len(chunks)
                return np.concatenate(chunks, axis=-2), data

            tasks.append(asyncio.create_task(consume(stream, (sq, sk, sv))))
        outputs = await asyncio.gather(*tasks)
        await client.edge.shutdown(drain=True)
        return outputs, chunks_seen, throttled

    outputs, chunks_seen, throttled = asyncio.run(streamed())
    for output, (sq, sk, sv) in outputs:
        check = DecodeSession.start(mask, total, retain_outputs=True)
        check.prefill(sq[:prompt], sk[:prompt], sv[:prompt])
        for i in range(prompt, total):
            check.step(sq[i], sk[i], sv[i])
        np.testing.assert_array_equal(output, check.outputs())
    attained = sum(
        1
        for telemetry in client.scheduler.telemetry.values()
        if telemetry.slo_attained
    )
    print(
        f"   edge streamed {len(outputs)} streams bit-exact "
        f"({chunks_seen} chunks total), {throttled} submissions rate-throttled, "
        f"{attained} SLOs attained"
    )
    client.close()

    # 4) what deadline was achievable at all?
    estimate = min_feasible_slo(
        get_device("a100"), prompt_tokens=prompt, decode_tokens=decode, head_dim=dim
    )
    print(
        f"   modelled A100 floor for this shape: prefill "
        f"{estimate.prefill_seconds * 1e3:.2f} ms + {decode} steps x "
        f"{estimate.decode_step_seconds * 1e6:.0f} us = "
        f"{estimate.min_latency_seconds * 1e3:.2f} ms minimum latency "
        f"(recommended SLO {estimate.recommended_slo() * 1e3:.2f} ms)"
    )
    print("Done.")


if __name__ == "__main__":
    main()
