"""BigBird-style sparse attention over a genomic sequence (Fig. 6 right panel).

The paper motivates ultra-long context with genomics (HyenaDNA needs 4-5
orders of magnitude more context).  This example models a nucleotide sequence
as tokens, applies BigBird's local + global + random pattern, and shows the
workflow a genomics model would use:

* encode a synthetic DNA sequence into embeddings (the data substitution for
  a real genome assembly),
* build the BigBird mask and measure its sparsity,
* run the sequential Local + Global + CSR composition and the single-CSR
  strategy, verify both against the dense baseline,
* use the memory model to report how long a single-GPU sequence this pattern
  supports, and the LongNet schedule to pick the window for a target length.

Run:  python examples/bigbird_genomics.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import bigbird_attention, random_qkv, sdp_attention
from repro.core import csr_attention
from repro.masks import bigbird_mask, default_global_tokens, longnet_sparsity_factor
from repro.masks.solvers import local_window_for_sparsity
from repro.perfmodel import A100_SXM4_80GB, max_context_length
from repro.utils.validation import allclose_report

NUCLEOTIDES = "ACGT"


def encode_dna(sequence: str, dim: int, seed: int = 0) -> np.ndarray:
    """Embed a nucleotide string as (L, dim) vectors (learned-embedding stand-in)."""
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((len(NUCLEOTIDES), dim)).astype(np.float32)
    indices = np.array([NUCLEOTIDES.index(ch) for ch in sequence])
    positions = np.arange(len(sequence))[:, None] / max(len(sequence), 1)
    return table[indices] + 0.1 * np.cos(positions * np.arange(dim)[None, :]).astype(np.float32)


def synthetic_genome(length: int, seed: int = 0) -> str:
    """Synthetic GC-skewed nucleotide sequence (substitute for a real assembly)."""
    rng = np.random.default_rng(seed)
    return "".join(rng.choice(list(NUCLEOTIDES), p=[0.2, 0.3, 0.3, 0.2]) for _ in range(length))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()

    length = 768 if args.quick else 4_096
    reach = 16 if args.quick else 50
    dim = 32
    random_sparsity = 0.002
    global_tokens = default_global_tokens(length, 3)

    print(f"== BigBird genomic attention: L={length:,} nucleotides, reach={reach}, random Sf={random_sparsity}")
    genome = synthetic_genome(length, seed=1)
    embeddings = encode_dna(genome, dim, seed=2)
    q = embeddings
    _, k, v = random_qkv(length, dim, dtype=np.float32, seed=3)
    k = 0.5 * k + 0.5 * embeddings
    v = 0.5 * v + 0.5 * embeddings

    mask = bigbird_mask(reach=reach, global_tokens=global_tokens, random_sparsity=random_sparsity, seed=4)
    mask_csr = mask.to_csr(length)
    print(f"   mask: {mask_csr.nnz:,} edges, Sf = {mask_csr.sparsity_factor:.5f}")

    start = time.perf_counter()
    dense = sdp_attention(q, k, v, mask_csr)
    dense_time = time.perf_counter() - start

    start = time.perf_counter()
    composed = bigbird_attention(
        q, k, v, reach=reach, global_tokens=global_tokens, random_sparsity=random_sparsity, seed=4
    )
    composed_time = time.perf_counter() - start

    start = time.perf_counter()
    single = csr_attention(q, k, v, mask_csr)
    single_time = time.perf_counter() - start

    for name, output in (("Loc+Glo+CSR", composed.output), ("single CSR", single.output)):
        report = allclose_report(output, dense.output)
        assert report.ok, f"{name} diverged: {report}"
    print("   all three strategies agree with the dense reference")
    print(f"   measured CPU runtimes: dense {dense_time*1e3:8.2f} ms | "
          f"Loc+Glo+CSR {composed_time*1e3:8.2f} ms | single CSR {single_time*1e3:8.2f} ms")

    # how long a genomic window fits on one A100 with this pattern?
    print("   single-A100 (80 GB, FP16) context-length limits for explicit masks:")
    for target_sf in (1e-3, 1e-4, 1e-5):
        limit = max_context_length("csr", A100_SXM4_80GB, dtype="fp16", head_dim=dim, sparsity_factor=target_sf)
        print(f"     Sf = {target_sf:>7}: CSR mask fits up to L = {limit:>13,}")
    limit_local = max_context_length("local", A100_SXM4_80GB, dtype="fp16", head_dim=dim)
    print(f"     implicit local window (any Sf):  L = {limit_local:>13,}")

    target = 10_000_000 if not args.quick else 1_000_000
    sf = longnet_sparsity_factor(target)
    window = local_window_for_sparsity(target, sf) if args.quick else int(round(sf * target / 2))
    print(f"   LongNet schedule at L = {target:,}: Sf = {sf:.2e} -> local window ~= {window:,} tokens")
    print("Done.")


if __name__ == "__main__":
    main()
