"""Paged serving quickstart: one prompt fanned out to 32 streams on a budget.

Demonstrates the paged KV-cache subsystem (``repro.serve.paging``):

1. give the server a **fixed KV memory budget** — ``create_block_pool``
   carves it into fixed-size K/V blocks behind a free list,
2. fan one prompt out to many concurrent decode streams (the speculative /
   best-of-N serving shape): every stream's prefill maps the *same* physical
   blocks via chained-hash prefix sharing, so the prompt is resident once,
3. decode a divergent continuation per stream — the shared partial tail
   block is copied-on-write at the first divergent token,
4. verify one stream bit-exactly against a private-cache session and the
   one-shot oracle,
5. print the occupancy / share-hit / copy-on-write statistics, plus what the
   same budget holds with private per-stream buffers,
6. repeat one stream on an **int8-quantized pool** (``storage="int8"``): the
   same budget carves ~3.5x the token slots, and the output error stays
   inside the documented bound (``repro.serve.attention_tolerance``).

Run:  python examples/paged_serving.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AttentionServer, GraphAttentionEngine, random_qkv
from repro.masks import longformer_mask
from repro.perfmodel.decode import kv_cache_bytes
from repro.serve import ServingClient, attention_tolerance
from repro.serve.decode import DecodeSession, decode_reference_mask
from repro.serve.paging import PoolExhausted


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    parser.add_argument("--streams", type=int, default=None, help="concurrent streams")
    parser.add_argument("--dim", type=int, default=32, help="embedded dimension d_k")
    args = parser.parse_args()

    streams = args.streams or (8 if args.quick else 32)
    # deliberately not block-aligned: the shared prompt ends mid-block, so the
    # first divergent token of every stream copy-on-writes the shared tail
    prompt = 120 if args.quick else 504
    decode_tokens = 16 if args.quick else 64
    horizon = prompt + decode_tokens
    block_size, dim = 16, args.dim

    mask = longformer_mask(reach=16, global_tokens=(0,))
    print(
        f"== Paged serving: 1 prompt x {streams} streams, prompt={prompt}, "
        f"+{decode_tokens} tokens each, d_k={dim}, block_size={block_size}"
    )

    # budget: roughly 40% of what private copies of every stream would need —
    # prefix sharing is what makes the fan-out fit
    private_need = streams * kv_cache_bytes(horizon, dim, dtype="fp32")
    budget = int(private_need * 0.4)
    server = AttentionServer(cache_capacity=8)
    pool = server.create_block_pool(
        key_dim=dim, memory_budget_bytes=budget, block_size=block_size
    )
    print(
        f"   budget {budget / 1e6:.2f} MB -> {pool.num_blocks} blocks "
        f"({pool.num_blocks * block_size:,} token slots); private buffers for "
        f"{streams} streams would need {private_need / 1e6:.2f} MB"
    )

    # one shared prompt, one divergent continuation per stream
    pq, pk, pv = random_qkv(prompt, dim, dtype=np.float32, seed=7)
    continuations = [
        random_qkv(decode_tokens, dim, dtype=np.float32, seed=1_000 + s)
        for s in range(streams)
    ]

    client = ServingClient(server)
    sessions = []
    for s in range(streams):
        try:
            session = client.open_session(
                mask, horizon, retain_outputs=True, paged=True, reserve_tokens=0
            )
        except PoolExhausted:
            print(f"   admission rejected stream {s} — budget truly exhausted")
            break
        session.prefill(pq, pk, pv)  # maps the shared blocks, writes nothing new
        sessions.append(session)
    print(
        f"   prefilled {len(sessions)} streams: {pool.stats.share_hits} share "
        f"hits, {pool.stats.shared_tokens_saved:,} prompt tokens deduplicated, "
        f"occupancy {server.stats.block_occupancy:.1%}"
    )

    for i in range(decode_tokens):
        server.decode_steps(
            [
                (session, continuations[s][0][i], continuations[s][1][i], continuations[s][2][i])
                for s, session in enumerate(sessions)
            ]
        )
    print(
        f"   decoded {decode_tokens} divergent tokens per stream: "
        f"{pool.stats.cow_copies} copy-on-write block copies, occupancy "
        f"{server.stats.block_occupancy:.1%} "
        f"({pool.used_bytes / 1e6:.2f} MB of {budget / 1e6:.2f} MB)"
    )

    # verification: stream 0 == private-cache decode == one-shot oracle
    q = np.concatenate([pq, continuations[0][0]])
    k = np.concatenate([pk, continuations[0][1]])
    v = np.concatenate([pv, continuations[0][2]])
    private = DecodeSession.start(mask, horizon, retain_outputs=True)
    private.prefill(pq, pk, pv)
    for i in range(decode_tokens):
        private.step(continuations[0][0][i], continuations[0][1][i], continuations[0][2][i])
    np.testing.assert_array_equal(sessions[0].outputs(), private.outputs())
    oracle = GraphAttentionEngine().run(q, k, v, decode_reference_mask(mask, horizon))
    np.testing.assert_allclose(sessions[0].outputs(), oracle.output, atol=1e-5, rtol=1e-5)
    print("   verified: paged == private cache (bit-exact) == one-shot oracle")

    for session in sessions:
        server.close_decode_session(session)
    print(
        f"   closed: occupancy {server.stats.block_occupancy:.1%}, "
        f"{pool.evictable_blocks} blocks parked warm for the next identical prompt"
    )
    server.close()

    # the same budget on an int8-quantized pool: quantize on write, dequantize
    # in the gather path, error bounded as an explicit function of the dtype
    int8_server = AttentionServer(cache_capacity=8)
    int8_pool = int8_server.create_block_pool(
        key_dim=dim, memory_budget_bytes=budget, block_size=block_size, storage="int8"
    )
    print(
        f"   int8 storage: the same {budget / 1e6:.2f} MB budget carves "
        f"{int8_pool.num_blocks} blocks vs {pool.num_blocks} at fp32 "
        f"({int8_pool.num_blocks / pool.num_blocks:.2f}x the token slots)"
    )
    int8_session = ServingClient(int8_server).open_session(
        mask, horizon, retain_outputs=True, paged=True, reserve_tokens=0
    )
    int8_session.prefill(pq, pk, pv)
    cq, ck, cv = continuations[0]
    for i in range(decode_tokens):
        int8_server.decode_step(int8_session, cq[i], ck[i], cv[i])
    amplitude = max(float(np.abs(k).max()), float(np.abs(v).max()))
    bound = max(attention_tolerance("int8", amplitude, dim), 1e-5)
    err = float(np.abs(int8_session.outputs() - oracle.output).max())
    assert err <= bound, f"int8 error {err:.2e} exceeds bound {bound:.2e}"
    print(
        f"   int8 verified: max |err| {err:.2e} <= documented bound {bound:.2e} "
        f"vs the fp32 oracle"
    )
    int8_server.close_decode_session(int8_session)
    int8_server.close()


if __name__ == "__main__":
    main()
