"""Multi-replica serving: prefix-affinity routing, rebalancing, sharding.

Walks the PR's placement layer end to end:

1. ``ServingClient(replicas=4)`` — the one-line opt-in: the client builds a
   :class:`repro.serve.ReplicaRouter` fanning streams across four worker
   replicas, each with its own continuous-batching loop and paged KV pool.
2. Prefix-affinity routing — streams sharing a warm K/V prompt land on the
   replica already holding those blocks (one cold miss per prefix family,
   hits for everyone after), and every routed output is bit-identical to a
   single-replica run.
3. Rebalancing — an adversarial workload piles every stream onto one
   replica; the ``balanced_worker_bins`` partitioner spreads the waiting
   streams back out, moving only streams that have not computed anything.
4. Sharded execution — a prompt too large for any one replica's pool runs
   as K/V-parallel attention across the replicas, online-softmax partials
   merged at the router, with the communication volume priced by the same
   stats the ``repro.distributed`` layer reports.
5. ``repro.perfmodel.router_throughput_scaling`` — the analytical scaling
   curve next to what the router just did.

Run:  PYTHONPATH=src python examples/replica_router.py [--quick]
"""

import argparse

import numpy as np

from repro.masks import CausalMask
from repro.perfmodel import router_throughput_scaling, routing_cost
from repro.serve import LoopRequest, ReplicaRouter, ServingClient

DIM = 8
PROMPT = 16
TOTAL = 24
BLOCK_SIZE = 4


def _families(num_families, per_family, rng, total=TOTAL):
    """Streams in prefix families: shared K/V prompt, private queries/tails."""
    specs = []
    for _ in range(num_families):
        pk = rng.normal(size=(PROMPT, DIM)).astype(np.float32)
        pv = rng.normal(size=(PROMPT, DIM)).astype(np.float32)
        for _ in range(per_family):
            tail = total - PROMPT
            specs.append(
                LoopRequest(
                    q=rng.normal(size=(total, DIM)).astype(np.float32),
                    k=np.concatenate(
                        [pk, rng.normal(size=(tail, DIM)).astype(np.float32)]
                    ),
                    v=np.concatenate(
                        [pv, rng.normal(size=(tail, DIM)).astype(np.float32)]
                    ),
                    mask=CausalMask(),
                    prompt_tokens=PROMPT,
                )
            )
    return specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()
    rng = np.random.default_rng(0)
    per_family = 3 if args.quick else 6

    # 1) + 2) the client facade: replicas=4, affinity routing, bit-exactness
    print(f"== ServingClient(replicas=4): {4 * per_family} streams in 4 prefix families")
    requests = _families(4, per_family, rng)
    with ServingClient(replicas=4, key_dim=DIM, block_size=BLOCK_SIZE) as client:
        routed = [response.output for response in client.generate_many(requests)]
        stats = client.router.stats
        print(
            f"   routed {stats.routed} streams: {stats.route_hits} warm hits, "
            f"{stats.route_misses} cold misses "
            f"(hit rate {stats.route_hit_rate:.2f} — one miss per family)"
        )
    oracle_requests = _families(4, per_family, np.random.default_rng(0))
    with ServingClient(replicas=1, key_dim=DIM, block_size=BLOCK_SIZE) as client:
        oracle = [response.output for response in client.generate_many(oracle_requests)]
    for got, want in zip(routed, oracle):
        np.testing.assert_array_equal(got, want)
    print(f"   all {len(routed)} routed outputs bit-identical to the 1-replica run")

    # routing economics: what did each placement decision cost?
    estimate = routing_cost(PROMPT, DIM, block_size=BLOCK_SIZE)
    print(
        f"   routing tax per request: {estimate.hashed_bytes} hashed bytes, "
        f"{estimate.seconds * 1e6:.1f} us — repaid by skipping any shared prefill"
    )

    # 3) rebalancing under adversarial skew: one family, every stream warm
    # on one replica, max_streams=1 so the rest wait — until the partitioner
    # spreads them
    print("== Rebalancing: 8 identical-prefix streams piled on one replica")
    router = ReplicaRouter(
        4,
        key_dim=DIM,
        num_blocks=16,
        block_size=BLOCK_SIZE,
        max_streams=1,
        rebalance_interval=2,
    )
    for request in _families(1, 8, rng):
        router.submit(request)
    print(f"   loads before: {router.replica_loads().tolist()} pending tokens")
    router.run()
    record = router.last_rebalance
    print(
        f"   rebalance: {router.stats.rebalance_passes} passes moved "
        f"{router.stats.moved_streams} waiting streams along "
        f"balanced_worker_bins (last pass spread {len(record.costs)} streams "
        f"over {len(record.bins)} bins)"
    )
    assert router.loop_stats().finished == 8
    router.close()

    # 4) sharded execution: a prompt no single replica pool can hold
    print("== Sharding: one 40-token prompt vs 4-block replica pools")
    big = 40
    router = ReplicaRouter(4, key_dim=DIM, num_blocks=4, block_size=BLOCK_SIZE)
    rid = router.submit(
        LoopRequest(
            q=rng.normal(size=(big, DIM)).astype(np.float32),
            k=rng.normal(size=(big, DIM)).astype(np.float32),
            v=rng.normal(size=(big, DIM)).astype(np.float32),
            mask=CausalMask(),
            prompt_tokens=big,
        )
    )
    print(
        f"   sharded across {router.num_replicas} ranks: output "
        f"{router.results[rid].shape}, {router.comm_stats.bytes_moved} bytes "
        f"moved in {router.comm_stats.messages} messages"
    )
    router.close()

    # 5) the analytical scaling curve at this workload's operating point
    for hit_rate in (0.0, 0.75, 1.0):
        scaling = router_throughput_scaling(
            4, route_hit_rate=hit_rate, shared_prefill_fraction=PROMPT / TOTAL
        )
        print(
            f"   modelled 4-replica scaling at hit rate {hit_rate:.2f}: {scaling:.2f}x"
        )
    print("Done.")


if __name__ == "__main__":
    main()
