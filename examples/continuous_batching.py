"""Continuous batching quickstart: mixed traffic through the serving loop.

Demonstrates the iteration-level scheduler (``repro.serve.loop``):

1. submit a burst of mixed traffic — a few long-prompt analytical requests
   and a stream of short interactive ones, with priorities — against one
   ``AttentionServer`` whose KV pool is deliberately too small for everyone,
2. let the ``ContinuousBatchingScheduler`` own the lifecycle: chunked
   prefill so long prompts cannot monopolize an iteration, stacked decode
   passes across every generating stream, and preemption by swap-out /
   recompute when the pool runs dry,
3. watch the live stats (batch composition, preemptions, swap traffic),
4. verify one stream bit-exactly against the one-shot oracle,
5. compare FCFS / priority / weighted-fair policies on the same workload:
   who waits, and for how long (all on the virtual clock, so the numbers
   are deterministic).

Run:  python examples/continuous_batching.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AttentionServer, GraphAttentionEngine, random_qkv
from repro.masks import LocalMask
from repro.serve import (
    ContinuousBatchingScheduler,
    LoopRequest,
    SwapStore,
    VirtualClock,
    decode_reference_mask,
    scheduling_policy,
)

DIM = 16
MASK = LocalMask(window=9)


def build_requests(long_streams, short_streams, long_prompt, short_prompt, decode):
    """A burst of long low-priority and short high-priority streams."""
    requests = []
    for i in range(long_streams):
        total = long_prompt + decode
        q, k, v = random_qkv(total, DIM, dtype=np.float32, seed=10 + i)
        requests.append(
            LoopRequest(q=q, k=k, v=v, mask=MASK, prompt_tokens=long_prompt, priority=1.0)
        )
    for i in range(short_streams):
        total = short_prompt + decode
        q, k, v = random_qkv(total, DIM, dtype=np.float32, seed=100 + i)
        requests.append(
            LoopRequest(q=q, k=k, v=v, mask=MASK, prompt_tokens=short_prompt, priority=4.0)
        )
    return requests


def run_policy(name, requests, num_blocks, *, prefill_chunk, max_streams):
    server = AttentionServer(cache_capacity=8)
    server.create_block_pool(key_dim=DIM, num_blocks=num_blocks, block_size=8)
    swap_store = SwapStore()
    scheduler = ContinuousBatchingScheduler(
        server,
        policy=scheduling_policy(name, seed=0),
        clock=VirtualClock(),
        max_streams=max_streams,
        prefill_chunk=prefill_chunk,
        preemption="swap",
        swap_store=swap_store,
    )
    rids = scheduler.submit_many(requests)
    results = scheduler.run()
    assert server.block_pool.blocks_in_use == 0
    server.close()
    return scheduler, swap_store, rids, results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()

    long_streams = 2 if args.quick else 4
    short_streams = 4 if args.quick else 12
    long_prompt = 48 if args.quick else 96
    short_prompt = 8
    decode = 8 if args.quick else 16

    requests = build_requests(long_streams, short_streams, long_prompt, short_prompt, decode)
    total_tokens = sum(r.total_tokens for r in requests)
    # a pool sized for roughly half the burst: admission pressure guaranteed
    num_blocks = max(long_prompt + decode, total_tokens // 2) // 8 + 2
    print(
        f"== Continuous batching: {long_streams} long ({long_prompt}-token prompts, "
        f"priority 1) + {short_streams} short ({short_prompt}-token prompts, "
        f"priority 4), +{decode} decoded each, pool {num_blocks} blocks x 8 tokens"
    )

    scheduler, swap_store, rids, results = run_policy(
        "priority", requests, num_blocks, prefill_chunk=8, max_streams=6
    )
    # tear-free reads: snapshot() copies every counter under the stats lock,
    # so these numbers describe one consistent iteration boundary
    stats = scheduler.stats.snapshot()
    server_stats = scheduler.server.stats_snapshot()
    print(
        f"   lifecycle : {stats.iterations} iterations, "
        f"{stats.prefill_tokens} prefill + {stats.decode_tokens} decode tokens, "
        f"{stats.tokens_per_iteration:.1f} tokens/iteration"
    )
    print(
        f"   preemption: {stats.preemptions} preemptions "
        f"({stats.swap_outs} swap-outs, {stats.swap_ins} swap-ins, "
        f"{swap_store.stats.bytes_out / 1e3:.1f} kB through the swap store, "
        f"{stats.recompute_restores} recompute restores)"
    )
    print(
        f"   coalescing: {server_stats.decode_stacked_executions} stacked "
        f"decode passes, {server_stats.prefill_stacked_executions} stacked "
        f"prefill passes"
    )

    # verify one stream against the one-shot oracle
    request, rid = requests[0], rids[0]
    oracle = GraphAttentionEngine().run(
        request.q,
        request.k,
        request.v,
        decode_reference_mask(MASK, request.total_tokens),
    )
    np.testing.assert_allclose(results[rid], oracle.output, atol=1e-5, rtol=1e-5)
    print("   correct   : outputs match the one-shot oracle")

    # policy comparison on identical traffic (virtual seconds, deterministic)
    print("\n   policy comparison (mean time-in-queue, virtual seconds):")
    print(f"   {'policy':<10} {'short':>8} {'long':>8} {'preempts':>9}")
    for name in ("fcfs", "priority", "weighted"):
        fresh = build_requests(
            long_streams, short_streams, long_prompt, short_prompt, decode
        )
        sched, _, rids, _ = run_policy(
            name, fresh, num_blocks, prefill_chunk=8, max_streams=6
        )
        queues = [sched.telemetry[r].time_in_queue for r in rids]
        long_q = np.mean(queues[:long_streams])
        short_q = np.mean(queues[long_streams:])
        print(
            f"   {name:<10} {short_q:8.1f} {long_q:8.1f} "
            f"{sched.stats.preemptions:9d}"
        )
    print(
        "\n   priority/weighted pull the short interactive requests ahead of the "
        "long prompts; FCFS makes them wait in arrival order."
    )


if __name__ == "__main__":
    main()
