"""Request-lifecycle tracing: spans, point events, bounded ring buffer.

A request moving through the continuous-batching loop passes a fixed set of
stations — submit, queue, admit, prefill chunks, decode steps, maybe a
preemption round-trip (swap-out/swap-in or recompute), finish.  The trace
layer records that journey as:

* :class:`Span` — a named interval with ``start``/``end`` timestamps, an
  owning request id, and an optional parent span (queue and preemption spans
  nest under the request's root span);
* :class:`TraceEvent` — an instantaneous point (``prefill_chunk``,
  ``decode_step``, ``iteration`` markers) attached to a span.

Timestamps always come from the scheduler's injected clock, so on
``VirtualClock`` the whole trace is a pure function of the workload and the
seed: :meth:`TraceBuffer.to_jsonl` sorts keys and allocates span ids from a
local counter (never ``id()``), making replay bit-identical — the
determinism the acceptance criteria pin down.

The buffer is a bounded ring (default 65 536 records): old records fall off
the front, ``dropped`` counts them, and recording stays O(1) under one lock.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.utils.validation import require

DEFAULT_TRACE_CAPACITY = 65_536


@dataclass
class Span:
    """A named interval in a request's lifecycle (``end is None`` while open)."""

    span_id: int
    name: str
    start: float
    request_id: Optional[int] = None
    parent_id: Optional[int] = None
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_record(self) -> dict:
        record = {
            "kind": "span",
            "span": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.request_id is not None:
            record["request"] = self.request_id
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


@dataclass(frozen=True)
class TraceEvent:
    """An instantaneous point event attached to a span."""

    name: str
    time: float
    span_id: Optional[int] = None
    request_id: Optional[int] = None
    attrs: Tuple[Tuple[str, object], ...] = ()

    def to_record(self) -> dict:
        record: dict = {"kind": "event", "name": self.name, "time": self.time}
        if self.span_id is not None:
            record["span"] = self.span_id
        if self.request_id is not None:
            record["request"] = self.request_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class TraceBuffer:
    """Bounded ring of spans/events with a deterministic JSONL exporter.

    Spans are exported when they *close* (so a span's record carries its
    final ``end``); events are exported immediately.  Export order is
    therefore completion order, which on a virtual clock is deterministic.
    Open spans are tracked separately and surfaced by :meth:`open_spans`
    (and flushed, endless, by :meth:`drain`).
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        require(capacity >= 1, "trace capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._records: Deque[dict] = deque(maxlen=self.capacity)
        self._open: "Dict[int, Span]" = {}
        self.dropped = 0
        self.emitted = 0

    # -- recording ------------------------------------------------------- #
    def start_span(
        self,
        name: str,
        start: float,
        *,
        request_id: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        with self._lock:
            span = Span(
                span_id=next(self._ids),
                name=name,
                start=start,
                request_id=request_id,
                parent_id=parent.span_id if parent is not None else None,
                attrs=dict(attrs),
            )
            self._open[span.span_id] = span
        return span

    def end_span(self, span: Span, end: float, **attrs: object) -> None:
        require(span.end is None, f"span {span.span_id} ({span.name}) already ended")
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._open.pop(span.span_id, None)
            self._push(span.to_record())

    def event(
        self,
        name: str,
        time: float,
        *,
        span: Optional[Span] = None,
        request_id: Optional[int] = None,
        **attrs: object,
    ) -> None:
        record = TraceEvent(
            name=name,
            time=time,
            span_id=span.span_id if span is not None else None,
            request_id=request_id,
            attrs=tuple(sorted(attrs.items())),
        ).to_record()
        with self._lock:
            self._push(record)

    def _push(self, record: dict) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)
        self.emitted += 1

    # -- reading --------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def open_spans(self) -> List[Span]:
        with self._lock:
            return list(self._open.values())

    def drain(self) -> List[dict]:
        """Records plus any still-open spans (exported with ``end: None``)."""
        with self._lock:
            records = list(self._records)
            records.extend(
                span.to_record()
                for span in sorted(self._open.values(), key=lambda s: s.span_id)
            )
        return records

    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per line — bit-identical on replay."""
        lines = [json.dumps(record, sort_keys=True) for record in self.drain()]
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._open.clear()


def validate_trace(records: List[dict]) -> None:
    """Assert structural well-formedness of an exported trace.

    Checks (raising ``ValueError`` on the first violation):

    * every closed span has ``end >= start``;
    * every ``parent`` reference points at a span that exists in the export
      and whose interval contains the child's interval (well-formed nesting);
    * every event that references a span lands inside that span's interval;
    * timestamps are finite numbers.
    """
    spans: Dict[int, dict] = {}
    for record in records:
        if record.get("kind") == "span":
            spans[record["span"]] = record
    for record in records:
        if record.get("kind") == "span":
            start, end = record["start"], record["end"]
            require(start == start and start is not None, "span start must be a number")
            if end is not None:
                require(end >= start, f"span {record['span']} ends before it starts")
            parent = spans.get(record.get("parent"))
            if record.get("parent") is not None:
                require(parent is not None, f"span {record['span']} has unknown parent")
                require(parent["start"] <= start, f"span {record['span']} starts before parent")
                if end is not None and parent["end"] is not None:
                    require(end <= parent["end"], f"span {record['span']} outlives parent")
        elif record.get("kind") == "event":
            span = spans.get(record.get("span"))
            if span is not None:
                require(span["start"] <= record["time"], "event precedes its span")
                if span["end"] is not None:
                    require(record["time"] <= span["end"], "event follows its span")
        else:
            raise ValueError(f"unknown trace record kind: {record.get('kind')!r}")


__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "Span",
    "TraceBuffer",
    "TraceEvent",
    "validate_trace",
]
