"""Named serving scenarios the ``repro-ops`` CLI runs against the loop.

Each scenario is a deterministic workload — request arrivals, prompt/decode
lengths, masks, priorities, pool sizing, scheduling policy — driven through
a :class:`~repro.serve.ContinuousBatchingScheduler` on a
:class:`~repro.serve.VirtualClock` with an
:class:`~repro.obs.recorder.Observability` recorder attached.  Everything
that reaches the trace buffer is stamped from the virtual clock, so running
the same scenario twice produces **bit-identical** trace JSONL (host wall
times appear only in the metrics histograms, never in trace records).

The scenario zoo mirrors the serving shapes the roadmap cares about:

* ``quick``    — a handful of mixed requests; the CI smoke scenario.
* ``steady``   — seeded Poisson-style arrivals at moderate load.
* ``burst``    — two synchronized waves hammering admission at once.
* ``agentic``  — few streams, long decodes (tool-using agent shape).
* ``rag``      — long prompts, short answers (retrieval-augmented shape).
* ``storm``    — a pool at the feasibility edge; every iteration preempts.
* ``slo-burst`` — a no-deadline batch tenant monopolizes the token budget
  while a chat tenant arrives with tight SLOs; FCFS head-of-line blocking
  misses most deadlines, the slack policy reorders and attains them.

This module lives in ``src`` (not the test harness) because the installed
console script must run scenarios without a checkout of ``tests/``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.masks.presets import longformer_mask
from repro.masks.structured import CausalMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.obs.recorder import Observability
from repro.perfmodel.decode import blocks_for_tokens
from repro.serve import (
    AttentionServer,
    ContinuousBatchingScheduler,
    LoopRequest,
    ReplicaRouter,
    VirtualClock,
    resolve_serving_kwargs,
    scheduling_policy,
)
from repro.utils.rng import random_qkv
from repro.utils.validation import require

#: Embedded dimension every scenario uses (kept small: scenarios measure the
#: serving control plane, not kernel arithmetic throughput).
DIM = 4

#: Mask zoo scenarios draw from, indexed so specs stay plain integers.
MASKS = (
    LocalMask(window=3),
    LocalMask(window=7),
    Dilated1DMask(window=5, dilation=2),
    CausalMask(),
    longformer_mask(reach=2, global_tokens=(0,)),
)


@dataclass(frozen=True)
class ScenarioRequest:
    """One stream of a scenario: arrival time, shape, mask, priority, seed."""

    mask_index: int
    prompt: int
    decode: int
    priority: float
    arrival: float
    seed: int
    tenant: Optional[str] = None
    slo: Optional[float] = None
    #: speculation depth submitted as ``LoopRequest.speculate_k`` (0 = off)
    speculate: int = 0

    @property
    def total(self) -> int:
        return max(1, self.prompt + self.decode)


@dataclass(frozen=True)
class Scenario:
    """A complete named workload plus its scheduler/pool configuration."""

    name: str
    description: str
    requests: Tuple[ScenarioRequest, ...]
    extra_blocks: int = 8
    block_size: int = 4
    max_streams: int = 4
    prefill_chunk: int = 8
    max_iteration_tokens: Optional[int] = None
    policy: str = "fcfs"
    policy_seed: int = 0
    preemption: str = "auto"

    @property
    def num_blocks(self) -> int:
        """Pool size: the largest stream's needs (+slack) plus ``extra_blocks``."""
        largest = max(
            blocks_for_tokens(request.total, self.block_size)
            for request in self.requests
        )
        return largest + 2 + self.extra_blocks

    @property
    def total_tokens(self) -> int:
        return sum(request.total for request in self.requests)


def _requests(entries: Sequence[dict]) -> Tuple[ScenarioRequest, ...]:
    out: List[ScenarioRequest] = []
    arrival = 0.0
    for index, entry in enumerate(entries):
        arrival += float(entry.get("gap", 0.0))
        out.append(
            ScenarioRequest(
                mask_index=int(entry.get("mask", index)) % len(MASKS),
                prompt=int(entry["prompt"]),
                decode=int(entry["decode"]),
                priority=float(entry.get("priority", 1.0)),
                arrival=arrival,
                seed=int(entry.get("seed", 1000 + index)),
                tenant=entry.get("tenant"),
                slo=None if entry.get("slo") is None else float(entry["slo"]),
                speculate=int(entry.get("speculate", 0)),
            )
        )
    return tuple(out)


# --------------------------------------------------------------------------- #
# The zoo
# --------------------------------------------------------------------------- #
def _quick(seed: int) -> Scenario:
    entries = [
        {
            "mask": i,
            "prompt": 6 + 2 * (i % 3),
            "decode": 4,
            "gap": 1.0,
            "seed": seed * 97 + i,
            # alternate plain / speculative streams so the CI smoke snapshot
            # always carries the speculate_* counters and accept-rate series
            "speculate": 3 if i % 2 else 0,
        }
        for i in range(6)
    ]
    return Scenario(
        name="quick",
        description="Six mixed requests, comfortable pool — the CI smoke scenario.",
        requests=_requests(entries),
        extra_blocks=8,
        max_streams=4,
        prefill_chunk=4,
    )


def _steady(seed: int) -> Scenario:
    rng = np.random.default_rng(seed)
    entries = [
        {
            "mask": int(rng.integers(len(MASKS))),
            "prompt": int(rng.integers(4, 20)),
            "decode": int(rng.integers(2, 12)),
            "priority": float(rng.choice((0.5, 1.0, 2.0))),
            "gap": float(rng.exponential(2.0)),
            "seed": int(rng.integers(2**16)),
        }
        for _ in range(16)
    ]
    return Scenario(
        name="steady",
        description="Sixteen Poisson-style arrivals under the weighted-fair policy.",
        requests=_requests(entries),
        extra_blocks=6,
        max_streams=4,
        prefill_chunk=8,
        policy="weighted",
        policy_seed=seed,
    )


def _burst(seed: int) -> Scenario:
    wave1 = [
        {"mask": i, "prompt": 12, "decode": 6, "gap": 0.0, "priority": 1.0, "seed": seed * 31 + i}
        for i in range(6)
    ]
    wave2 = [
        {
            "mask": i,
            "prompt": 4,
            "decode": 4,
            "gap": 8.0 if i == 0 else 0.0,
            "priority": 4.0,
            "seed": seed * 53 + i,
        }
        for i in range(6)
    ]
    return Scenario(
        name="burst",
        description="Two synchronized waves; high-priority latecomers must overtake.",
        requests=_requests(wave1 + wave2),
        extra_blocks=2,
        max_streams=3,
        prefill_chunk=4,
        policy="priority",
    )


def _agentic(seed: int) -> Scenario:
    entries = [
        {"mask": 3, "prompt": 8, "decode": 48, "gap": 2.0, "seed": seed * 11 + i}
        for i in range(3)
    ]
    return Scenario(
        name="agentic",
        description="Few streams, long decodes — per-token latency dominates.",
        requests=_requests(entries),
        extra_blocks=6,
        max_streams=3,
        prefill_chunk=8,
    )


def _rag(seed: int) -> Scenario:
    entries = [
        {"mask": 4, "prompt": 48, "decode": 4, "gap": 1.0, "seed": seed * 13 + i}
        for i in range(4)
    ]
    return Scenario(
        name="rag",
        description="Long prompts, short answers — chunked prefill dominates.",
        requests=_requests(entries),
        extra_blocks=6,
        max_streams=2,
        prefill_chunk=8,
        max_iteration_tokens=16,
    )


def _storm(seed: int) -> Scenario:
    entries = [
        {"mask": 0, "prompt": 8, "decode": 8, "gap": 0.0, "seed": seed * 41 + i}
        for i in range(3)
    ]
    return Scenario(
        name="storm",
        description="Pool at the feasibility edge; nearly every iteration preempts.",
        requests=_requests(entries),
        extra_blocks=0,
        max_streams=3,
        prefill_chunk=4,
        preemption="swap",
    )


def _slo_burst(seed: int) -> Scenario:
    # A batch tenant with no deadlines floods admission at t=0; a chat tenant
    # trickles in behind it with tight SLOs.  Under FCFS the batch streams
    # monopolize the iteration token budget (head-of-line blocking) and most
    # chat deadlines blow; least-slack-first reorders per iteration and
    # attains them.  Run with ``policy="slack"`` to see the contrast.
    batch = [
        {
            "mask": 0,
            "prompt": 16,
            "decode": 16,
            "gap": 0.0,
            "tenant": "batch",
            "seed": seed * 61 + i,
        }
        for i in range(3)
    ]
    chat = [
        {
            "mask": 1,
            "prompt": 4,
            "decode": 4,
            "gap": 1.0,
            "tenant": "chat",
            "slo": 10.0,
            "seed": seed * 71 + i,
        }
        for i in range(9)
    ]
    return Scenario(
        name="slo-burst",
        description="Deadline-free batch flood vs. a chat tenant with tight SLOs.",
        requests=_requests(batch + chat),
        extra_blocks=30,
        max_streams=8,
        prefill_chunk=4,
        max_iteration_tokens=8,
    )


SCENARIOS: Dict[str, Callable[[int], Scenario]] = {
    "quick": _quick,
    "steady": _steady,
    "burst": _burst,
    "agentic": _agentic,
    "rag": _rag,
    "storm": _storm,
    "slo-burst": _slo_burst,
}


def build_scenario(name: str, *, seed: int = 0) -> Scenario:
    """Build the named scenario for ``seed`` (same seed → same workload)."""
    require(name in SCENARIOS, f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}")
    return SCENARIOS[name](int(seed))


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Everything one scenario run exposes: recorder, snapshots, telemetry."""

    scenario: Scenario
    seed: int
    obs: Observability
    loop_stats: object
    server_stats: object
    telemetry: Dict[int, object]
    iterations: int
    #: set when the scenario ran through a multi-replica router
    router_stats: Optional[object] = None
    replicas: int = 1

    def summary(self) -> dict:
        """The derived serving numbers the ops CLI leads with."""
        snap = self.obs.snapshot()

        def _percentiles(name: str) -> dict:
            sample = snap.get(name)
            if sample is None or not sample.count:
                return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": sample.count,
                "p50": sample.quantile(0.50),
                "p95": sample.quantile(0.95),
                "p99": sample.quantile(0.99),
            }

        summary = {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "requests": len(self.scenario.requests),
            "total_tokens": self.scenario.total_tokens,
            "iterations": self.iterations,
            "preemptions": self.loop_stats.preemptions,
            "swap_ins": self.loop_stats.swap_ins,
            "ttft_seconds": _percentiles("serving_ttft_seconds"),
            "queue_seconds": _percentiles("serving_queue_seconds"),
            "per_token_seconds": _percentiles("serving_per_token_seconds"),
            "preemption_stall_seconds": _percentiles("serving_preemption_stall_seconds"),
        }
        if self.router_stats is not None:
            summary["router"] = {
                "replicas": self.replicas,
                "routed": self.router_stats.routed,
                "route_hit_rate": self.router_stats.route_hit_rate,
                "rebalance_passes": self.router_stats.rebalance_passes,
                "moved_streams": self.router_stats.moved_streams,
            }
        slo = self.slo_attainment()
        if slo is not None:
            summary["slo"] = slo
        return summary

    def slo_attainment(self) -> Optional[dict]:
        """Per-tenant SLO attainment from telemetry; ``None`` without SLOs.

        Each tenant block counts only its deadline-carrying requests;
        ``attainment`` is attained/total over every SLO request in the run.
        """
        with_slo = [
            t for t in self.telemetry.values() if t.slo_latency_seconds is not None
        ]
        if not with_slo:
            return None
        tenants: Dict[str, Dict[str, int]] = {}
        for telemetry in with_slo:
            bucket = tenants.setdefault(
                telemetry.tenant or "default", {"attained": 0, "missed": 0}
            )
            bucket["attained" if telemetry.slo_attained else "missed"] += 1
        attained = sum(bucket["attained"] for bucket in tenants.values())
        return {
            "requests": len(with_slo),
            "attained": attained,
            "attainment": attained / len(with_slo),
            "tenants": tenants,
        }

    def to_dict(self) -> dict:
        """JSON payload: summary + full registry snapshot."""
        payload = {"summary": self.summary()}
        payload.update(self.obs.snapshot().to_dict())
        return payload


def run_scenario(
    name_or_scenario,
    *,
    seed: int = 0,
    storage: Optional[str] = None,
    obs: Optional[Observability] = None,
    policy=None,
    clock=None,
    max_iterations: int = 20_000,
    on_iteration: Optional[Callable[[int, Observability], None]] = None,
    replicas: int = 1,
    router_policy: str = "affinity",
) -> ScenarioResult:
    """Drive one scenario to drain on a virtual clock; returns its result.

    ``obs`` defaults to a fresh enabled recorder (metrics + tracing);
    ``storage`` selects the block pool's KV storage format (``"fp32"`` /
    ``"fp16"`` / ``"int8"``) so operators can compare registry snapshots
    across storage dtypes at identical workloads; ``policy`` (a name or a
    :class:`~repro.serve.SchedulingPolicy` instance) overrides the
    scenario's baked-in policy — how the CLI and bench compare FCFS vs.
    slack on the same workload — and ``clock`` overrides the default fresh
    :class:`~repro.serve.VirtualClock` (both validated by the same
    :func:`~repro.serve.resolve_serving_kwargs` helper the scheduler and
    client use); ``on_iteration(iteration, obs)`` is invoked after every
    scheduler step so a live renderer can refresh mid-run.

    ``replicas > 1`` drives the same workload through a
    :class:`~repro.serve.ReplicaRouter` (each replica gets its own
    ``num_blocks``-sized pool and a ``router_policy``-routed share of the
    streams); outputs and per-request telemetry stay deterministic, and the
    summary gains a ``router`` block with the placement counters.
    """
    require(replicas >= 1, "replicas must be >= 1")
    scenario = (
        name_or_scenario
        if isinstance(name_or_scenario, Scenario)
        else build_scenario(name_or_scenario, seed=seed)
    )
    if replicas > 1:
        return _run_scenario_routed(
            scenario,
            seed=seed,
            storage=storage,
            obs=obs,
            policy=policy,
            clock=clock,
            max_iterations=max_iterations,
            on_iteration=on_iteration,
            replicas=replicas,
            router_policy=router_policy,
        )
    policy, clock, obs = resolve_serving_kwargs(
        policy=policy,
        clock=clock if clock is not None else VirtualClock(),
        obs=obs if obs is not None else Observability(),
        policy_seed=scenario.policy_seed,
        default_policy=scheduling_policy(scenario.policy, seed=scenario.policy_seed),
    )
    server = AttentionServer(cache_capacity=32, obs=obs)
    server.create_block_pool(
        key_dim=DIM,
        num_blocks=scenario.num_blocks,
        block_size=scenario.block_size,
        storage=storage,
        # fixed label: repeated in-process runs must emit identical series
        name=f"{scenario.name}-pool",
    )
    scheduler = ContinuousBatchingScheduler(
        server,
        policy=policy,
        clock=clock,
        max_streams=scenario.max_streams,
        prefill_chunk=scenario.prefill_chunk,
        max_iteration_tokens=scenario.max_iteration_tokens,
        preemption=scenario.preemption,
        obs=obs,
    )
    pending = deque(sorted(scenario.requests, key=lambda r: (r.arrival, r.seed)))
    while pending or scheduler.active:
        now = clock.now()
        while pending and pending[0].arrival <= now:
            scheduler.submit(_loop_request(pending.popleft()))
        if not scheduler.active:
            clock.advance(pending[0].arrival - now)
            continue
        require(
            scheduler.stats.iterations < max_iterations,
            f"scenario {scenario.name!r} exceeded {max_iterations} iterations",
        )
        scheduler.step()
        if on_iteration is not None:
            on_iteration(scheduler.stats.iterations, obs)

    loop_stats = scheduler.stats.snapshot()
    result = ScenarioResult(
        scenario=scenario,
        seed=int(seed),
        obs=obs,
        loop_stats=loop_stats,
        server_stats=server.stats_snapshot(),
        telemetry=dict(scheduler.telemetry),
        iterations=loop_stats.iterations,
    )
    server.close()
    return result


def _loop_request(request: ScenarioRequest) -> LoopRequest:
    """Materialize one scenario entry into the loop request it describes."""
    q, k, v = random_qkv(request.total, DIM, dtype=np.float32, seed=request.seed)
    return LoopRequest(
        q=q,
        k=k,
        v=v,
        mask=MASKS[request.mask_index],
        prompt_tokens=min(request.prompt, request.total),
        priority=request.priority,
        tenant=request.tenant,
        slo_latency_seconds=request.slo,
        speculate_k=request.speculate,
    )


def _run_scenario_routed(
    scenario: Scenario,
    *,
    seed: int,
    storage: Optional[str],
    obs: Optional[Observability],
    policy,
    clock,
    max_iterations: int,
    on_iteration: Optional[Callable[[int, Observability], None]],
    replicas: int,
    router_policy: str,
) -> ScenarioResult:
    """The ``replicas > 1`` half of :func:`run_scenario`: same arrivals, same
    virtual clock, placed across a replica router instead of one loop."""
    require(
        policy is None or isinstance(policy, str),
        "replicas>1 builds one policy instance per replica; pass a registry "
        "name, not an instance",
    )
    clock = clock if clock is not None else VirtualClock()
    obs = obs if obs is not None else Observability()
    router = ReplicaRouter(
        replicas,
        key_dim=DIM,
        num_blocks=scenario.num_blocks,
        block_size=scenario.block_size,
        storage=storage,
        policy=policy if policy is not None else scenario.policy,
        policy_seed=scenario.policy_seed,
        router_policy=router_policy,
        clock=clock,
        obs=obs,
        max_streams=scenario.max_streams,
        prefill_chunk=scenario.prefill_chunk,
        max_iteration_tokens=scenario.max_iteration_tokens,
        preemption=scenario.preemption,
        name=f"{scenario.name}",
    )
    pending = deque(sorted(scenario.requests, key=lambda r: (r.arrival, r.seed)))
    while pending or router.active:
        now = clock.now()
        while pending and pending[0].arrival <= now:
            router.submit(_loop_request(pending.popleft()))
        if not router.active:
            clock.advance(pending[0].arrival - now)
            continue
        require(
            router.iterations < max_iterations,
            f"scenario {scenario.name!r} exceeded {max_iterations} iterations",
        )
        router.step()
        if on_iteration is not None:
            on_iteration(router.iterations, obs)

    loop_stats = router.loop_stats()
    result = ScenarioResult(
        scenario=scenario,
        seed=int(seed),
        obs=obs,
        loop_stats=loop_stats,
        server_stats=tuple(
            handle.server.stats_snapshot() for handle in router.replicas
        ),
        telemetry=dict(router.telemetry),
        iterations=router.iterations,
        router_stats=router.stats,
        replicas=int(replicas),
    )
    router.close()
    return result


__all__ = [
    "DIM",
    "MASKS",
    "SCENARIOS",
    "Scenario",
    "ScenarioRequest",
    "ScenarioResult",
    "build_scenario",
    "run_scenario",
]
