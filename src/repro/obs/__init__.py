"""Unified observability layer: metrics registry, lifecycle tracing, CLI.

``repro.obs`` is the measurement substrate for the serving stack.  Layers
accept an :class:`~repro.obs.recorder.Observability` object (defaulting to
the allocation-free :data:`~repro.obs.recorder.NULL_OBS`) and record
counters, gauges, latency histograms, and request-lifecycle spans into it;
:func:`~repro.obs.recorder.default_observability` wires the ``REPRO_OBS``
environment toggles, and the ``repro-ops`` CLI (``repro.obs.cli``) runs
named scenarios and renders the resulting snapshot.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    KERNEL_SECONDS_BUCKETS,
    MetricFamily,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    SERVING_SECONDS_BUCKETS,
    TOKEN_BUCKETS,
)
from repro.obs.recorder import (
    NULL_OBS,
    Observability,
    default_observability,
    reset_default_observability,
)
from repro.obs.tracing import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    TraceBuffer,
    TraceEvent,
    validate_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "KERNEL_SECONDS_BUCKETS",
    "MetricFamily",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_OBS",
    "Observability",
    "SERVING_SECONDS_BUCKETS",
    "Span",
    "TOKEN_BUCKETS",
    "TraceBuffer",
    "TraceEvent",
    "default_observability",
    "reset_default_observability",
    "validate_trace",
]
