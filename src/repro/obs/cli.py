"""``repro-ops`` — the operator CLI over the observability layer.

Runs a named serving scenario (see :mod:`repro.obs.scenarios`) on the
virtual clock with metrics + tracing enabled and renders the resulting
registry snapshot as a table, CSV, or JSON.  ``rich`` is optional: when it
is importable the table view gets panels and live per-iteration refresh,
otherwise everything falls back to plain aligned text — the CLI must work
in the bare CI container, where only ``click`` is installed.

Usage::

    repro-ops scenarios                         # list the zoo
    repro-ops run --scenario quick --format json
    repro-ops run --scenario storm --format table --trace-out trace.jsonl
    repro-ops run --scenario steady --format csv --metric 'serving_*'

Installed as a console script by ``setup.py``; in a bare checkout run it as
``PYTHONPATH=src python -m repro.obs.cli ...``.
"""

from __future__ import annotations

import fnmatch
import io
import json
import sys
from typing import List, Optional, Sequence

import click

from repro.obs.metrics import MetricsSnapshot
from repro.obs.scenarios import SCENARIOS, ScenarioResult, build_scenario, run_scenario

try:  # pragma: no cover - exercised only where rich is installed
    from rich.console import Console as _RichConsole
    from rich.table import Table as _RichTable

    _HAVE_RICH = True
except ImportError:  # pragma: no cover - the CI container path
    _RichConsole = None
    _RichTable = None
    _HAVE_RICH = False


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #
_TABLE_COLUMNS = ("metric", "type", "labels", "value", "count", "p50", "p95", "p99")


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _metric_rows(snapshot: MetricsSnapshot, patterns: Sequence[str]) -> List[tuple]:
    rows = []
    for sample in snapshot.samples:
        if patterns and not any(fnmatch.fnmatch(sample.name, p) for p in patterns):
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels))
        if sample.kind == "histogram":
            rows.append(
                (
                    sample.name,
                    sample.kind,
                    labels,
                    _fmt(sample.value),
                    _fmt(sample.count),
                    _fmt(sample.quantile(0.50)),
                    _fmt(sample.quantile(0.95)),
                    _fmt(sample.quantile(0.99)),
                )
            )
        else:
            rows.append((sample.name, sample.kind, labels, _fmt(sample.value), "", "", "", ""))
    return rows


def _plain_table(headers: Sequence[str], rows: Sequence[tuple]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))).rstrip(),
    ]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def _render_summary_lines(summary: dict) -> List[str]:
    lines = [
        f"scenario={summary['scenario']} seed={summary['seed']} "
        f"requests={summary['requests']} tokens={summary['total_tokens']} "
        f"iterations={summary['iterations']} preemptions={summary['preemptions']} "
        f"swap_ins={summary['swap_ins']}"
    ]
    for key in ("ttft_seconds", "queue_seconds", "per_token_seconds", "preemption_stall_seconds"):
        q = summary[key]
        lines.append(
            f"  {key}: count={q['count']} p50={_fmt(q['p50'])} "
            f"p95={_fmt(q['p95'])} p99={_fmt(q['p99'])}"
        )
    router = summary.get("router")
    if router is not None:
        lines.append(
            f"  router: replicas={router['replicas']} routed={router['routed']} "
            f"hit_rate={_fmt(router['route_hit_rate'])} "
            f"rebalances={router['rebalance_passes']} moved={router['moved_streams']}"
        )
    slo = summary.get("slo")
    if slo is not None:
        per_tenant = " ".join(
            f"{tenant}={bucket['attained']}/{bucket['attained'] + bucket['missed']}"
            for tenant, bucket in sorted(slo["tenants"].items())
        )
        lines.append(
            f"  slo: requests={slo['requests']} attained={slo['attained']} "
            f"attainment={_fmt(slo['attainment'])} {per_tenant}".rstrip()
        )
    return lines


def _render_table(result: ScenarioResult, patterns: Sequence[str]) -> None:
    summary = result.summary()
    rows = _metric_rows(result.obs.snapshot(), patterns)
    if _HAVE_RICH:  # pragma: no cover - rich-only path
        console = _RichConsole()
        for line in _render_summary_lines(summary):
            console.print(line, highlight=False)
        table = _RichTable(title=f"metrics — {summary['scenario']}")
        for header in _TABLE_COLUMNS:
            table.add_column(header)
        for row in rows:
            table.add_row(*[str(cell) for cell in row])
        console.print(table)
        return
    for line in _render_summary_lines(summary):
        click.echo(line)
    click.echo("")
    click.echo(_plain_table(_TABLE_COLUMNS, rows))


def _render_csv(result: ScenarioResult, patterns: Sequence[str]) -> None:
    import csv

    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(_TABLE_COLUMNS)
    writer.writerows(_metric_rows(result.obs.snapshot(), patterns))
    click.echo(out.getvalue().rstrip("\n"))


def _render_json(result: ScenarioResult, patterns: Sequence[str]) -> None:
    payload = result.to_dict()
    if patterns:
        payload["metrics"] = [
            m
            for m in payload["metrics"]
            if any(fnmatch.fnmatch(m["name"], p) for p in patterns)
        ]
    click.echo(json.dumps(payload, indent=2, sort_keys=True))


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
@click.group()
def main() -> None:
    """Operations console for the sparse-attention serving stack."""


@main.command()
def scenarios() -> None:
    """List the named scenarios and their shapes."""
    rows = []
    for name in sorted(SCENARIOS):
        scenario = build_scenario(name, seed=0)
        rows.append(
            (
                name,
                str(len(scenario.requests)),
                str(scenario.total_tokens),
                scenario.policy,
                scenario.preemption,
                scenario.description,
            )
        )
    click.echo(
        _plain_table(
            ("scenario", "requests", "tokens", "policy", "preemption", "description"), rows
        )
    )


@main.command()
@click.option(
    "--scenario",
    "scenario_name",
    default="quick",
    show_default=True,
    type=click.Choice(sorted(SCENARIOS)),
    help="Named workload to drive through the serving loop.",
)
@click.option("--seed", default=0, show_default=True, type=int, help="Workload seed.")
@click.option(
    "--policy",
    default=None,
    show_default="scenario default",
    type=click.Choice(("fcfs", "priority", "weighted", "slack")),
    help="Override the scenario's scheduling policy (compare SLO attainment).",
)
@click.option(
    "--storage",
    default="fp32",
    show_default=True,
    type=click.Choice(("fp32", "fp16", "int8")),
    help="KV block-pool storage dtype (compare snapshots across formats).",
)
@click.option(
    "--replicas",
    default=1,
    show_default=True,
    type=click.IntRange(min=1),
    help="Serve through a prefix-affinity replica router instead of one loop.",
)
@click.option(
    "--router-policy",
    default="affinity",
    show_default=True,
    type=click.Choice(("affinity", "weighted", "round_robin")),
    help="Placement policy when --replicas > 1.",
)
@click.option(
    "--format",
    "fmt",
    default="table",
    show_default=True,
    type=click.Choice(("table", "csv", "json")),
    help="How to render the metrics snapshot.",
)
@click.option(
    "--metric",
    "metric_patterns",
    multiple=True,
    help="Glob filter on metric names (repeatable); default: all.",
)
@click.option(
    "--out",
    type=click.Path(dir_okay=False, writable=True),
    default=None,
    help="Also write the full JSON payload (summary + snapshot) to this file.",
)
@click.option(
    "--trace-out",
    type=click.Path(dir_okay=False, writable=True),
    default=None,
    help="Write the request-lifecycle trace as JSONL to this file.",
)
@click.option(
    "--prometheus-out",
    type=click.Path(dir_okay=False, writable=True),
    default=None,
    help="Write the snapshot in Prometheus text exposition format to this file.",
)
def run(
    scenario_name: str,
    seed: int,
    policy: Optional[str],
    storage: str,
    replicas: int,
    router_policy: str,
    fmt: str,
    metric_patterns: tuple,
    out: Optional[str],
    trace_out: Optional[str],
    prometheus_out: Optional[str],
) -> None:
    """Run SCENARIO on the virtual clock and render its metrics."""
    result = run_scenario(
        scenario_name,
        seed=seed,
        storage=storage,
        policy=policy,
        replicas=replicas,
        router_policy=router_policy,
    )
    if fmt == "json":
        _render_json(result, metric_patterns)
    elif fmt == "csv":
        _render_csv(result, metric_patterns)
    else:
        _render_table(result, metric_patterns)
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        click.echo(f"wrote {out}", err=True)
    if trace_out is not None:
        with open(trace_out, "w", encoding="utf-8") as handle:
            handle.write(result.obs.trace_jsonl())
        click.echo(f"wrote {trace_out}", err=True)
    if prometheus_out is not None:
        with open(prometheus_out, "w", encoding="utf-8") as handle:
            handle.write(result.obs.snapshot().to_prometheus())
        click.echo(f"wrote {prometheus_out}", err=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
