"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The serving stack grew three disjoint telemetry surfaces (``ServerStats``,
``LoopStats``, the pool gauges) that cannot answer distributional questions —
p95 time-to-first-token, per-plan kernel time — because plain counters erase
shape.  :class:`MetricsRegistry` is the single export point: every layer
records into one registry through three Prometheus-shaped instrument kinds:

* :class:`Counter` — monotone float, ``inc()`` only;
* :class:`Gauge` — settable level (pool occupancy, queue depth);
* :class:`Histogram` — fixed upper-bound buckets with an O(log buckets)
  ``observe`` and bucket-interpolated ``quantile``/``p50``/``p95``/``p99``
  accessors, so latency percentiles come straight out of the registry.

Instruments are grouped into label *families* (``family.labels(plan=key)``
returns the per-label-value child, created on first use), mirroring the
Prometheus client data model so :meth:`MetricsSnapshot.to_prometheus` is a
faithful text-format render and :meth:`MetricsSnapshot.to_dict` gives the
JSON schema the benchmarks and the ``repro-ops`` CLI share.

Everything mutating takes a lock (one per family, one for the registry), so
kernels on the server's thread pool and the pool's own locked sections can
record concurrently; :meth:`MetricsRegistry.snapshot` takes every family lock
and returns an immutable copy, never a live view.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.utils.validation import require

#: Log-spaced bounds covering host kernel latencies (10 µs .. 10 s).
KERNEL_SECONDS_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)  # fmt: skip

#: Power-of-two bounds wide enough for both host seconds and virtual-clock
#: seconds (a virtual iteration defaults to 1 s, so queue/TTFT times land in
#: the 1..4096 range; host wall times land below 1).
SERVING_SECONDS_BUCKETS = tuple(float(2.0**e) for e in range(-10, 13))

#: Token-count bounds (prefill chunks, batch sizes).
TOKEN_BUCKETS = tuple(float(2.0**e) for e in range(0, 15))

#: Signed power-of-two bounds for SLO slack at finish: negative slack means
#: the deadline was missed by that much, so the histogram must resolve both
#: sides of zero.
SLACK_SECONDS_BUCKETS = (
    tuple(-float(2.0**e) for e in range(12, -3, -1))
    + (0.0,)
    + tuple(float(2.0**e) for e in range(-2, 13))
)

#: Uniform [0, 1] bounds for per-pass speculative acceptance rates.
ACCEPT_RATE_BUCKETS = tuple(round(0.1 * i, 1) for i in range(0, 11))


def _label_values(label_names: Tuple[str, ...], labels: Mapping[str, object]) -> Tuple[str, ...]:
    require(
        set(labels) == set(label_names),
        f"expected labels {label_names}, got {tuple(sorted(labels))}",
    )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """Monotone counter; ``inc`` is O(1) under the family lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        require(amount >= 0, "counters are monotone; inc amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Settable level; also supports inc/dec for maintained counts."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: O(log buckets) record, interpolated quantiles.

    ``bounds`` are strictly increasing upper bucket bounds; an implicit
    ``+Inf`` bucket catches everything beyond the last bound.  Quantiles are
    estimated by linear interpolation inside the selected bucket (the
    Prometheus ``histogram_quantile`` rule), so they are exact at bucket
    edges and monotone everywhere.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]) -> None:
        require(len(bounds) >= 1, "a histogram needs at least one bucket bound")
        require(
            all(lo < hi for lo, hi in zip(bounds, bounds[1:])),
            "histogram bounds must be strictly increasing",
        )
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(bounds) + 1)  # last entry: +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    # -- accessors ------------------------------------------------------- #
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the +Inf bucket)."""
        with self._lock:
            return tuple(self._counts)

    def quantile(self, q: float) -> float:
        require(0.0 <= q <= 1.0, "quantile must lie in [0, 1]")
        with self._lock:
            counts, total = list(self._counts), self._count
        return _bucket_quantile(self.bounds, counts, total, q)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


def _bucket_quantile(
    bounds: Tuple[float, ...], counts: List[int], total: int, q: float
) -> float:
    """Interpolated quantile of a bucketed distribution (0.0 when empty)."""
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if index == len(bounds):  # +Inf bucket: clamp to the last bound
                return bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            within = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * min(max(within, 0.0), 1.0)
    return bounds[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label values.

    ``labels(**kv)`` returns the child for those label values, creating it on
    first use; a family declared without labels owns a single default child
    and forwards ``inc``/``set``/``observe``/value accessors to it so
    unlabelled metrics read naturally (``registry.counter("x").inc()``).
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: "Dict[Tuple[str, ...], object]" = {}
        if not self.label_names:
            self._make_child(())

    def _make_child(self, values: Tuple[str, ...]):
        if self.kind == "histogram":
            child = Histogram(self._lock, self.buckets)
        else:
            child = _KINDS[self.kind](self._lock)
        self._children[values] = child
        return child

    def labels(self, **labels):
        values = _label_values(self.label_names, labels)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child(values)
        return child

    @property
    def _default(self):
        require(not self.label_names, f"metric {self.name} has labels; use .labels(...)")
        return self._children[()]

    # unlabelled convenience forwarding
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def quantile(self, q: float) -> float:
        return self._default.quantile(q)

    @property
    def value(self) -> float:
        return self._default.value

    @property
    def count(self) -> int:
        return self._default.count

    @property
    def sum(self) -> float:
        return self._default.sum

    @property
    def mean(self) -> float:
        return self._default.mean

    def _samples(self) -> List["MetricSample"]:
        with self._lock:
            items = list(self._children.items())
            samples = []
            for values, child in items:
                labels = tuple(zip(self.label_names, values))
                if self.kind == "histogram":
                    samples.append(
                        MetricSample(
                            name=self.name,
                            kind=self.kind,
                            labels=labels,
                            value=child._sum,
                            count=child._count,
                            bounds=child.bounds,
                            counts=tuple(child._counts),
                        )
                    )
                else:
                    samples.append(
                        MetricSample(
                            name=self.name, kind=self.kind, labels=labels, value=child._value
                        )
                    )
        return samples


@dataclass(frozen=True)
class MetricSample:
    """One child's frozen state inside a :class:`MetricsSnapshot`."""

    name: str
    kind: str
    labels: Tuple[Tuple[str, str], ...]
    #: counter/gauge value; for histograms the sum of observations
    value: float
    count: Optional[int] = None
    bounds: Optional[Tuple[float, ...]] = None
    counts: Optional[Tuple[int, ...]] = None

    def quantile(self, q: float) -> float:
        require(self.kind == "histogram", "quantiles exist only for histograms")
        return _bucket_quantile(self.bounds, list(self.counts), self.count, q)

    @property
    def mean(self) -> float:
        require(self.kind == "histogram", "mean exists only for histograms")
        return self.value / self.count if self.count else 0.0


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time copy of a registry (safe to read forever)."""

    samples: Tuple[MetricSample, ...]
    helps: Tuple[Tuple[str, str], ...] = field(default=())

    def get(self, name: str, **labels) -> Optional[MetricSample]:
        wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
        for sample in self.samples:
            if sample.name == name and tuple(sorted(sample.labels)) == wanted:
                return sample
        return None

    def with_name(self, name: str) -> List[MetricSample]:
        return [sample for sample in self.samples if sample.name == name]

    def to_dict(self) -> dict:
        """JSON-ready schema shared by BENCH_*.json and the repro-ops CLI."""
        metrics = []
        for sample in self.samples:
            entry: dict = {
                "name": sample.name,
                "type": sample.kind,
                "labels": dict(sample.labels),
            }
            if sample.kind == "histogram":
                entry.update(
                    {
                        "count": sample.count,
                        "sum": sample.value,
                        "buckets": [
                            [bound, count]
                            for bound, count in zip(
                                list(sample.bounds) + ["+Inf"], sample.counts
                            )
                        ],
                        "p50": sample.quantile(0.50),
                        "p95": sample.quantile(0.95),
                        "p99": sample.quantile(0.99),
                    }
                )
            else:
                entry["value"] = sample.value
            metrics.append(entry)
        return {"metrics": metrics}

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one HELP/TYPE header per name)."""
        helps = dict(self.helps)
        lines: List[str] = []
        seen: set = set()
        for sample in self.samples:
            if sample.name not in seen:
                seen.add(sample.name)
                if helps.get(sample.name):
                    lines.append(f"# HELP {sample.name} {helps[sample.name]}")
                lines.append(f"# TYPE {sample.name} {sample.kind}")
            if sample.kind == "histogram":
                cumulative = 0
                bounds = [repr(float(b)) for b in sample.bounds] + ["+Inf"]
                for bound, count in zip(bounds, sample.counts):
                    cumulative += count
                    labels = sample.labels + (("le", bound),)
                    lines.append(f"{sample.name}_bucket{_fmt_labels(labels)} {cumulative}")
                lines.append(f"{sample.name}_sum{_fmt_labels(sample.labels)} {sample.value}")
                lines.append(f"{sample.name}_count{_fmt_labels(sample.labels)} {sample.count}")
            else:
                lines.append(f"{sample.name}{_fmt_labels(sample.labels)} {sample.value}")
        return "\n".join(lines) + "\n"


def _fmt_labels(labels: Iterable[Tuple[str, str]]) -> str:
    labels = tuple(labels)
    if not labels:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create home of every metric family; snapshot/export point.

    Families are created idempotently: asking for an existing name returns
    the existing family after checking that kind, label names and (for
    histograms) bucket bounds agree — a mismatch is a programming error and
    raises immediately rather than silently splitting a metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labels, buckets)
                self._families[name] = family
                return family
        require(family.kind == kind, f"metric {name} already registered as {family.kind}")
        require(
            family.label_names == labels,
            f"metric {name} registered with labels {family.label_names}, got {labels}",
        )
        if kind == "histogram":
            require(
                family.buckets == tuple(buckets),
                f"metric {name} registered with different buckets",
            )
        return family

    def counter(self, name: str, help: str = "", *, labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", *, labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = SERVING_SECONDS_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, tuple(buckets))

    def names(self) -> List[str]:
        with self._lock:
            return list(self._families)

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of every family (each family copied under its lock)."""
        with self._lock:
            families = list(self._families.values())
        samples: List[MetricSample] = []
        helps: List[Tuple[str, str]] = []
        for family in families:
            helps.append((family.name, family.help))
            samples.extend(family._samples())
        return MetricsSnapshot(samples=tuple(samples), helps=tuple(helps))


__all__ = [
    "ACCEPT_RATE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "KERNEL_SECONDS_BUCKETS",
    "MetricFamily",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SERVING_SECONDS_BUCKETS",
    "SLACK_SECONDS_BUCKETS",
    "TOKEN_BUCKETS",
]
