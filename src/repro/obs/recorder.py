"""The `Observability` facade and the allocation-free disabled path.

Every instrumented layer holds a reference to one :class:`Observability`
object and guards each hook with ``if obs.enabled:``.  The disabled
singleton :data:`NULL_OBS` keeps ``enabled = False`` so the hot path costs a
single attribute check and branch — no allocation, no lock — which is what
keeps the <2% overhead bound on ``bench_continuous_batching --quick``.

Metric families used by the serving stack are pre-declared here (names,
kinds, labels, buckets) so the registry's schema is uniform across layers
and the README reference table has a single source of truth.

Environment toggles (read once by :func:`default_observability`):

* ``REPRO_OBS=1`` — enable metrics (and tracing) for code paths that
  otherwise default to the null recorder;
* ``REPRO_OBS_TRACE=0`` — keep metrics but disable the trace buffer;
* ``REPRO_OBS_TRACE_CAPACITY=N`` — ring-buffer size (default 65 536).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.obs.metrics import (
    ACCEPT_RATE_BUCKETS,
    KERNEL_SECONDS_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    SERVING_SECONDS_BUCKETS,
    SLACK_SECONDS_BUCKETS,
    TOKEN_BUCKETS,
)
from repro.obs.tracing import DEFAULT_TRACE_CAPACITY, TraceBuffer


class Observability:
    """One registry + one trace buffer, shared by every instrumented layer.

    ``enabled`` is the hot-path guard; ``trace`` is ``None`` when tracing is
    off so span hooks can additionally guard with ``if obs.trace:``.
    Construction declares every serving metric family up front — recording
    sites then use the cached family attributes directly, keeping the
    enabled path at one dict lookup per label set.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        tracing: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.trace: Optional[TraceBuffer] = (
            TraceBuffer(trace_capacity) if (enabled and tracing) else None
        )
        if not self.enabled:
            return
        reg = self.registry
        # -- loop / lifecycle -------------------------------------------- #
        self.requests_submitted = reg.counter(
            "loop_requests_submitted_total", "Requests submitted to the scheduler"
        )
        self.requests_finished = reg.counter(
            "loop_requests_finished_total", "Requests fully drained"
        )
        self.requests_cancelled = reg.counter(
            "loop_requests_cancelled_total", "Requests abandoned before finishing"
        )
        self.iterations = reg.counter("loop_iterations_total", "Scheduler iterations run")
        self.preemptions = reg.counter(
            "loop_preemptions_total", "Preemptions by mode", labels=("mode",)
        )
        self.swap_ins = reg.counter("loop_swap_ins_total", "Swapped-out streams restored")
        self.prefill_tokens = reg.counter(
            "loop_prefill_tokens_total", "Prompt tokens prefilled"
        )
        self.decode_tokens = reg.counter("loop_decode_tokens_total", "Tokens decoded")
        self.active_streams = reg.gauge(
            "loop_active_streams", "Streams currently admitted to the running set"
        )
        self.queued_streams = reg.gauge(
            "loop_queued_streams", "Streams waiting in the admission queue"
        )
        self.ttft_seconds = reg.histogram(
            "serving_ttft_seconds",
            "Submit-to-first-token latency",
            buckets=SERVING_SECONDS_BUCKETS,
        )
        self.queue_seconds = reg.histogram(
            "serving_queue_seconds",
            "Time between submit and first scheduling",
            buckets=SERVING_SECONDS_BUCKETS,
        )
        self.per_token_seconds = reg.histogram(
            "serving_per_token_seconds",
            "Mean inter-token latency during decode, per request",
            buckets=SERVING_SECONDS_BUCKETS,
        )
        self.preemption_stall_seconds = reg.histogram(
            "serving_preemption_stall_seconds",
            "Preempt-to-restore stall per preemption round-trip",
            buckets=SERVING_SECONDS_BUCKETS,
        )
        self.iteration_batch_tokens = reg.histogram(
            "loop_iteration_batch_tokens",
            "Tokens scheduled per iteration",
            buckets=TOKEN_BUCKETS,
        )
        # -- speculative decoding ------------------------------------------ #
        self.speculate_drafted = reg.counter(
            "speculate_drafted_tokens_total", "Draft tokens proposed"
        )
        self.speculate_accepted = reg.counter(
            "speculate_accepted_tokens_total", "Draft tokens accepted by verification"
        )
        self.speculate_rolled_back = reg.counter(
            "speculate_rolled_back_tokens_total",
            "Draft tokens erased by rollback after rejection",
        )
        self.speculate_fallbacks = reg.counter(
            "speculate_fallback_steps_total",
            "Zero-acceptance passes resolved by a standard single-token step",
        )
        self.speculate_accept_rate = reg.histogram(
            "speculate_accept_rate",
            "Per-pass accepted fraction of drafted tokens",
            buckets=ACCEPT_RATE_BUCKETS,
        )
        # -- serving edge / tenants --------------------------------------- #
        self.edge_requests = reg.counter(
            "edge_requests_total",
            "Edge admission decisions by tenant and outcome",
            labels=("tenant", "outcome"),
        )
        self.edge_throttles = reg.counter(
            "edge_throttled_total",
            "Edge rejections by tenant and reason (rate/quota/budget)",
            labels=("tenant", "reason"),
        )
        self.edge_active_streams = reg.gauge(
            "edge_active_streams",
            "Streams currently live on the serving edge",
            labels=("tenant",),
        )
        self.edge_backpressure = reg.counter(
            "edge_backpressure_events_total",
            "Consumer-stall hold transitions applied by the edge",
            labels=("tenant",),
        )
        self.tenant_slo = reg.counter(
            "tenant_slo_total",
            "Finished SLO-carrying requests by tenant and outcome",
            labels=("tenant", "outcome"),
        )
        self.slo_slack_seconds = reg.histogram(
            "serving_slo_slack_seconds",
            "SLO budget left at finish (negative = missed by that much)",
            buckets=SLACK_SECONDS_BUCKETS,
        )
        # -- server / kernel dispatch ------------------------------------ #
        self.kernel_seconds = reg.histogram(
            "server_kernel_seconds",
            "Per-request kernel wall time by plan key and phase",
            labels=("plan", "phase"),
            buckets=KERNEL_SECONDS_BUCKETS,
        )
        self.server_requests = reg.counter(
            "server_requests_total", "Requests executed by the server", labels=("phase",)
        )
        self.server_rejections = reg.counter(
            "server_rejections_total", "Admission-control rejections"
        )
        self.engine_dispatches = reg.counter(
            "engine_dispatches_total", "Engine kernel dispatches", labels=("kind",)
        )
        # -- plan cache --------------------------------------------------- #
        self.plan_cache_events = reg.counter(
            "plan_cache_events_total", "Plan cache hits/misses/evictions", labels=("event",)
        )
        # -- block pool ---------------------------------------------------- #
        self.pool_events = reg.counter(
            "pool_events_total",
            "Block pool lifecycle events",
            labels=("pool", "event"),
        )
        self.pool_blocks = reg.gauge(
            "pool_blocks", "Block pool occupancy", labels=("pool", "state")
        )
        self.pool_shared_tokens = reg.counter(
            "pool_shared_tokens_total",
            "Prefix tokens served from shared blocks",
            labels=("pool",),
        )
        self.pool_kv_bytes = reg.gauge(
            "pool_kv_bytes_in_use",
            "Physical KV bytes of blocks mapped by live caches",
            labels=("pool", "storage"),
        )
        self.pool_dequant_seconds = reg.counter(
            "pool_dequant_seconds_total",
            "Wall seconds spent decoding storage-encoded rows on gather",
            labels=("pool", "storage"),
        )
        # -- replica router ----------------------------------------------- #
        self.router_routes = reg.counter(
            "router_routes_total",
            "Routing decisions by outcome (hit = prefix affinity, miss = "
            "load-based fallback, sharded = split across all replicas)",
            labels=("outcome",),
        )
        self.router_replica_streams = reg.gauge(
            "router_replica_streams",
            "Streams (waiting + running) currently placed on each replica",
            labels=("replica",),
        )
        self.router_replica_tokens = reg.gauge(
            "router_replica_pending_tokens",
            "Tokens still to emit on each replica (the rebalance load signal)",
            labels=("replica",),
        )
        self.router_rebalances = reg.counter(
            "router_rebalance_passes_total",
            "Rebalance passes that examined the replica loads",
        )
        self.router_moved_streams = reg.counter(
            "router_moved_streams_total",
            "Waiting streams withdrawn and resubmitted to another replica",
        )
        self.router_comm_bytes = reg.counter(
            "router_comm_bytes_total",
            "Simulated bytes moved executing sharded requests across replicas",
        )

    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()

    def trace_jsonl(self) -> str:
        return self.trace.to_jsonl() if self.trace is not None else ""


class _NullObservability(Observability):
    """The shared disabled recorder: ``enabled`` is False, nothing records.

    It still carries an (empty) registry so ``snapshot()`` stays callable,
    but no hook behind an ``if obs.enabled:`` guard ever runs.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)


#: Shared no-op recorder; the default for every layer's ``obs`` parameter.
NULL_OBS = _NullObservability()

_default_lock = threading.Lock()
_default: Optional[Observability] = None


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in {"", "0", "false", "no", "off"}


def default_observability() -> Observability:
    """Process-wide recorder honouring the ``REPRO_OBS*`` env toggles.

    Returns :data:`NULL_OBS` unless ``REPRO_OBS`` is set truthy; the enabled
    instance is created once and shared (so CLI, benchmarks, and library
    code all export from the same registry).
    """
    global _default
    with _default_lock:
        if _default is None:
            if not _env_flag("REPRO_OBS", False):
                _default = NULL_OBS
            else:
                _default = Observability(
                    tracing=_env_flag("REPRO_OBS_TRACE", True),
                    trace_capacity=int(
                        os.environ.get("REPRO_OBS_TRACE_CAPACITY", DEFAULT_TRACE_CAPACITY)
                    ),
                )
        return _default


def reset_default_observability() -> None:
    """Forget the cached default (tests re-read the environment after this)."""
    global _default
    with _default_lock:
        _default = None


__all__ = [
    "NULL_OBS",
    "Observability",
    "default_observability",
    "reset_default_observability",
]
