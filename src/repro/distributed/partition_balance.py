"""Load-balance analysis of row-partitioning strategies.

The paper's future-work section motivates graph partitioning for distributed
execution: a plain equal-row split leaves ranks with wildly different edge
counts on skewed masks (Longformer's handful of fully-dense global rows),
whereas edge-balanced or greedy partitioners even the work out at the cost of
contiguity.  :func:`evaluate_partitions` quantifies that trade-off for any
mask so the ablation benchmark can report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph.attention_graph import AttentionGraph
from repro.graph.partition import (
    balanced_edge_partition,
    contiguous_partition,
    greedy_bin_partition,
    partition_edge_cut,
)
from repro.masks.base import MaskSpec
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require


def balanced_worker_bins(loads, num_workers: int) -> List[np.ndarray]:
    """Assign weighted work items to workers with near-equal total load.

    ``loads[i]`` is the cost of item ``i`` (edge counts, predicted dot
    products, fractional runtime estimates, ...).  Items are distributed with
    the same greedy longest-processing-time strategy
    :func:`greedy_bin_partition` uses for query rows; the return value is one
    sorted index array per worker.  Empty bins are possible when there are
    fewer items than workers.  The serving scheduler uses this to spread
    heterogeneous request batches across its thread pool.
    """
    require(num_workers >= 1, "num_workers must be >= 1")
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(num_workers)]
    partition = greedy_bin_partition(loads, num_workers)
    return [partition.rows_of(part) for part in range(partition.num_parts)]


@dataclass(frozen=True)
class PartitionQuality:
    """Balance and communication metrics of one partitioning strategy."""

    strategy: str
    num_parts: int
    max_edges: int
    mean_edges: float
    balance: float
    edge_cut: int
    contiguous: bool

    @property
    def imbalance_percent(self) -> float:
        """How much slower the critical rank is than the average, in percent."""
        return (self.balance - 1.0) * 100.0


def evaluate_partitions(
    mask: Union[MaskSpec, CSRMatrix],
    num_parts: int,
    *,
    length: Optional[int] = None,
) -> Dict[str, PartitionQuality]:
    """Evaluate the three built-in partitioners on one mask.

    Returns quality records keyed by strategy name: ``"contiguous"`` (equal
    rows), ``"balanced_edges"`` (contiguous, equal work) and ``"greedy"``
    (non-contiguous longest-processing-time).
    """
    require(num_parts >= 1, "num_parts must be >= 1")
    if isinstance(mask, CSRMatrix):
        csr = mask
    else:
        require(length is not None, "length required when passing a MaskSpec")
        csr = mask.to_csr(length)
    degrees = csr.row_degrees()
    graph = AttentionGraph(csr)

    strategies = {
        "contiguous": (contiguous_partition(csr.shape[0], num_parts), True),
        "balanced_edges": (balanced_edge_partition(degrees, num_parts), True),
        "greedy": (greedy_bin_partition(degrees, num_parts), False),
    }
    results: Dict[str, PartitionQuality] = {}
    for name, (partition, contiguous) in strategies.items():
        edges = partition.edge_counts(degrees)
        results[name] = PartitionQuality(
            strategy=name,
            num_parts=num_parts,
            max_edges=int(edges.max()),
            mean_edges=float(edges.mean()),
            balance=partition.balance(degrees),
            edge_cut=partition_edge_cut(graph, partition),
            contiguous=contiguous,
        )
    return results
