"""Distributed-memory (sequence-parallel) extension of the graph kernels.

Section VI-A lists distributed execution with graph partitioning as future
work; this subpackage implements it against an in-process simulated
communicator so the algorithms and their communication volumes can be studied
without MPI:

* :class:`SimulatedComm` — an mpi4py-flavoured communicator (bcast, allgather,
  allreduce, point-to-point) operating on in-memory buffers and recording the
  bytes exchanged.
* :func:`sequence_parallel_attention` — sequence parallelism for masked
  attention: query rows are partitioned across ranks, K/V are all-gathered
  (the LongNet/Ulysses pattern), and each rank runs a graph kernel on its row
  slice.
* :func:`kv_parallel_attention` — the FlashDecoding-style dual: K/V rows are
  scattered, Q is broadcast, and per-rank partial online-softmax states are
  merged at the root.  The serving router shards oversized requests with it.
* load-balance analysis of partitioning strategies on skewed masks.
"""

from repro.distributed.comm import CommunicationStats, SimulatedComm, SimulatedWorld
from repro.distributed.sequence_parallel import (
    SequenceParallelResult,
    kv_parallel_attention,
    sequence_parallel_attention,
    shard_rows,
)
from repro.distributed.partition_balance import (
    PartitionQuality,
    balanced_worker_bins,
    evaluate_partitions,
)

__all__ = [
    "CommunicationStats",
    "PartitionQuality",
    "SequenceParallelResult",
    "SimulatedComm",
    "SimulatedWorld",
    "balanced_worker_bins",
    "evaluate_partitions",
    "kv_parallel_attention",
    "sequence_parallel_attention",
    "shard_rows",
]
