"""In-process simulated communicator.

Real distributed runs (mpi4py, NCCL) are unavailable in this environment, so
the distributed extension executes all ranks inside one process in a
bulk-synchronous fashion while routing every data exchange through
:class:`SimulatedWorld`.  Collectives take the per-rank shards as a list (the
driver owns all ranks' data anyway) and return what every rank would receive;
point-to-point messages flow through per-(source, dest, tag) mailboxes on
:class:`SimulatedComm` handles.  All exchanges are counted in
:class:`CommunicationStats`, using the standard cost models (an all-gather
moves ``(p-1)/p`` of the gathered payload per rank, an all-reduce twice that),
because communication *volume* per attention invocation is the quantity a real
multi-node deployment of the paper's kernels would need to budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.utils.validation import require


@dataclass
class CommunicationStats:
    """Message and byte counters for one simulated world."""

    messages: int = 0
    bytes_moved: int = 0
    collectives: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, payload_bytes: int, messages: int = 1) -> None:
        self.messages += messages
        self.bytes_moved += int(payload_bytes)
        self.collectives[kind] = self.collectives.get(kind, 0) + 1

    def merge(self, other: "CommunicationStats") -> "CommunicationStats":
        """Combine counters from two worlds (e.g. per-layer communicators)."""
        merged = CommunicationStats(
            messages=self.messages + other.messages,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            collectives=dict(self.collectives),
        )
        for kind, count in other.collectives.items():
            merged.collectives[kind] = merged.collectives.get(kind, 0) + count
        return merged

    def reset(self) -> None:
        self.messages = 0
        self.bytes_moved = 0
        self.collectives.clear()


class SimulatedWorld:
    """A fixed set of ranks with bulk-synchronous collectives and p2p mailboxes."""

    def __init__(self, num_ranks: int):
        require(num_ranks >= 1, "need at least one rank")
        self.num_ranks = num_ranks
        self._mailbox: Dict[tuple, List[np.ndarray]] = {}
        self.stats = CommunicationStats()

    # ------------------------------------------------------------------ #
    # Collectives (driver-level, bulk synchronous)
    # ------------------------------------------------------------------ #
    def _check_shards(self, shards: Sequence[np.ndarray]) -> List[np.ndarray]:
        require(len(shards) == self.num_ranks, "need exactly one shard per rank")
        return [np.asarray(s) for s in shards]

    def allgather(self, shards: Sequence[np.ndarray], *, axis: int = 0) -> np.ndarray:
        """Concatenate per-rank shards; every rank receives the full buffer."""
        arrays = self._check_shards(shards)
        total_bytes = sum(a.nbytes for a in arrays)
        # each rank receives everything except what it already holds
        moved = sum(total_bytes - a.nbytes for a in arrays)
        self.stats.record("allgather", moved, messages=self.num_ranks * (self.num_ranks - 1))
        return np.concatenate(arrays, axis=axis)

    def allreduce(self, shards: Sequence[np.ndarray], op: str = "sum") -> np.ndarray:
        """Element-wise reduction of equally shaped per-rank buffers."""
        require(op in ("sum", "max", "min"), "op must be 'sum', 'max' or 'min'")
        arrays = self._check_shards(shards)
        shapes = {a.shape for a in arrays}
        require(len(shapes) == 1, "allreduce requires identically shaped buffers")
        moved = int(2 * arrays[0].nbytes * (self.num_ranks - 1))
        self.stats.record("allreduce", moved, messages=2 * self.num_ranks * (self.num_ranks - 1))
        stacked = np.stack(arrays, axis=0)
        if op == "sum":
            return stacked.sum(axis=0)
        if op == "max":
            return stacked.max(axis=0)
        return stacked.min(axis=0)

    def broadcast(self, payload: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Send ``payload`` from ``root`` to every rank; returns one copy per rank."""
        require(0 <= root < self.num_ranks, "root rank out of range")
        data = np.asarray(payload)
        self.stats.record("bcast", data.nbytes * (self.num_ranks - 1), messages=self.num_ranks - 1)
        return [np.array(data, copy=True) for _ in range(self.num_ranks)]

    def scatter_rows(self, full: np.ndarray, bounds: Sequence[tuple], root: int = 0) -> List[np.ndarray]:
        """Row-scatter ``full`` according to per-rank ``(start, stop)`` bounds."""
        require(len(bounds) == self.num_ranks, "need one bound per rank")
        shards = [np.array(full[start:stop], copy=True) for start, stop in bounds]
        moved = sum(s.nbytes for i, s in enumerate(shards) if i != root)
        self.stats.record("scatter", moved, messages=self.num_ranks - 1)
        return shards

    # ------------------------------------------------------------------ #
    # Point to point
    # ------------------------------------------------------------------ #
    def comm(self, rank: int) -> "SimulatedComm":
        require(0 <= rank < self.num_ranks, "rank out of range")
        return SimulatedComm(world=self, rank=rank)

    def comms(self) -> List["SimulatedComm"]:
        return [self.comm(r) for r in range(self.num_ranks)]

    def _post(self, source: int, dest: int, tag: int, payload: np.ndarray) -> None:
        self._mailbox.setdefault((source, dest, tag), []).append(np.array(payload, copy=True))
        self.stats.record("send", np.asarray(payload).nbytes)

    def _collect(self, source: int, dest: int, tag: int) -> np.ndarray:
        queue = self._mailbox.get((source, dest, tag))
        require(bool(queue), f"no message from rank {source} to rank {dest} with tag {tag}")
        return queue.pop(0)

    def pending_messages(self) -> int:
        """Number of sent but not yet received point-to-point messages."""
        return sum(len(q) for q in self._mailbox.values())


@dataclass(frozen=True)
class SimulatedComm:
    """Per-rank handle for point-to-point communication."""

    world: SimulatedWorld
    rank: int

    @property
    def size(self) -> int:
        return self.world.num_ranks

    def send(self, payload: np.ndarray, dest: int, tag: int = 0) -> None:
        require(0 <= dest < self.size, "destination rank out of range")
        require(dest != self.rank, "cannot send to self")
        self.world._post(self.rank, dest, tag, np.asarray(payload))

    def recv(self, source: int, tag: int = 0) -> np.ndarray:
        require(0 <= source < self.size, "source rank out of range")
        return self.world._collect(source, self.rank, tag)

    def sendrecv(self, payload: np.ndarray, dest: int, source: int, tag: int = 0) -> np.ndarray:
        """Combined send/receive, as used by ring exchanges."""
        self.send(payload, dest, tag)
        return self.recv(source, tag)
