"""Sequence-parallel masked attention over the simulated communicator.

The distribution pattern follows the sequence-parallel systems the paper
surveys (DeepSpeed-Ulysses, LongNet): the token sequence — and therefore the
query rows of the attention graph — is partitioned across ranks, the key and
value matrices are all-gathered so every rank can serve its rows' neighbours,
and each rank runs a *graph kernel* (not a dense kernel) on its row slice.
Because the graph kernels are work optimal, each rank's cost is proportional
to the edges it owns, which is why the partitioning strategies of
:mod:`repro.graph.partition` matter for skewed masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.explicit_kernels import csr_attention
from repro.core.online_softmax import OnlineSoftmaxState
from repro.core.result import AttentionResult, OpCounts
from repro.distributed.comm import CommunicationStats, SimulatedWorld
from repro.graph.partition import Partition, balanced_edge_partition, contiguous_partition
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require


def shard_rows(length: int, num_ranks: int, *, degrees: Optional[np.ndarray] = None) -> Partition:
    """Partition query rows across ranks.

    With ``degrees`` given, boundaries are placed to balance *edge* counts
    (work); otherwise rows are split evenly.
    """
    if degrees is None:
        return contiguous_partition(length, num_ranks)
    return balanced_edge_partition(degrees, num_ranks)


@dataclass
class SequenceParallelResult:
    """Gathered output of a sequence-parallel attention run."""

    output: np.ndarray
    rank_results: List[AttentionResult]
    partition: Partition
    comm_stats: CommunicationStats

    @property
    def num_ranks(self) -> int:
        return self.partition.num_parts

    @property
    def total_ops(self) -> OpCounts:
        total = OpCounts()
        for result in self.rank_results:
            total = total + result.ops
        return total

    def work_per_rank(self) -> np.ndarray:
        """Dot products performed by each rank (the load-balance quantity)."""
        return np.array([r.ops.dot_products for r in self.rank_results], dtype=np.int64)

    def load_balance(self) -> float:
        """max / mean rank work (1.0 = perfect balance)."""
        work = self.work_per_rank()
        mean = work.mean()
        return float(work.max() / mean) if mean > 0 else 1.0


def sequence_parallel_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: "MaskSpec | CSRMatrix",
    *,
    num_ranks: int,
    scale: Optional[float] = None,
    balance_by_edges: bool = True,
    kernel: Optional[Callable[..., AttentionResult]] = None,
    world: Optional[SimulatedWorld] = None,
) -> SequenceParallelResult:
    """Distributed masked attention with sequence (row) parallelism.

    Steps, mirroring a real multi-GPU deployment:

    1. partition the query rows (contiguous, optionally edge-balanced);
    2. scatter Q rows, all-gather K and V so every rank holds the full key and
       value matrices (the LongNet-style all-gather the paper cites);
    3. every rank runs a work-optimal graph kernel on its row slice of the
       mask;
    4. concatenate the per-rank outputs.

    The returned object carries per-rank op counts and the communication
    statistics recorded by the simulated world.
    """
    require(num_ranks >= 1, "num_ranks must be >= 1")
    length = q.shape[0]
    csr = mask if isinstance(mask, CSRMatrix) else mask.to_csr(length)
    require(csr.shape == (length, length), "mask shape mismatch")
    kernel = kernel or csr_attention
    world = world or SimulatedWorld(num_ranks)
    require(world.num_ranks == num_ranks, "world size mismatch")

    degrees = csr.row_degrees() if balance_by_edges else None
    partition = shard_rows(length, num_ranks, degrees=degrees)
    bounds: Sequence[Tuple[int, int]] = partition.bounds
    require(len(bounds) == num_ranks, "sequence parallelism requires a contiguous partition")

    # communication phase: scatter local Q rows, all-gather K and V
    q_shards = world.scatter_rows(q, bounds)
    k_full = world.allgather(world.scatter_rows(k, bounds))
    v_full = world.allgather(world.scatter_rows(v, bounds))

    rank_results: List[AttentionResult] = []
    outputs: List[np.ndarray] = []
    for rank, (start, stop) in enumerate(bounds):
        local_mask = csr.row_slice(start, stop)
        local_q = q_shards[rank]
        # the local mask is (rows, L): columns address the gathered K/V
        padded = CSRMatrix(
            shape=(stop - start, length),
            indptr=local_mask.indptr,
            indices=local_mask.indices,
            values=local_mask.values,
        )
        result = _rectangular_attention(local_q, k_full, v_full, padded, kernel, scale)
        rank_results.append(result)
        outputs.append(result.output)

    output = np.concatenate(outputs, axis=0) if outputs else np.zeros_like(v)
    return SequenceParallelResult(
        output=output,
        rank_results=rank_results,
        partition=partition,
        comm_stats=world.stats,
    )


def kv_parallel_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: "MaskSpec | CSRMatrix",
    *,
    num_ranks: int,
    scale: Optional[float] = None,
    kernel: Optional[Callable[..., AttentionResult]] = None,
    world: Optional[SimulatedWorld] = None,
) -> SequenceParallelResult:
    """Distributed masked attention with K/V (context) parallelism.

    The FlashDecoding-style dual of :func:`sequence_parallel_attention`:
    instead of splitting query rows, the *key and value* rows are scattered
    in contiguous shards, the full Q is broadcast, and every rank computes a
    partial online-softmax state of **all** query rows against the mask
    columns its shard covers.  The per-rank partials (running max, sum and
    weighted accumulator) travel to rank 0 as point-to-point messages on
    :class:`~repro.distributed.comm.SimulatedComm` and are folded together
    with :meth:`~repro.core.online_softmax.OnlineSoftmaxState.merge` — exact
    up to floating-point reassociation, because each rank owns a disjoint
    set of every row's neighbours.

    This is the sharded-execution path the replica router uses for a
    request whose KV cache exceeds any single replica's pool: the context is
    what doesn't fit, so the context is what gets sharded.
    """
    require(num_ranks >= 1, "num_ranks must be >= 1")
    require(
        q.ndim == 2 and k.ndim == 2 and v.ndim == 2,
        "kv parallelism shards 2-D (L, d) tensors",
    )
    length = q.shape[0]
    csr = mask if isinstance(mask, CSRMatrix) else mask.to_csr(length)
    require(csr.shape == (length, length), "mask shape mismatch")
    kernel = kernel or csr_attention
    world = world or SimulatedWorld(num_ranks)
    require(world.num_ranks == num_ranks, "world size mismatch")

    partition = contiguous_partition(length, num_ranks)
    bounds: Sequence[Tuple[int, int]] = partition.bounds

    # communication phase: broadcast Q, scatter contiguous K/V row shards
    q_copies = world.broadcast(q)
    k_shards = world.scatter_rows(k, bounds)
    v_shards = world.scatter_rows(v, bounds)

    rank_results: List[AttentionResult] = []
    for rank, (start, stop) in enumerate(bounds):
        shard_csr = _column_shard(csr, start, stop)
        result = kernel(
            q_copies[rank],
            _pad_rows(k_shards[rank], length),
            _pad_rows(v_shards[rank], length),
            shard_csr,
            scale=scale,
        )
        rank_results.append(result)

    # each non-root rank ships its partial softmax state (max, sum, acc) to
    # rank 0; the root merges them in rank order
    root = world.comm(0)
    for rank in range(1, num_ranks):
        comm = world.comm(rank)
        result = rank_results[rank]
        comm.send(result.row_max, 0, tag=0)
        comm.send(result.row_sum, 0, tag=1)
        comm.send(result.output * result.row_sum[..., None], 0, tag=2)
    merged = _partial_state(rank_results[0])
    for rank in range(1, num_ranks):
        merged = merged.merge(
            OnlineSoftmaxState(
                row_max=root.recv(rank, tag=0),
                row_sum=root.recv(rank, tag=1),
                accumulator=root.recv(rank, tag=2),
            )
        )
    return SequenceParallelResult(
        output=merged.finalize(dtype=rank_results[0].output.dtype),
        rank_results=rank_results,
        partition=partition,
        comm_stats=world.stats,
    )


def _partial_state(result: AttentionResult) -> OnlineSoftmaxState:
    """Reconstruct a rank's online-softmax state from its kernel result.

    The kernels return the normalised output alongside the per-row softmax
    statistics, so the pre-normalisation accumulator is ``output * row_sum``
    (zero for rows the shard's mask columns never touched).
    """
    return OnlineSoftmaxState(
        row_max=np.array(result.row_max, copy=True),
        row_sum=np.array(result.row_sum, copy=True),
        accumulator=result.output * result.row_sum[..., None],
    )


def _column_shard(csr: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """Restrict a mask to columns ``[start, stop)``, re-based to column 0.

    The result keeps the full square shape so the kernels accept it against
    a zero-padded K/V shard; re-based indices all fall below ``stop - start``
    and the padded rows beyond the shard are never referenced.
    """
    rows = csr.shape[0]
    selected = (csr.indices >= start) & (csr.indices < stop)
    row_ids = np.repeat(np.arange(rows), np.diff(csr.indptr))
    counts = np.bincount(row_ids[selected], minlength=rows)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return CSRMatrix(
        shape=(rows, rows),
        indptr=indptr,
        indices=csr.indices[selected] - start,
        values=csr.values[selected],
    )


def _pad_rows(shard: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad a K/V row shard to the square problem size the kernels expect."""
    if shard.shape[0] == length:
        return shard
    padded = np.zeros((length,) + shard.shape[1:], dtype=shard.dtype)
    padded[: shard.shape[0]] = shard
    return padded


def _rectangular_attention(
    q_rows: np.ndarray,
    k_full: np.ndarray,
    v_full: np.ndarray,
    mask: CSRMatrix,
    kernel: Callable[..., AttentionResult],
    scale: Optional[float],
) -> AttentionResult:
    """Run a square-mask kernel on a rectangular (rows x L) slice.

    The kernels validate that Q, K and V share their leading dimension, so the
    row slice is embedded into a square problem: local queries are placed in
    the first ``rows`` positions and the mask is padded with empty rows.  The
    padded rows contribute no edges and therefore no work.
    """
    rows = q_rows.shape[0]
    length = k_full.shape[0]
    require(rows <= length, "row shard larger than the gathered sequence")
    if rows == length:
        return kernel(q_rows, k_full, v_full, mask, scale=scale)
    q_padded = np.zeros_like(k_full, shape=(length, q_rows.shape[1]))
    q_padded[:rows] = q_rows
    indptr = np.concatenate([mask.indptr, np.full(length - rows, mask.indptr[-1], dtype=np.int64)])
    padded_mask = CSRMatrix(
        shape=(length, length), indptr=indptr, indices=mask.indices, values=mask.values
    )
    result = kernel(q_padded, k_full, v_full, padded_mask, scale=scale)
    return AttentionResult(
        output=result.output[:rows],
        row_max=result.row_max[:rows],
        row_sum=result.row_sum[:rows],
        ops=result.ops,
        algorithm=result.algorithm,
        meta=dict(result.meta, distributed_rows=rows),
    )
