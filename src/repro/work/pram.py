"""PRAM cost model (paper Section IV-B).

The paper argues work optimality in a CRCW PRAM model: with ``p`` processors,
a parallel algorithm is cost (work) optimal when ``p x parallel time`` equals
the serial complexity.  Dense-then-invalidate implementations cost
``O(L² d + Sf L² d)`` — not optimal — while the graph kernels cost
``O(Sf L² d)``.  :class:`PRAMCostModel` evaluates those formulas so the
benchmarks can report the modelled work alongside measured runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require
from repro.work.counting import serial_complexity


def dense_invalidate_cost(length: int, head_dim: int, sparsity_factor: float) -> float:
    """Work of dense-multiply-then-invalidate-then-SpMM: ``L² d + Sf L² d``."""
    require(0.0 <= sparsity_factor <= 1.0, "sparsity factor must lie in [0, 1]")
    dense_part = float(length) * length * head_dim
    sparse_part = serial_complexity(sparsity_factor, length, head_dim)
    return dense_part + sparse_part


def graph_cost(length: int, head_dim: int, sparsity_factor: float) -> float:
    """Work of the graph kernels: ``Sf L² d`` (the serial complexity)."""
    return serial_complexity(sparsity_factor, length, head_dim)


def block_sparse_cost(
    length: int, head_dim: int, sparsity_factor: float, *, block_density: float
) -> float:
    """Work of a block-sparse kernel: the sparse work inflated by block fill-in.

    ``block_density`` is the fraction of entries inside touched blocks that are
    genuine non-zeros (see :class:`repro.sparse.block.BlockSparseMatrix`); the
    kernel computes ``nnz / block_density`` entries.
    """
    require(0.0 < block_density <= 1.0, "block_density must lie in (0, 1]")
    return serial_complexity(sparsity_factor, length, head_dim) / block_density


@dataclass(frozen=True)
class PRAMCostModel:
    """CRCW PRAM accounting for a fixed problem size.

    ``parallel_time(work, p)`` is the idealised ``work / p`` (Brent bound with
    negligible depth, as the attention rows are independent); ``cost`` is
    ``p x parallel_time`` which the optimality criterion compares to the serial
    complexity.
    """

    length: int
    head_dim: int
    sparsity_factor: float

    def __post_init__(self) -> None:
        require(self.length > 0 and self.head_dim > 0, "invalid dimensions")
        require(0.0 <= self.sparsity_factor <= 1.0, "sparsity factor must lie in [0, 1]")

    @property
    def serial_work(self) -> float:
        return serial_complexity(self.sparsity_factor, self.length, self.head_dim)

    def parallel_time(self, work: float, processors: int) -> float:
        require(processors >= 1, "processors must be >= 1")
        return work / processors

    def cost(self, work: float, processors: int) -> float:
        return processors * self.parallel_time(work, processors)

    def is_cost_optimal(self, work: float, processors: int, *, slack: float = 1.0) -> bool:
        """Cost optimality: parallel cost within ``slack`` x serial complexity."""
        if self.serial_work == 0:
            return work == 0
        return self.cost(work, processors) <= slack * self.serial_work

    def graph_kernel_cost(self, processors: int) -> float:
        return self.cost(graph_cost(self.length, self.head_dim, self.sparsity_factor), processors)

    def dense_invalidate_kernel_cost(self, processors: int) -> float:
        return self.cost(
            dense_invalidate_cost(self.length, self.head_dim, self.sparsity_factor), processors
        )
