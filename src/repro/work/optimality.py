"""Work-optimality verification.

``check_work_optimality`` compares a kernel's measured operation counts (the
:class:`~repro.core.result.OpCounts` each kernel returns) against the lower
bound implied by the mask's non-zero count.  This turns the paper's
theoretical claim ("our algorithm only performs computations for the non-zero
elements of the mask") into an executable test used by
``tests/test_work_optimality.py`` and the work-model ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import AttentionResult
from repro.utils.validation import require
from repro.work.counting import sparse_flops


@dataclass(frozen=True)
class WorkOptimalityReport:
    """Outcome of comparing measured kernel work against the sparse lower bound."""

    algorithm: str
    required_dot_products: int
    performed_dot_products: int
    wasted_dot_products: int
    required_flops: int
    performed_flops: int

    @property
    def is_work_optimal(self) -> bool:
        """True when the kernel's work is within a constant factor of the lower bound.

        Exactly the required dot products must contribute to the output, and
        any additional evaluations that were masked out (the ``O(w^2)``
        boundary padding of the vectorised stencil executors) must not exceed
        the useful work.  Dense-then-invalidate kernels fail this immediately:
        their masked-out evaluations are ``(1 - Sf) L^2``, far above the
        ``Sf L^2`` useful work at the sparsities the paper targets.
        """
        return (
            self.performed_dot_products == self.required_dot_products
            and self.wasted_dot_products <= self.required_dot_products
        )

    @property
    def is_strictly_work_optimal(self) -> bool:
        """True when additionally not a single padded/masked position was evaluated."""
        return self.is_work_optimal and self.wasted_dot_products == 0

    @property
    def overhead_fraction(self) -> float:
        """Masked-out (boundary padding) evaluations relative to the required work."""
        if self.required_dot_products == 0:
            return 0.0
        return self.wasted_dot_products / self.required_dot_products

    @property
    def excess_ratio(self) -> float:
        """Performed / required dot products (1.0 for a work-optimal kernel)."""
        if self.required_dot_products == 0:
            return 1.0 if self.performed_dot_products == 0 else float("inf")
        return self.performed_dot_products / self.required_dot_products


def check_work_optimality(
    result: AttentionResult, mask_nnz: int, head_dim: int, value_dim: int | None = None
) -> WorkOptimalityReport:
    """Build a :class:`WorkOptimalityReport` for one kernel invocation."""
    require(mask_nnz >= 0, "mask_nnz must be non-negative")
    value_dim = head_dim if value_dim is None else value_dim
    # dot products charged to genuine mask non-zeros (excludes boundary padding
    # the vectorised executors explicitly account as wasted)
    performed = result.ops.dot_products - result.ops.wasted_dot_products
    return WorkOptimalityReport(
        algorithm=result.algorithm,
        required_dot_products=mask_nnz,
        performed_dot_products=performed,
        wasted_dot_products=result.ops.wasted_dot_products,
        required_flops=sparse_flops(mask_nnz, head_dim, value_dim),
        performed_flops=result.ops.flops,
    )


def work_efficiency(result: AttentionResult, mask_nnz: int) -> float:
    """Fraction of a kernel's dot products spent on genuine mask non-zeros.

    1.0 for the graph kernels; ``Sf`` for dense-then-invalidate; between the
    two for block-sparse kernels.
    """
    if result.ops.dot_products == 0:
        return 1.0
    return min(1.0, mask_nnz / result.ops.dot_products)
