"""Operation-count formulas for masked attention.

The serial complexity of masked attention is ``O(Sf · L² · d)`` (Section IV-B):
``Sf · L²`` mask non-zeros, each requiring one ``d``-dimensional query-key dot
product and one ``d``-dimensional value accumulation.  Dense implementations
perform ``L²`` dot products regardless of ``Sf``.
"""

from __future__ import annotations

from typing import Union

from repro.masks.base import MaskSpec
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

MaskLike = Union[MaskSpec, COOMatrix, CSRMatrix, int]


def expected_dot_products(mask: MaskLike, length: int = 0) -> int:
    """Dot products a work-optimal kernel must perform for ``mask``.

    Accepts a mask spec (requires ``length``), a concrete sparse matrix, or a
    raw non-zero count.
    """
    if isinstance(mask, int):
        require(mask >= 0, "nnz must be non-negative")
        return mask
    if isinstance(mask, (COOMatrix, CSRMatrix)):
        return mask.nnz
    require(length > 0, "length required when passing a MaskSpec")
    return mask.nnz(length)


def serial_complexity(sparsity_factor: float, length: int, head_dim: int) -> float:
    """``Sf · L² · d`` — the serial cost of masked attention (dot-product work)."""
    require(0.0 <= sparsity_factor <= 1.0, "sparsity factor must lie in [0, 1]")
    require(length > 0 and head_dim > 0, "length and head_dim must be positive")
    return sparsity_factor * float(length) * float(length) * float(head_dim)


def dense_dot_products(length: int) -> int:
    """Dot products of a dense (unmasked or dense-then-invalidate) kernel: ``L²``."""
    require(length > 0, "length must be positive")
    return length * length


def sparse_flops(nnz: int, head_dim: int, value_dim: int | None = None) -> int:
    """FLOPs of a work-optimal kernel: ``2 d`` per score plus ``2 d_v`` per accumulation."""
    require(nnz >= 0 and head_dim > 0, "invalid nnz or head_dim")
    value_dim = head_dim if value_dim is None else value_dim
    return 2 * nnz * head_dim + 2 * nnz * value_dim


def dense_flops(length: int, head_dim: int, value_dim: int | None = None) -> int:
    """FLOPs of a dense kernel (both matrix products, every entry computed)."""
    return sparse_flops(dense_dot_products(length), head_dim, value_dim)
