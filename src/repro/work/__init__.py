"""Work and cost models (paper Section IV-B).

Quantifies the central claim of the paper: the graph kernels are *work
optimal* — they perform exactly the ``O(Sf · L² · d)`` operations the masked
attention requires — whereas dense-then-invalidate implementations pay the
full ``O(L² · d)`` regardless of the mask, and block-sparse implementations
pay for every zero inside a touched block.
"""

from repro.work.counting import (
    dense_dot_products,
    dense_flops,
    expected_dot_products,
    serial_complexity,
    sparse_flops,
)
from repro.work.optimality import (
    WorkOptimalityReport,
    check_work_optimality,
    work_efficiency,
)
from repro.work.pram import PRAMCostModel, block_sparse_cost, dense_invalidate_cost, graph_cost

__all__ = [
    "PRAMCostModel",
    "WorkOptimalityReport",
    "block_sparse_cost",
    "check_work_optimality",
    "dense_dot_products",
    "dense_flops",
    "dense_invalidate_cost",
    "expected_dot_products",
    "graph_cost",
    "serial_complexity",
    "sparse_flops",
    "work_efficiency",
]
