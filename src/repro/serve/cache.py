"""LRU cache for compiled execution plans.

Compiling a plan for a composed mask materialises CSR components and runs set
algebra — work proportional to the mask's edge count.  A serving workload
sees a small set of mask shapes repeated across thousands of requests, so
:class:`PlanCache` keeps the most recently used plans keyed by their
canonical :func:`~repro.serve.plan.plan_cache_key` and tracks hit/miss/
eviction statistics so operators can size the cache from observed traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.obs.recorder import NULL_OBS, Observability
from repro.serve.plan import ExecutionPlan
from repro.utils.validation import require


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses, evictions=self.evictions)


class PlanCache:
    """Least-recently-used cache of :class:`~repro.serve.plan.ExecutionPlan`.

    ``capacity`` bounds the number of cached plans; inserting beyond it evicts
    the least recently *used* entry (both :meth:`get` hits and :meth:`put`
    updates refresh recency).
    """

    def __init__(self, capacity: int = 128, *, obs: Optional[Observability] = None):
        require(capacity >= 1, "cache capacity must be >= 1")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[str, ExecutionPlan]" = OrderedDict()
        self.stats = CacheStats()
        self.obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # membership test does not count as a lookup and does not touch recency
        return key in self._entries

    def keys(self) -> List[str]:
        """Cached keys from least to most recently used."""
        return list(self._entries)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[ExecutionPlan]:
        """Return the cached plan for ``key`` (refreshing recency) or ``None``."""
        plan = self._entries.get(key)
        if plan is None:
            self.stats.misses += 1
            if self.obs.enabled:
                self.obs.plan_cache_events.labels(event="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.obs.enabled:
            self.obs.plan_cache_events.labels(event="hit").inc()
        return plan

    def put(self, key: str, plan: ExecutionPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = plan
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.obs.enabled:
                self.obs.plan_cache_events.labels(event="eviction").inc()

    def get_or_compile(
        self, key: str, compile_fn: Callable[[], ExecutionPlan]
    ) -> Tuple[ExecutionPlan, bool]:
        """Fetch ``key`` or compile-and-insert it; returns ``(plan, was_hit)``."""
        plan = self.get(key)
        if plan is not None:
            return plan, True
        plan = compile_fn()
        self.put(key, plan)
        return plan, False

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._entries.clear()
