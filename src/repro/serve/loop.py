"""Iteration-level continuous batching: the preemptive serving loop.

Everything below the serving front-end is *caller-driven*: clients assemble
``decode_steps`` batches themselves, and an admitted long session holds its
blocks until it finishes, so short requests queue behind it.  This module is
the missing control plane — a :class:`ContinuousBatchingScheduler` that owns
the request lifecycle end to end, in the shape the iteration-level serving
systems (Orca's iteration scheduling, vLLM's preemptive paged serving) gave
the field:

1. **Admission** — queued :class:`LoopRequest`\\ s open paged decode sessions
   through the PR-4 block-table admission path (blocks prereserved, or the
   request keeps waiting), in the order a pluggable
   :class:`SchedulingPolicy` dictates.
2. **Batch formation** — each iteration mixes *prefill chunks* (at most
   ``prefill_chunk`` prompt tokens per stream per iteration, so a long
   prompt cannot monopolize an iteration) with one *decode step* per
   generating stream; work is grouped by plan key and coalesced into one
   stacked kernel pass per group
   (:meth:`~repro.serve.scheduler.AttentionServer.prefill_chunks` /
   :meth:`~repro.serve.scheduler.AttentionServer.decode_steps`).
3. **Preemption** — when a group's atomic block reservation fails with
   :exc:`~repro.serve.paging.PoolExhausted`, a policy-chosen victim is
   evicted: either *swap-out* (its registered blocks park in the pool's warm
   LRU while the live K/V serialize to a host-side
   :class:`~repro.serve.paging.SwapStore`, restored on resume — usually by
   re-sharing the very blocks it parked) or *recompute-from-prompt* (store
   nothing, replay the causal prefill on resume), chosen per victim by
   :func:`repro.perfmodel.decode.preemption_cost`.
4. **Policy** — :class:`FCFSPolicy`, :class:`PriorityPolicy`, or
   :class:`WeightedFairPolicy`: the last picks the next stream by
   priority-weighted sampling, the way the stochastic Kaczmarz literature
   picks the next row by norm-weighted sampling — every positive-weight
   participant is sampled eventually, so no stream starves.

The loop is driven through an injected clock: production threads a
:class:`WallClock`; tests tick a :class:`VirtualClock`, which makes queueing
delays, fairness ratios and starvation bounds exactly reproducible with no
wall-clock flakiness (``tests/harness/simulation.py`` builds a whole
deterministic workload driver on top of it).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import MaskInput
from repro.obs.recorder import NULL_OBS, Observability
from repro.obs.tracing import Span
from repro.perfmodel.decode import blocks_for_tokens, preemption_cost, speculation_cost
from repro.perfmodel.devices import DeviceSpec
from repro.serve.decode import DecodeSession
from repro.serve.paging import PagedKVCache, PoolExhausted, SwapStore
from repro.utils.rng import default_rng
from repro.utils.validation import require


class InfeasibleRequest(RuntimeError):
    """A stream needs more KV blocks than the pool could ever provide."""


# --------------------------------------------------------------------------- #
# Clocks
# --------------------------------------------------------------------------- #
class WallClock:
    """Production clock: reads the host monotonic timer; ``tick`` is a no-op."""

    def now(self) -> float:
        return time.monotonic()

    def tick(self) -> None:
        """Wall time advances by itself."""


class VirtualClock:
    """Simulation clock: time moves only when the harness advances it.

    The scheduler calls :meth:`tick` once per iteration (advancing
    ``iteration_seconds``); workload drivers call :meth:`advance` to skip
    idle gaps between arrivals.  Every queueing/fairness number derived from
    this clock is exactly reproducible.
    """

    def __init__(self, *, start: float = 0.0, iteration_seconds: float = 1.0) -> None:
        require(iteration_seconds >= 0.0, "iteration_seconds must be non-negative")
        self._now = float(start)
        self.iteration_seconds = float(iteration_seconds)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        require(seconds >= 0.0, "time cannot move backwards")
        self._now += float(seconds)

    def tick(self) -> None:
        self.advance(self.iteration_seconds)


# --------------------------------------------------------------------------- #
# Requests and telemetry
# --------------------------------------------------------------------------- #
@dataclass(eq=False)
class LoopRequest:
    """One end-to-end stream for the loop: prompt plus tokens to generate.

    ``q``/``k``/``v`` are the full stream tensors ``batch_shape + (T, d)``
    (the attention-only analogue of prompt + generated token embeddings): the
    first ``prompt_tokens`` rows are the prompt the scheduler prefills in
    chunks, the remaining ``T - prompt_tokens`` rows feed one decode step
    each.  ``priority`` weighs the request under priority/weighted-fair
    policies (higher = more urgent; must be positive).  ``tenant`` names the
    principal the request bills to (the serving edge keys quotas, rate
    limits, and SLO-attainment metrics on it).  ``slo_latency_seconds`` is an
    optional end-to-end deadline measured from submit on the scheduler's
    clock: :class:`SlackPolicy` schedules by the remaining budget, and
    :class:`RequestTelemetry` records whether it was attained.
    ``speculate_k`` asks the loop to decode this stream speculatively: up to
    ``speculate_k`` tokens are drafted and verified per iteration instead of
    one (``0``/``1`` = plain stepping).  Outputs are bit-identical either
    way; the loop falls back to one-token steps for a stream whose observed
    acceptance rate drops below the :func:`~repro.perfmodel.decode.speculation_cost`
    break-even.  ``request_id`` is assigned by the scheduler at submit (ids
    double as swap-store keys, so they come from one collision-free counter).
    """

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    mask: MaskInput = None
    prompt_tokens: int = 1
    priority: float = 1.0
    tenant: Optional[str] = None
    slo_latency_seconds: Optional[float] = None
    speculate_k: int = 0
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.q, self.k, self.v = np.asarray(self.q), np.asarray(self.k), np.asarray(self.v)
        require(self.q.ndim >= 2, "q must be a (..., T, d_k) array")
        require(self.k.shape == self.q.shape, "q and k must have matching shapes")
        require(
            self.v.shape[:-1] == self.q.shape[:-1],
            "v must cover the same batch axes and rows as q",
        )
        require(self.total_tokens >= 1, "a request needs at least one token")
        require(
            0 <= self.prompt_tokens <= self.total_tokens,
            "prompt_tokens must lie within the stream",
        )
        require(self.priority > 0, "priority must be positive")
        require(
            self.tenant is None or (isinstance(self.tenant, str) and self.tenant),
            "tenant must be a non-empty string when given",
        )
        if self.slo_latency_seconds is not None:
            self.slo_latency_seconds = float(self.slo_latency_seconds)
            require(self.slo_latency_seconds > 0.0, "slo_latency_seconds must be positive")
        self.speculate_k = int(self.speculate_k)
        require(self.speculate_k >= 0, "speculate_k must be non-negative")

    @property
    def total_tokens(self) -> int:
        return int(self.q.shape[-2])

    @property
    def decode_tokens(self) -> int:
        return self.total_tokens - self.prompt_tokens

    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return tuple(int(s) for s in self.q.shape[:-2])


@dataclass
class RequestTelemetry:
    """Per-request lifecycle measurements, stamped from the injected clock."""

    request_id: int
    priority: float
    prompt_tokens: int
    total_tokens: int
    arrival_time: float
    #: tenant the request bills to (``None`` for untagged callers)
    tenant: Optional[str] = None
    #: end-to-end deadline budget measured from ``arrival_time`` (``None`` =
    #: best-effort; SLO fields below stay ``None``/unset for these)
    slo_latency_seconds: Optional[float] = None
    first_scheduled_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: clock time the first token *past the prompt* was emitted (for
    #: prompt-only streams: the finish time) — TTFT's numerator
    first_token_time: Optional[float] = None
    #: first-token-to-finish span; 0 until the stream finishes
    decode_seconds: float = 0.0
    #: accumulated seconds spent waiting for admission (initial + re-queues
    #: after preemption) — the starvation tests bound this per policy
    queue_seconds: float = 0.0
    preemptions: int = 0
    swap_outs: int = 0
    swap_ins: int = 0
    recompute_restores: int = 0
    tokens_emitted: int = 0
    iterations_scheduled: int = 0
    #: speculative decoding: tokens drafted / accepted for this stream, and
    #: zero-acceptance passes resolved by a standard fallback step
    speculate_drafted: int = 0
    speculate_accepted: int = 0
    speculate_fallbacks: int = 0
    #: the loop switched this stream back to one-token stepping (observed
    #: accept rate below break-even, or a degraded pass under pool pressure)
    speculate_disabled: bool = False
    #: set at finish for SLO-carrying requests: did turnaround beat the SLO?
    slo_attained: Optional[bool] = None
    #: SLO budget left at finish (negative = missed by that much); ``None``
    #: for best-effort requests or until the stream finishes
    slack_at_finish: Optional[float] = None
    #: the caller abandoned the stream before it finished
    cancelled: bool = False

    @property
    def deadline(self) -> Optional[float]:
        """Absolute clock time the SLO expires (None for best-effort)."""
        if self.slo_latency_seconds is None:
            return None
        return self.arrival_time + self.slo_latency_seconds

    @property
    def time_in_queue(self) -> float:
        return self.queue_seconds

    @property
    def ttft_seconds(self) -> Optional[float]:
        """Submit-to-first-emitted-token latency (None until it happens)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def turnaround_seconds(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def speculate_accept_rate(self) -> float:
        """Accepted fraction of this stream's drafted tokens (0.0 before any)."""
        if self.speculate_drafted <= 0:
            return 0.0
        return self.speculate_accepted / self.speculate_drafted


# stream lifecycle states
_WAITING = "waiting"
_RUNNING = "running"
_FINISHED = "finished"


@dataclass(eq=False)
class _Stream:
    """Scheduler-private state of one submitted request."""

    request: LoopRequest
    telemetry: RequestTelemetry
    waiting_since: float
    session: Optional[DecodeSession] = None
    #: tokens whose outputs are recorded; the cache is always rebuilt to
    #: exactly this position on resume, so no token is lost or duplicated
    emitted: int = 0
    state: str = _WAITING
    #: request id key into the swap store while preempted-with-swap
    swap_key: Optional[int] = None
    outputs: List[np.ndarray] = field(default_factory=list)
    #: lifecycle trace spans (None when tracing is off)
    span: Optional[Span] = None
    queue_span: Optional[Span] = None
    #: speculation switched off for this stream (accept rate below break-even)
    speculate_off: bool = False

    @property
    def prompt_remaining(self) -> int:
        return max(0, self.request.prompt_tokens - self.emitted)

    @property
    def finished(self) -> bool:
        return self.emitted >= self.request.total_tokens


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #
class SchedulingPolicy:
    """Orders streams for admission/batching and picks preemption victims.

    ``rank`` returns the streams most deserving of service first; the
    default ``victims`` preempts in exactly the opposite order, so the
    stream a policy would serve last is the first to lose its blocks.
    """

    name = "policy"

    def rank(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        raise NotImplementedError

    def victims(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        return list(reversed(self.rank(streams, now)))


class FCFSPolicy(SchedulingPolicy):
    """First come, first served: strict arrival order."""

    name = "fcfs"

    def rank(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        return sorted(
            streams,
            key=lambda s: (s.telemetry.arrival_time, s.telemetry.request_id),
        )


class PriorityPolicy(SchedulingPolicy):
    """Higher ``priority`` first; arrival order breaks ties."""

    name = "priority"

    def rank(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        return sorted(
            streams,
            key=lambda s: (
                -s.request.priority,
                s.telemetry.arrival_time,
                s.telemetry.request_id,
            ),
        )


class WeightedFairPolicy(SchedulingPolicy):
    """Priority-weighted sampling without replacement, starvation-free.

    The next stream is drawn with probability proportional to
    ``priority / (1 + tokens_emitted)`` — the row-action idea of the
    stochastic Kaczmarz methods (pick the next row by norm-weighted
    sampling) applied to streams: under-served streams carry growing
    relative weight, so the max/min served-token ratio stays bounded and
    every positive-weight stream is sampled eventually.  Seeded, hence
    deterministic under the virtual clock.
    """

    name = "weighted"

    def __init__(self, seed: int = 0) -> None:
        self._rng = default_rng(seed)

    def rank(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        # stable base order first so the sampling is reproducible regardless
        # of the caller's list order
        pool = sorted(
            streams,
            key=lambda s: (s.telemetry.arrival_time, s.telemetry.request_id),
        )
        weights = np.array(
            [s.request.priority / (1.0 + s.telemetry.tokens_emitted) for s in pool],
            dtype=np.float64,
        )
        order: List[_Stream] = []
        alive = list(range(len(pool)))
        while alive:
            w = weights[alive]
            pick = int(self._rng.choice(len(alive), p=w / w.sum()))
            order.append(pool[alive.pop(pick)])
        return order


class SlackPolicy(SchedulingPolicy):
    """Least-slack-first deadline scheduling; priority breaks ties.

    A stream's *slack* is the SLO budget it would have left if served at full
    speed from now on: ``deadline - now - remaining_tokens * step_seconds``.
    Ranking by ascending slack is the weighted-Kaczmarz move applied to
    deadlines — serve the stream whose residual (time budget) is most nearly
    violated, the way the adaptive row-sampling methods pick the row with
    the largest residual norm.  Best-effort streams (no SLO) carry infinite
    slack, so they fill leftover capacity and are the first preemption
    victims (the default ``victims`` reversal makes eviction most-slack
    first, i.e. deadline-driven).

    ``step_seconds`` is the assumed per-token service time; the default of
    1.0 matches :class:`VirtualClock`'s one-second iterations, so simulated
    slack is exact.  On a wall clock pass a measured per-token latency.
    """

    name = "slack"

    def __init__(self, *, step_seconds: float = 1.0) -> None:
        require(step_seconds >= 0.0, "step_seconds must be non-negative")
        self.step_seconds = float(step_seconds)

    def slack(self, stream: _Stream, now: float) -> float:
        telemetry = stream.telemetry
        deadline = telemetry.deadline
        if deadline is None:
            return float("inf")
        remaining = telemetry.total_tokens - telemetry.tokens_emitted
        return deadline - now - remaining * self.step_seconds

    def rank(self, streams: Sequence[_Stream], now: float) -> List[_Stream]:
        return sorted(
            streams,
            key=lambda s: (
                self.slack(s, now),
                -s.request.priority,
                s.telemetry.arrival_time,
                s.telemetry.request_id,
            ),
        )


#: name → factory taking the policy seed (ignored by the deterministic ones)
_POLICIES = {
    FCFSPolicy.name: lambda seed: FCFSPolicy(),
    PriorityPolicy.name: lambda seed: PriorityPolicy(),
    WeightedFairPolicy.name: lambda seed: WeightedFairPolicy(seed),
    SlackPolicy.name: lambda seed: SlackPolicy(),
}


def scheduling_policy(name, *, seed: int = 0) -> SchedulingPolicy:
    """Resolve a policy: by name (``"fcfs"``, ``"priority"``, ``"weighted"``,
    ``"slack"``) or pass an already-built :class:`SchedulingPolicy` through.

    Raises :exc:`ValueError` listing the valid names on anything else, so a
    typo'd config fails with the menu rather than a bare lookup error.
    """
    if isinstance(name, SchedulingPolicy):
        return name
    if not isinstance(name, str) or name not in _POLICIES:
        raise ValueError(
            f"unknown scheduling policy {name!r}; valid names: "
            f"{sorted(_POLICIES)} (or pass a SchedulingPolicy instance)"
        )
    return _POLICIES[name](seed)


def resolve_serving_kwargs(
    *,
    policy=None,
    clock=None,
    obs: Optional[Observability] = None,
    policy_seed: int = 0,
    default_policy: Optional[SchedulingPolicy] = None,
    default_obs: Optional[Observability] = None,
) -> Tuple[SchedulingPolicy, object, Observability]:
    """The one shared validator behind the uniform constructor keywords.

    :class:`ContinuousBatchingScheduler`, :class:`~repro.serve.client.ServingClient`
    and :func:`repro.obs.scenarios.run_scenario` all accept ``policy=`` (name
    or instance), ``clock=`` and ``obs=``; this helper normalizes them
    identically instead of each call site re-implementing the checks.
    Returns ``(policy, clock, obs)`` with defaults applied.
    """
    resolved_policy = (
        scheduling_policy(policy, seed=policy_seed)
        if policy is not None
        else (default_policy if default_policy is not None else FCFSPolicy())
    )
    resolved_clock = clock if clock is not None else WallClock()
    require(
        callable(getattr(resolved_clock, "now", None))
        and callable(getattr(resolved_clock, "tick", None)),
        "clock must provide now() and tick() (WallClock / VirtualClock)",
    )
    resolved_obs = obs if obs is not None else (default_obs if default_obs is not None else NULL_OBS)
    require(
        isinstance(resolved_obs, Observability),
        "obs must be an Observability recorder (or None for the default)",
    )
    return resolved_policy, resolved_clock, resolved_obs


# --------------------------------------------------------------------------- #
# Loop statistics
# --------------------------------------------------------------------------- #
#: Iterations of ``(duration, tokens)`` history :class:`LoopStats` retains —
#: ample for any benchmark window while keeping a perpetual server's
#: footprint constant.
ITERATION_LOG_LIMIT = 4096


@dataclass
class IterationReport:
    """What one :meth:`ContinuousBatchingScheduler.step` accomplished."""

    iteration: int
    admitted: List[int] = field(default_factory=list)
    finished: List[int] = field(default_factory=list)
    preempted: List[int] = field(default_factory=list)
    prefill_tokens: int = 0
    decode_tokens: int = 0
    swap_ins: int = 0

    @property
    def tokens(self) -> int:
        return self.prefill_tokens + self.decode_tokens


@dataclass(frozen=True)
class LoopStatsSnapshot:
    """Immutable copy of :class:`LoopStats` taken under its lock."""

    iterations: int
    admitted: int
    admission_blocked: int
    finished: int
    cancelled: int
    withdrawn: int
    slo_attained: int
    slo_missed: int
    prefill_tokens: int
    decode_tokens: int
    preemptions: int
    swap_outs: int
    swap_ins: int
    recompute_restores: int
    recompute_replayed_tokens: int
    speculate_passes: int
    speculate_drafted: int
    speculate_accepted: int
    speculate_rolled_back: int
    speculate_fallbacks: int
    speculate_disabled: int
    preemption_seconds: float
    wall_seconds: float
    iteration_log: Tuple[Tuple[float, int], ...]

    @property
    def tokens_total(self) -> int:
        return self.prefill_tokens + self.decode_tokens

    @property
    def tokens_per_iteration(self) -> float:
        return self.tokens_total / self.iterations if self.iterations else 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.tokens_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speculate_accept_rate(self) -> float:
        if self.speculate_drafted <= 0:
            return 0.0
        return self.speculate_accepted / self.speculate_drafted


@dataclass
class LoopStats:
    """Lifetime counters of one scheduler.

    The owning scheduler mutates these under :attr:`lock` (held for the whole
    iteration); concurrent readers must go through :meth:`snapshot` — reading
    the live fields mid-iteration can tear (e.g. ``prefill_tokens`` updated
    but ``iterations`` not yet).
    """

    iterations: int = 0
    admitted: int = 0
    admission_blocked: int = 0
    finished: int = 0
    #: streams abandoned via :meth:`ContinuousBatchingScheduler.cancel`
    cancelled: int = 0
    #: waiting streams handed back via :meth:`ContinuousBatchingScheduler.withdraw`
    #: (a placement layer moved them to another replica before they ran)
    withdrawn: int = 0
    #: finished SLO-carrying streams that beat / missed their deadline
    slo_attained: int = 0
    slo_missed: int = 0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    preemptions: int = 0
    swap_outs: int = 0
    swap_ins: int = 0
    recompute_restores: int = 0
    #: prefix tokens re-prefilled by recompute restores (work paid twice)
    recompute_replayed_tokens: int = 0
    #: speculative decoding: draft-and-verify passes run, tokens drafted /
    #: accepted / erased by rollback, zero-acceptance fallback steps, and
    #: streams switched back to plain stepping by the break-even check
    speculate_passes: int = 0
    speculate_drafted: int = 0
    speculate_accepted: int = 0
    speculate_rolled_back: int = 0
    speculate_fallbacks: int = 0
    speculate_disabled: int = 0
    #: host wall time spent serializing/restoring preempted caches
    preemption_seconds: float = 0.0
    #: host wall time spent inside ``step()`` (independent of the injected clock)
    wall_seconds: float = 0.0
    #: the most recent ``(host_seconds, tokens)`` pair per iteration — the
    #: benchmark's per-token latency source.  Bounded so a long-lived
    #: production loop does not grow memory with its uptime.
    iteration_log: "deque[Tuple[float, int]]" = field(
        default_factory=lambda: deque(maxlen=ITERATION_LOG_LIMIT)
    )
    #: re-entrant: ``step()`` holds it for a whole iteration, and a
    #: cancellation can land *inside* the iteration (a client disconnect
    #: observed mid-batch, e.g. between a speculative draft and its verify
    #: pass) — ``cancel()`` must be able to re-acquire it on the same thread
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def tokens_total(self) -> int:
        return self.prefill_tokens + self.decode_tokens

    @property
    def tokens_per_iteration(self) -> float:
        return self.tokens_total / self.iterations if self.iterations else 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.tokens_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speculate_accept_rate(self) -> float:
        """Accepted fraction of all drafted speculative tokens (0.0 before any)."""
        if self.speculate_drafted <= 0:
            return 0.0
        return self.speculate_accepted / self.speculate_drafted

    def snapshot(self) -> LoopStatsSnapshot:
        """Tear-free immutable copy (taken under the scheduler's stats lock)."""
        with self.lock:
            return LoopStatsSnapshot(
                iterations=self.iterations,
                admitted=self.admitted,
                admission_blocked=self.admission_blocked,
                finished=self.finished,
                cancelled=self.cancelled,
                withdrawn=self.withdrawn,
                slo_attained=self.slo_attained,
                slo_missed=self.slo_missed,
                prefill_tokens=self.prefill_tokens,
                decode_tokens=self.decode_tokens,
                preemptions=self.preemptions,
                swap_outs=self.swap_outs,
                swap_ins=self.swap_ins,
                recompute_restores=self.recompute_restores,
                recompute_replayed_tokens=self.recompute_replayed_tokens,
                speculate_passes=self.speculate_passes,
                speculate_drafted=self.speculate_drafted,
                speculate_accepted=self.speculate_accepted,
                speculate_rolled_back=self.speculate_rolled_back,
                speculate_fallbacks=self.speculate_fallbacks,
                speculate_disabled=self.speculate_disabled,
                preemption_seconds=self.preemption_seconds,
                wall_seconds=self.wall_seconds,
                iteration_log=tuple(self.iteration_log),
            )


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #
class ContinuousBatchingScheduler:
    """Owns the request lifecycle: admission, batching, preemption, completion.

    Parameters
    ----------
    server:
        An :class:`~repro.serve.scheduler.AttentionServer` with a shared
        block pool installed (``create_block_pool``): every stream the loop
        admits is a paged decode session against that pool.
    policy:
        A :class:`SchedulingPolicy` instance or registry name (``"fcfs"`` —
        the default — ``"priority"``, ``"weighted"``, ``"slack"``) ordering
        admission, batch formation and preemption victims.
    clock:
        :class:`WallClock` (default) or :class:`VirtualClock` — all telemetry
        timestamps come from it, never from the host clock.
    max_streams:
        Cap on concurrently admitted streams per iteration.
    prefill_chunk:
        Most prompt tokens one stream may prefill per iteration (chunked
        prefill: long prompts interleave with everyone else's decode steps).
    max_iteration_tokens:
        Optional global token budget per iteration, spent in policy order
        (decode steps cost one token, prefill chunks their length).
    preemption:
        ``"swap"``, ``"recompute"``, or ``"auto"`` (pick per victim via
        :func:`repro.perfmodel.decode.preemption_cost`; needs ``device`` or
        a device-carrying server, else auto falls back to swap).
    swap_store:
        Host-side :class:`~repro.serve.paging.SwapStore` for swapped caches
        (a fresh one by default; pass a shared store to meter host memory).
    device:
        :class:`~repro.perfmodel.devices.DeviceSpec` for the preemption cost
        model (defaults to the server's device).
    obs:
        An :class:`~repro.obs.recorder.Observability` recorder for lifecycle
        metrics and trace spans (defaults to the server's recorder, which
        defaults to the no-op :data:`~repro.obs.recorder.NULL_OBS`).  All
        trace timestamps come from ``clock``, so traces on a
        :class:`VirtualClock` replay bit-identically.
    on_emit:
        Optional callback ``(request_id, kind, output)`` fired synchronously
        whenever a stream emits tokens (``kind`` is ``"prefill"`` or
        ``"decode"``); per-stream listeners can additionally be registered
        with :meth:`add_emit_listener`.  The serving edge bridges these into
        per-stream asyncio queues.
    """

    def __init__(
        self,
        server,
        *,
        policy=None,
        policy_seed: int = 0,
        clock=None,
        max_streams: int = 8,
        prefill_chunk: int = 32,
        max_iteration_tokens: Optional[int] = None,
        preemption: str = "auto",
        swap_store: Optional[SwapStore] = None,
        device: Optional[DeviceSpec] = None,
        obs: Optional[Observability] = None,
        on_emit=None,
    ) -> None:
        require(
            server.block_pool is not None,
            "the loop schedules paged sessions: call server.create_block_pool first",
        )
        require(max_streams >= 1, "max_streams must be >= 1")
        require(prefill_chunk >= 1, "prefill_chunk must be >= 1")
        require(
            max_iteration_tokens is None or max_iteration_tokens >= 1,
            "max_iteration_tokens must be >= 1 when given",
        )
        require(
            preemption in ("auto", "swap", "recompute"),
            "preemption must be auto, swap, or recompute",
        )
        self.server = server
        self.pool = server.block_pool
        self.policy, self.clock, self.obs = resolve_serving_kwargs(
            policy=policy,
            policy_seed=policy_seed,
            clock=clock,
            obs=obs,
            default_obs=getattr(server, "obs", NULL_OBS),
        )
        self.max_streams = int(max_streams)
        self.prefill_chunk = int(prefill_chunk)
        self.max_iteration_tokens = max_iteration_tokens
        self.preemption = preemption
        self.swap_store = swap_store if swap_store is not None else SwapStore()
        self.device = device if device is not None else server.device
        self.on_emit = on_emit
        self.stats = LoopStats()
        self.results: Dict[int, np.ndarray] = {}
        self.telemetry: Dict[int, RequestTelemetry] = {}
        self._streams: Dict[int, _Stream] = {}
        self._waiting: List[_Stream] = []
        self._running: List[_Stream] = []
        #: request ids excluded from admission and batch formation until
        #: released — the edge's backpressure lever for stalled consumers
        self._held: set = set()
        self._emit_listeners: Dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #
    def submit(self, request: LoopRequest) -> int:
        """Queue one stream; returns its newly assigned request id."""
        # ids always come from the server's monotonic counter: a caller-chosen
        # id could collide with a later auto-assigned one (and with the swap
        # store's keys), so preset ids are refused rather than trusted
        require(
            request.request_id is None,
            "the loop assigns request ids at submit; leave request_id unset",
        )
        # structural feasibility up front: a stream that cannot fit the pool
        # even running alone must fail its submitter with a typed error, not
        # crash the loop mid-iteration for every other stream (first-chunk
        # reservations are always <= the whole stream, so this bound also
        # keeps admission's reserve within what the pool could ever grant)
        needed = blocks_for_tokens(request.total_tokens, self.pool.block_size)
        if needed > self.pool.num_blocks:
            raise InfeasibleRequest(
                f"stream of {request.total_tokens} tokens needs {needed} KV "
                f"blocks but the pool holds only {self.pool.num_blocks} "
                f"blocks of {self.pool.block_size} tokens"
            )
        request.request_id = self.server.next_request_id()
        rid = request.request_id
        now = self.clock.now()
        telemetry = RequestTelemetry(
            request_id=rid,
            priority=request.priority,
            prompt_tokens=request.prompt_tokens,
            total_tokens=request.total_tokens,
            arrival_time=now,
            tenant=request.tenant,
            slo_latency_seconds=request.slo_latency_seconds,
        )
        stream = _Stream(request=request, telemetry=telemetry, waiting_since=now)
        self._streams[rid] = stream
        self._waiting.append(stream)
        self.telemetry[rid] = telemetry
        obs = self.obs
        if obs.enabled:
            obs.requests_submitted.inc()
            obs.queued_streams.set(len(self._waiting))
            if obs.trace is not None:
                stream.span = obs.trace.start_span(
                    "request",
                    now,
                    request_id=rid,
                    prompt_tokens=request.prompt_tokens,
                    total_tokens=request.total_tokens,
                    priority=request.priority,
                )
                stream.queue_span = obs.trace.start_span(
                    "queue", now, request_id=rid, parent=stream.span, cause="submit"
                )
                obs.trace.event("submit", now, span=stream.span, request_id=rid)
        return rid

    def submit_many(self, requests: Sequence[LoopRequest]) -> List[int]:
        return [self.submit(request) for request in requests]

    @property
    def waiting(self) -> int:
        """Streams queued for admission (including preempted ones)."""
        return len(self._waiting)

    @property
    def running(self) -> int:
        """Streams currently holding a live session."""
        return len(self._running)

    @property
    def active(self) -> int:
        return self.waiting + self.running

    @property
    def held(self) -> int:
        """Streams currently excluded from scheduling by :meth:`hold`."""
        return len(self._held)

    # ------------------------------------------------------------------ #
    # Streaming hooks: emit listeners, holds, cancellation
    # ------------------------------------------------------------------ #
    def add_emit_listener(self, request_id: int, listener) -> None:
        """Register ``listener(request_id, kind, output)`` for one stream."""
        require(request_id in self._streams, f"unknown or finished request {request_id}")
        self._emit_listeners[request_id] = listener

    def remove_emit_listener(self, request_id: int) -> None:
        self._emit_listeners.pop(request_id, None)

    def _notify_emit(self, stream: _Stream, kind: str, output: np.ndarray) -> None:
        rid = stream.request.request_id
        if self.on_emit is not None:
            self.on_emit(rid, kind, output)
        listener = self._emit_listeners.get(rid)
        if listener is not None:
            listener(rid, kind, output)

    def hold(self, request_id: int) -> None:
        """Exclude a stream from admission and batch formation (backpressure).

        A held running stream keeps its session and blocks — it simply stops
        being scheduled — so resuming is free.  The pool pressure a held
        stream exerts is the caller's to manage (the edge releases holds as
        its consumer drains).
        """
        require(request_id in self._streams, f"unknown or finished request {request_id}")
        self._held.add(request_id)

    def release_hold(self, request_id: int) -> None:
        self._held.discard(request_id)

    def cancel(self, request_id: int) -> bool:
        """Abort a submitted stream wherever it is in its lifecycle.

        Releases the session's blocks (or pops its swap-store payload),
        retracts any prefix-share credit by closing the paged cache through
        the server, and marks telemetry ``cancelled``.  Partial outputs are
        dropped — a cancelled stream never lands in :attr:`results`.
        Returns ``False`` for unknown / already-finished ids (cancellation
        races a natural finish benignly).
        """
        stream = self._streams.get(request_id)
        if stream is None or stream.state == _FINISHED:
            return False
        if stream.state == _RUNNING:
            self._running.remove(stream)
            self.server.close_decode_session(stream.session)
        else:
            self._waiting.remove(stream)
            if stream.swap_key is not None:
                self.swap_store.pop(stream.swap_key)
                stream.swap_key = None
            if stream.session is not None:
                # preempted-by-recompute session: no cache to release, but the
                # close still retires the session record on the server
                self.server.close_decode_session(stream.session)
        stream.state = _FINISHED
        stream.outputs = []
        self._held.discard(request_id)
        self._emit_listeners.pop(request_id, None)
        telemetry = stream.telemetry
        telemetry.cancelled = True
        del self._streams[request_id]
        with self.stats.lock:
            self.stats.cancelled += 1
        obs = self.obs
        if obs.enabled:
            now = self.clock.now()
            obs.requests_cancelled.inc()
            obs.active_streams.set(len(self._running))
            obs.queued_streams.set(len(self._waiting))
            if obs.trace is not None:
                if stream.queue_span is not None:
                    obs.trace.end_span(stream.queue_span, now)
                    stream.queue_span = None
                obs.trace.event("cancel", now, span=stream.span, request_id=request_id)
                if stream.span is not None:
                    obs.trace.end_span(stream.span, now, tokens=telemetry.tokens_emitted)
                    stream.span = None
        return True

    # ------------------------------------------------------------------ #
    # Placement hooks: withdrawal and load inspection for a replica router
    # ------------------------------------------------------------------ #
    @property
    def pending_tokens(self) -> int:
        """Tokens still to emit across all waiting and running streams.

        The load signal a placement layer balances on: unlike stream counts,
        it weighs a long prompt heavier than a one-token decode tail.
        """
        return sum(
            stream.request.total_tokens - stream.emitted
            for stream in self._streams.values()
            if stream.state != _FINISHED
        )

    def withdrawable(self) -> List[int]:
        """Ids of waiting streams :meth:`withdraw` would currently accept."""
        return [
            stream.request.request_id
            for stream in self._waiting
            if stream.session is None
            and stream.swap_key is None
            and not stream.emitted
            and stream.request.request_id not in self._held
        ]

    def withdraw(self, request_id: int) -> Optional[LoopRequest]:
        """Remove a waiting, never-scheduled stream and hand its request back.

        The rebalancing primitive: a placement layer can pull a stream that
        has not yet touched this replica — still waiting, never activated,
        nothing emitted, no swap payload, not held — and resubmit it to
        another scheduler.  The request comes back with ``request_id``
        cleared so the next ``submit`` assigns a fresh id; this scheduler's
        telemetry for the withdrawn id is dropped (the stream never ran
        here).  Returns ``None`` for anything ineligible — unknown ids,
        running or preempted streams, streams with emitted tokens — so
        callers racing a natural activation simply leave the stream where
        it is.
        """
        stream = self._streams.get(request_id)
        if (
            stream is None
            or stream.state != _WAITING
            or stream.session is not None
            or stream.swap_key is not None
            or stream.emitted
            or request_id in self._held
        ):
            return None
        self._waiting.remove(stream)
        del self._streams[request_id]
        del self.telemetry[request_id]
        self._emit_listeners.pop(request_id, None)
        with self.stats.lock:
            self.stats.withdrawn += 1
        obs = self.obs
        if obs.enabled:
            now = self.clock.now()
            obs.queued_streams.set(len(self._waiting))
            if obs.trace is not None:
                if stream.queue_span is not None:
                    obs.trace.end_span(stream.queue_span, now)
                    stream.queue_span = None
                obs.trace.event("withdraw", now, span=stream.span, request_id=request_id)
                if stream.span is not None:
                    obs.trace.end_span(stream.span, now, tokens=0)
                    stream.span = None
        request = stream.request
        request.request_id = None
        return request

    # ------------------------------------------------------------------ #
    # The iteration
    # ------------------------------------------------------------------ #
    def step(self) -> IterationReport:
        """Run one scheduler iteration; returns what it accomplished."""
        started = time.perf_counter()
        # one lock hold per iteration: snapshot() readers see whole iterations
        with self.stats.lock:
            self.stats.iterations += 1
            report = IterationReport(iteration=self.stats.iterations)

            self._admit(report)
            plan = self._form_batch()
            self._execute(plan, report)
            self._finish_streams(report)

            duration = time.perf_counter() - started
            self.stats.wall_seconds += duration
            self.stats.iteration_log.append((duration, report.tokens))
        obs = self.obs
        if obs.enabled:
            obs.iterations.inc()
            obs.iteration_batch_tokens.observe(report.tokens)
            obs.active_streams.set(len(self._running))
            obs.queued_streams.set(len(self._waiting))
            if obs.trace is not None:
                obs.trace.event(
                    "iteration",
                    self.clock.now(),
                    iteration=report.iteration,
                    tokens=report.tokens,
                    admitted=len(report.admitted),
                    finished=len(report.finished),
                    preempted=len(report.preempted),
                )
        self.clock.tick()
        return report

    def run(self, *, max_iterations: Optional[int] = None) -> Dict[int, np.ndarray]:
        """Iterate until every submitted stream finishes; returns the outputs.

        Guards forward progress: an iteration that admits nothing, emits
        nothing and finishes nothing twice in a row can never unwedge
        itself, so the loop fails loudly instead of spinning.
        """
        stalled = 0
        while self._waiting or self._running:
            if max_iterations is not None and self.stats.iterations >= max_iterations:
                raise RuntimeError(
                    f"loop exceeded {max_iterations} iterations with "
                    f"{self.active} streams still active"
                )
            report = self.step()
            if report.tokens == 0 and not report.admitted and not report.finished:
                stalled += 1
                require(stalled < 2, "scheduler stalled: no admission, tokens, or finishes")
            else:
                stalled = 0
        return self.results

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def _admit(self, report: IterationReport) -> None:
        now = self.clock.now()
        for stream in self.policy.rank(self._waiting, now):
            if len(self._running) >= self.max_streams:
                break
            if stream.request.request_id in self._held:
                continue
            try:
                self._activate(stream, report)
            except PoolExhausted:
                self.stats.admission_blocked += 1
                # head-of-line: admission follows policy order strictly, so a
                # blocked head is retried next iteration rather than jumped
                break

    def _activate(self, stream: _Stream, report: IterationReport) -> None:
        """Open (or restore) the stream's session; raises PoolExhausted clean."""
        request = stream.request
        mode = "fresh"
        if stream.session is None:
            # fresh stream: PR-4 admission — first-chunk blocks prereserved
            # atomically, or the open rejects and the stream keeps waiting
            first_chunk = min(self.prefill_chunk, request.prompt_tokens) or 1
            stream.session = self.server._open_decode_session(
                request.mask,
                request.total_tokens,
                paged=True,
                reserve_tokens=first_chunk,
            )
            readmission = False
        else:
            readmission = True
            mode = self._restore(stream)
            if mode == "swap":
                report.swap_ins += 1
        now = self.clock.now()
        telemetry = stream.telemetry
        waited = now - stream.waiting_since
        telemetry.queue_seconds += waited
        first_admission = telemetry.first_scheduled_time is None
        if first_admission:
            telemetry.first_scheduled_time = now
        stream.state = _RUNNING
        self._waiting.remove(stream)
        self._running.append(stream)
        self.stats.admitted += 1
        report.admitted.append(request.request_id)
        obs = self.obs
        if obs.enabled:
            if first_admission:
                obs.queue_seconds.observe(now - telemetry.arrival_time)
            if readmission:
                # preempt-to-restore stall actually paid by this stream
                obs.preemption_stall_seconds.observe(waited)
                if mode == "swap":
                    obs.swap_ins.inc()
            if obs.trace is not None:
                if stream.queue_span is not None:
                    obs.trace.end_span(stream.queue_span, now)
                    stream.queue_span = None
                event = "swap_in" if mode == "swap" else "admit"
                obs.trace.event(
                    event,
                    now,
                    span=stream.span,
                    request_id=request.request_id,
                    restore=mode,
                )

    def _restore(self, stream: _Stream) -> str:
        """Rebuild a preempted stream's cache to exactly ``emitted`` tokens."""
        started = time.perf_counter()
        request = stream.request
        session = stream.session
        cache = PagedKVCache(self.pool, max_length=request.total_tokens)
        try:
            if stream.swap_key is not None:
                # swap-in: map the encoded payload back; identical stored
                # bytes re-share any block still parked in the warm LRU, and
                # quantized streams resume without a decode/re-encode cycle
                handle = self.swap_store.peek(stream.swap_key)
                cache.restore(handle)
            elif stream.emitted == 0:
                # a victim preempted before any progress: re-admission must be
                # a real capacity grant like a fresh open, not an advisory
                # empty cache — otherwise the stream occupies a slot with no
                # blocks and its first prefill evicts a progressing stream
                first_chunk = min(self.prefill_chunk, request.prompt_tokens) or 1
                cache.prereserve(blocks_for_tokens(first_chunk, self.pool.block_size))
            else:
                # recompute-from-prompt: replay the causal prefill (the
                # attention outputs were already emitted — only the K/V
                # residency is rebuilt, at recompute cost).  The replay is
                # chunked like regular prefill so no single kernel pass
                # covers an arbitrarily long prefix; it still completes
                # within this admission, which the preemption cost model
                # prices and ``recompute_replayed_tokens`` makes visible.
                session.cache = cache
                for start in range(0, stream.emitted, self.prefill_chunk):
                    stop = min(start + self.prefill_chunk, stream.emitted)
                    session.prefill(
                        request.q[..., start:stop, :],
                        request.k[..., start:stop, :],
                        request.v[..., start:stop, :],
                    )
                self.stats.recompute_replayed_tokens += stream.emitted
        except PoolExhausted:
            session.cache = None
            cache.release()
            raise
        finally:
            self.stats.preemption_seconds += time.perf_counter() - started
        session.cache = cache
        if stream.swap_key is not None:
            self.swap_store.pop(stream.swap_key)
            stream.swap_key = None
            stream.telemetry.swap_ins += 1
            self.stats.swap_ins += 1
            return "swap"
        if stream.emitted > 0:
            stream.telemetry.recompute_restores += 1
            self.stats.recompute_restores += 1
            return "recompute"
        return "fresh"

    # ------------------------------------------------------------------ #
    # Batch formation
    # ------------------------------------------------------------------ #
    def _form_batch(self) -> List[Tuple[_Stream, str, int]]:
        """Pick this iteration's work in policy order under the token budget."""
        budget = self.max_iteration_tokens or float("inf")
        plan: List[Tuple[_Stream, str, int]] = []
        for stream in self.policy.rank(self._running, self.clock.now()):
            if budget < 1:
                break
            if stream.request.request_id in self._held:
                continue
            if stream.prompt_remaining > 0:
                count = int(min(self.prefill_chunk, stream.prompt_remaining, budget))
                plan.append((stream, "prefill", count))
                budget -= count
            elif not stream.finished:
                request = stream.request
                remaining = request.total_tokens - stream.emitted
                count = 1
                if request.speculate_k > 1 and not stream.speculate_off:
                    count = int(min(request.speculate_k, remaining, budget))
                if count > 1:
                    plan.append((stream, "speculate", count))
                else:
                    plan.append((stream, "decode", 1))
                budget -= count
        return plan

    def _execute(self, plan: List[Tuple[_Stream, str, int]], report: IterationReport) -> None:
        """Run the iteration's groups, preempting victims on pool exhaustion."""
        for group in self._group(plan):
            self._execute_group(group, report)

    def _group(
        self, plan: List[Tuple[_Stream, str, int]]
    ) -> List[List[Tuple[_Stream, str, int]]]:
        """Coalesce the batch: same-plan same-position same-shape work fuses.

        The key mirrors the server's grouping exactly, so each group maps to
        one stacked kernel pass — and one *atomic* block reservation, which
        is what lets :meth:`_execute_group` retry a failed group after
        preempting a victim without any partial advance.
        """
        groups: Dict[Tuple, List[Tuple[_Stream, str, int]]] = {}
        for stream, kind, count in plan:
            session = stream.session
            key = (
                kind,
                count,
                session.plan.key or id(session.plan),
                session.position,
                stream.request.batch_shape,
                stream.request.q.dtype.str,
                stream.request.v.dtype.str,
                stream.request.q.shape[-1],
                stream.request.v.shape[-1],
            )
            groups.setdefault(key, []).append((stream, kind, count))
        return list(groups.values())

    def _execute_group(
        self, group: List[Tuple[_Stream, str, int]], report: IterationReport
    ) -> None:
        remaining = list(group)
        while remaining:
            # preemption may have evicted a member between retries
            remaining = [entry for entry in remaining if entry[0].state == _RUNNING]
            if not remaining:
                return
            try:
                self._run_group(remaining, report)
                return
            except PoolExhausted:
                self._preempt_for(remaining, report)

    def _run_group(
        self, group: List[Tuple[_Stream, str, int]], report: IterationReport
    ) -> None:
        kind = group[0][1]
        if kind == "prefill":
            chunks = []
            for stream, _, count in group:
                request, start = stream.request, stream.emitted
                chunks.append(
                    (
                        stream.session,
                        request.q[..., start : start + count, :],
                        request.k[..., start : start + count, :],
                        request.v[..., start : start + count, :],
                    )
                )
            responses = self.server.prefill_chunks(chunks)
            obs = self.obs
            now = self.clock.now()
            for (stream, _, count), response in zip(group, responses):
                stream.outputs.append(response.result.output)
                self._notify_emit(stream, "prefill", response.result.output)
                stream.emitted += count
                stream.telemetry.tokens_emitted += count
                stream.telemetry.iterations_scheduled += 1
                report.prefill_tokens += count
                self.stats.prefill_tokens += count
                if obs.enabled:
                    obs.prefill_tokens.inc(count)
                    if obs.trace is not None:
                        obs.trace.event(
                            "prefill_chunk",
                            now,
                            span=stream.span,
                            request_id=stream.request.request_id,
                            tokens=count,
                            position=stream.emitted,
                        )
        elif kind == "speculate":
            steps = []
            for stream, _, count in group:
                request, position = stream.request, stream.emitted
                steps.append(
                    (
                        stream.session,
                        request.q[..., position : position + count, :],
                        request.k[..., position : position + count, :],
                        request.v[..., position : position + count, :],
                    )
                )
            obs = self.obs
            span = None
            if obs.enabled and obs.trace is not None:
                span = obs.trace.start_span(
                    "speculate",
                    self.clock.now(),
                    streams=len(group),
                    drafted=sum(count for _, _, count in group),
                )
            try:
                outcomes = self.server.speculate_steps(steps)
            finally:
                # the pass may raise PoolExhausted (zero-accept fallback
                # steps still extend the cache); the preemption retry path
                # must not leave the span open
                if span is not None:
                    obs.trace.end_span(span, self.clock.now())
            now = self.clock.now()
            for (stream, _, count), outcome in zip(group, outcomes):
                if outcome is None:
                    continue
                telemetry = stream.telemetry
                telemetry.speculate_drafted += outcome.drafted
                telemetry.speculate_accepted += outcome.accepted
                self.stats.speculate_passes += 1
                self.stats.speculate_drafted += outcome.drafted
                self.stats.speculate_accepted += outcome.accepted
                self.stats.speculate_rolled_back += outcome.rolled_back
                if outcome.fallback:
                    telemetry.speculate_fallbacks += 1
                    self.stats.speculate_fallbacks += 1
                for result in outcome.results:
                    output = result.output
                    stream.outputs.append(output)
                    self._notify_emit(stream, "decode", output)
                    stream.emitted += 1
                    telemetry.tokens_emitted += 1
                    report.decode_tokens += 1
                    self.stats.decode_tokens += 1
                    if obs.enabled:
                        obs.decode_tokens.inc()
                telemetry.iterations_scheduled += 1
                if outcome.emitted > 0 and telemetry.first_token_time is None:
                    # first generated token past the prompt: TTFT lands here
                    telemetry.first_token_time = now
                    if obs.enabled:
                        obs.ttft_seconds.observe(now - telemetry.arrival_time)
                self._maybe_disable_speculation(stream, outcome)
                if obs.enabled and obs.trace is not None:
                    obs.trace.event(
                        "speculate",
                        now,
                        span=stream.span,
                        request_id=stream.request.request_id,
                        drafted=outcome.drafted,
                        accepted=outcome.accepted,
                        fallback=outcome.fallback,
                        position=stream.emitted,
                    )
        else:
            steps = []
            for stream, _, _ in group:
                request, position = stream.request, stream.emitted
                steps.append(
                    (
                        stream.session,
                        request.q[..., position, :],
                        request.k[..., position, :],
                        request.v[..., position, :],
                    )
                )
            responses = self.server.decode_steps(steps)
            obs = self.obs
            now = self.clock.now()
            for (stream, _, _), response in zip(group, responses):
                stream.outputs.append(response.result.output)
                self._notify_emit(stream, "decode", response.result.output)
                stream.emitted += 1
                telemetry = stream.telemetry
                telemetry.tokens_emitted += 1
                telemetry.iterations_scheduled += 1
                report.decode_tokens += 1
                self.stats.decode_tokens += 1
                if telemetry.first_token_time is None:
                    # first generated token past the prompt: TTFT lands here
                    telemetry.first_token_time = now
                    if obs.enabled:
                        obs.ttft_seconds.observe(now - telemetry.arrival_time)
                if obs.enabled:
                    obs.decode_tokens.inc()
                    if obs.trace is not None:
                        obs.trace.event(
                            "decode_step",
                            now,
                            span=stream.span,
                            request_id=stream.request.request_id,
                            position=stream.emitted,
                        )

    # ------------------------------------------------------------------ #
    # Speculation control
    # ------------------------------------------------------------------ #
    def _maybe_disable_speculation(self, stream: _Stream, outcome) -> None:
        """Fall back to one-token stepping when speculation stops paying off.

        A *degraded* pass (rollback under pool pressure) disables immediately
        — re-drafting into an exhausted pool next iteration would thrash,
        while a plain step routes the shortage into the normal preemption
        machinery.  Otherwise the stream's cumulative accept rate is compared
        against the :func:`~repro.perfmodel.decode.speculation_cost`
        break-even once at least two full windows of evidence accumulated.
        """
        if stream.speculate_off:
            return
        telemetry = stream.telemetry
        reason = None
        if outcome.degraded:
            reason = "degraded"
        elif telemetry.speculate_drafted >= 2 * stream.request.speculate_k:
            threshold = self._speculation_break_even(stream, outcome)
            if telemetry.speculate_accept_rate < threshold:
                reason = "accept_rate"
        if reason is None:
            return
        stream.speculate_off = True
        telemetry.speculate_disabled = True
        self.stats.speculate_disabled += 1
        obs = self.obs
        if obs.enabled and obs.trace is not None:
            obs.trace.event(
                "speculate_disable",
                self.clock.now(),
                span=stream.span,
                request_id=stream.request.request_id,
                reason=reason,
                accept_rate=telemetry.speculate_accept_rate,
            )

    def _speculation_break_even(self, stream: _Stream, outcome) -> float:
        """Accept-rate threshold below which speculation loses to stepping."""
        k = max(2, stream.request.speculate_k)
        drafted = max(1, outcome.drafted)
        if self.device is None:
            # no cost model: charge passes by edges alone.  A pass attends
            # draft + verify edges to emit at most k tokens, so it breaks
            # even when a·k >= 1 + draft/verify — the launch-overhead-free
            # limit of the device model.
            fraction = (
                outcome.draft_edges / outcome.verify_edges if outcome.verify_edges else 1.0
            )
            return min(1.0, (1.0 + fraction) / k)
        cache = stream.session.cache
        estimate = speculation_cost(
            self.device,
            k,
            row_edges=max(1, outcome.verify_edges // drafted),
            draft_row_edges=outcome.draft_edges // drafted,
            head_dim=cache.key_dim,
            value_dim=cache.value_dim,
            batch=prod(cache.batch_shape) if cache.batch_shape else 1,
            dtype=cache.dtype,
        )
        return estimate.break_even_accept_rate

    # ------------------------------------------------------------------ #
    # Preemption
    # ------------------------------------------------------------------ #
    def _preempt_for(
        self, group: List[Tuple[_Stream, str, int]], report: IterationReport
    ) -> None:
        """Free blocks for a failed group by evicting one policy-chosen victim.

        The group's policy-best member is protected — the retry loop must
        shrink toward *somebody* making progress — so the victim is either
        another running stream or a non-head group member (whose eviction
        both frees blocks and shrinks the retried reservation).  When no
        victim remains, the surviving stream alone exceeds the pool: that is
        a sizing error, reported as :exc:`InfeasibleRequest`.
        """
        now = self.clock.now()
        members = [stream for stream, _, _ in group]
        head = self.policy.rank(members, now)[0]
        candidates = [
            stream for stream in self.policy.victims(self._running, now) if stream is not head
        ]
        if not candidates:
            raise InfeasibleRequest(
                f"request {head.request.request_id} needs more KV blocks than "
                f"the pool holds ({self.pool.num_blocks} blocks of "
                f"{self.pool.block_size} tokens) even with every other stream "
                f"preempted"
            )
        self._preempt(candidates[0], report)

    def _preempt(self, victim: _Stream, report: IterationReport) -> None:
        started = time.perf_counter()
        mode = self.preemption
        if mode == "auto":
            mode = self._choose_preemption(victim)
        session = victim.session
        cache = session.cache
        if mode == "swap" and victim.emitted > 0:
            handle = cache.swap_out()
            victim.swap_key = victim.request.request_id
            self.swap_store.put(victim.swap_key, handle)
            victim.telemetry.swap_outs += 1
            self.stats.swap_outs += 1
        else:
            # recompute mode (or nothing cached): drop the blocks, store nothing
            cache.release()
            victim.swap_key = None
        session.cache = None
        victim.state = _WAITING
        victim.waiting_since = self.clock.now()
        victim.telemetry.preemptions += 1
        self.stats.preemptions += 1
        self._running.remove(victim)
        self._waiting.append(victim)
        report.preempted.append(victim.request.request_id)
        self.stats.preemption_seconds += time.perf_counter() - started
        obs = self.obs
        if obs.enabled:
            # the mode actually executed: a swap decision with nothing cached
            # degrades to a plain release, counted as recompute
            executed = "swap" if victim.swap_key is not None else "recompute"
            obs.preemptions.labels(mode=executed).inc()
            if obs.trace is not None:
                now = victim.waiting_since
                rid = victim.request.request_id
                event = "swap_out" if executed == "swap" else "preempt"
                obs.trace.event(
                    event, now, span=victim.span, request_id=rid, mode=executed
                )
                victim.queue_span = obs.trace.start_span(
                    "queue", now, request_id=rid, parent=victim.span, cause="preempt"
                )

    def _choose_preemption(self, victim: _Stream) -> str:
        """Price swap vs. recompute for this victim via the decode cost model."""
        if self.device is None:
            return "swap"  # no cost model: preserving finished work is the safe default
        session = victim.session
        degrees = session.program.causal_degrees()
        prefix_nnz = int(degrees[: victim.emitted].sum())
        cache = session.cache
        estimate = preemption_cost(
            self.device,
            victim.emitted,
            prefix_nnz=prefix_nnz,
            head_dim=cache.key_dim,
            value_dim=cache.value_dim,
            batch=prod(cache.batch_shape) if cache.batch_shape else 1,
            dtype=cache.dtype,
            block_size=self.pool.block_size,
            storage=self.pool.storage,
        )
        return estimate.preferred

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _finish_streams(self, report: IterationReport) -> None:
        now = self.clock.now()
        for stream in [s for s in self._running if s.finished]:
            rid = stream.request.request_id
            self.results[rid] = np.concatenate(stream.outputs, axis=-2)
            stream.outputs = []
            self.server.close_decode_session(stream.session)
            stream.state = _FINISHED
            telemetry = stream.telemetry
            telemetry.finish_time = now
            obs = self.obs
            if telemetry.first_token_time is None:
                # prompt-only stream: its "first token" is its completion
                telemetry.first_token_time = now
                if obs.enabled:
                    obs.ttft_seconds.observe(now - telemetry.arrival_time)
            telemetry.decode_seconds = now - telemetry.first_token_time
            if telemetry.slo_latency_seconds is not None:
                telemetry.slack_at_finish = telemetry.slo_latency_seconds - (
                    now - telemetry.arrival_time
                )
                telemetry.slo_attained = telemetry.slack_at_finish >= 0.0
                if telemetry.slo_attained:
                    self.stats.slo_attained += 1
                else:
                    self.stats.slo_missed += 1
            if obs.enabled:
                obs.requests_finished.inc()
                if telemetry.slo_attained is not None:
                    outcome = "attained" if telemetry.slo_attained else "missed"
                    obs.tenant_slo.labels(
                        tenant=telemetry.tenant or "default", outcome=outcome
                    ).inc()
                    obs.slo_slack_seconds.observe(telemetry.slack_at_finish)
                decode_after_first = telemetry.total_tokens - telemetry.prompt_tokens - 1
                if decode_after_first > 0:
                    obs.per_token_seconds.observe(
                        telemetry.decode_seconds / decode_after_first
                    )
                if obs.trace is not None:
                    obs.trace.event(
                        "finish", now, span=stream.span, request_id=rid
                    )
                    if stream.span is not None:
                        obs.trace.end_span(
                            stream.span, now, tokens=telemetry.tokens_emitted
                        )
                        stream.span = None
            self._running.remove(stream)
            self._held.discard(rid)
            self._emit_listeners.pop(rid, None)
            # drop the stream record: it pins the request's full q/k/v
            # tensors, which must not accumulate with a perpetual server's
            # lifetime traffic (results/telemetry stay until the caller
            # consumes them; ids never recycle, so resubmission stays caught)
            del self._streams[rid]
            self.stats.finished += 1
            report.finished.append(rid)


__all__ = [
    "ContinuousBatchingScheduler",
    "FCFSPolicy",
    "InfeasibleRequest",
    "IterationReport",
    "LoopRequest",
    "LoopStats",
    "LoopStatsSnapshot",
    "PriorityPolicy",
    "RequestTelemetry",
    "SchedulingPolicy",
    "SlackPolicy",
    "VirtualClock",
    "WallClock",
    "WeightedFairPolicy",
    "resolve_serving_kwargs",
    "scheduling_policy",
]
