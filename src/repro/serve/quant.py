"""Quantized KV-block storage: encode/decode and error bounds per storage dtype.

The paged :class:`~repro.serve.paging.BlockPool` separates the *compute*
dtype its gathers return (what the kernels consume, unchanged) from the
*storage* dtype its arenas hold.  Three storage formats are supported:

* ``"fp32"`` / ``"fp16"`` (and ``"fp64"`` for float64 pools) — plain casts;
  storage matching the compute dtype is the identity, bit-for-bit.
* ``"int8"`` — affine quantization ``q = clip(round(x / scale + zero))`` with
  **per-row** float32 ``scale``/``zero`` parameters: every block carries a
  ``(block_size,)``-length parameter vector per batch slice, one entry per
  token row.  Per-row parameters are what keep the scheme *compositional*:
  a row's encoded bytes depend only on that row's values, so appends never
  requantize existing tokens (no error drift), copy-on-write moves raw
  bytes, swap-out ships the quantized payload exactly, and a chunk's
  content fingerprint is a pure function of its rows — prefix sharing and
  byte-exact swap restores work on quantized blocks unchanged.

Every bound here is explicit in the storage dtype (:func:`roundtrip_bound`),
the property the tests assert: int8 round-trip error is at most half a
quantization step (``scale = (max - min) / 255`` per row) plus float32
arithmetic slack, fp16 is half-precision rounding, fp32 is exact.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.utils.validation import require

#: Storage formats a pool can hold, mapped to the arena element dtype.
STORAGE_DTYPES = {
    "fp16": np.dtype(np.float16),
    "fp32": np.dtype(np.float32),
    "fp64": np.dtype(np.float64),
    "int8": np.dtype(np.int8),
}

#: Canonical storage name of each float compute dtype (the default storage).
_COMPUTE_TO_STORAGE = {
    np.dtype(np.float16): "fp16",
    np.dtype(np.float32): "fp32",
    np.dtype(np.float64): "fp64",
}

#: Bytes of quantization parameters per token row per batch slice: float32
#: ``scale`` and ``zero`` for the key row and again for the value row.
QUANT_PARAM_BYTES_PER_TOKEN = 16


def resolve_storage(storage: Optional[str], compute_dtype) -> str:
    """Canonical storage name; ``None`` means "match the compute dtype"."""
    compute = np.dtype(compute_dtype)
    if storage is None:
        require(
            compute in _COMPUTE_TO_STORAGE,
            f"no default storage format for compute dtype {compute!r}",
        )
        return _COMPUTE_TO_STORAGE[compute]
    key = str(storage).strip().lower()
    require(
        key in STORAGE_DTYPES,
        f"unknown storage {storage!r}; expected one of {sorted(STORAGE_DTYPES)}",
    )
    return key


def storage_itemsize(storage: str) -> int:
    """Bytes per stored element of one storage format."""
    return int(STORAGE_DTYPES[storage].itemsize)


def storage_param_bytes_per_token(storage: str) -> int:
    """Per-token quantization-parameter overhead (0 for float storage)."""
    return QUANT_PARAM_BYTES_PER_TOKEN if storage == "int8" else 0


# --------------------------------------------------------------------------- #
# Affine int8 row codec
# --------------------------------------------------------------------------- #
def quantize_rows(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``(..., T, d)`` float rows to int8 with per-row affine params.

    Returns ``(q, scale, zero)`` where ``q`` is int8 of the input shape and
    ``scale``/``zero`` are float32 ``(..., T)``: row ``t`` dequantizes as
    ``(float(q[t]) - zero[t]) * scale[t]``.  Constant rows get ``scale = 1``
    and round-trip exactly; all other rows round-trip within half a step,
    ``scale / 2 = (max - min) / 510`` (see :func:`roundtrip_bound`).
    """
    x = np.asarray(rows, dtype=np.float32)
    lo = x.min(axis=-1)
    hi = x.max(axis=-1)
    scale = ((hi - lo) / np.float32(255.0)).astype(np.float32)
    scale = np.where(scale > 0, scale, np.float32(1.0)).astype(np.float32)
    zero = (np.float32(-128.0) - lo / scale).astype(np.float32)
    q = np.clip(
        np.round(x / scale[..., None] + zero[..., None]), -128, 127
    ).astype(np.int8)
    return q, scale, zero


def dequantize_rows(
    q: np.ndarray, scale: np.ndarray, zero: np.ndarray, dtype=np.float32
) -> np.ndarray:
    """Invert :func:`quantize_rows` into ``dtype`` (float32 ops, then cast).

    The arithmetic mirrors the gather-path dequant in
    :func:`repro.core.compiled.gather_dequant_int8` exactly — same float32
    operations in the same order — so a decoded swap payload is bit-identical
    to what a gather of the same stored rows returns.
    """
    out = (q.astype(np.float32) - np.asarray(zero)[..., None]) * np.asarray(scale)[
        ..., None
    ]
    return out.astype(dtype, copy=False)


# --------------------------------------------------------------------------- #
# Encoded chunks
# --------------------------------------------------------------------------- #
class EncodedChunk(NamedTuple):
    """Storage-encoded K/V token rows (plus int8 quantization parameters).

    ``k``/``v`` are ``batch_shape + (T, d)`` in the storage dtype; the four
    parameter arrays are ``batch_shape + (T,)`` float32 for int8 storage and
    ``None`` otherwise.  A chunk is a pure function of its token rows —
    slicing it commutes with encoding, which is what lets one whole-extend
    encode be fingerprinted block-by-block.
    """

    k: np.ndarray
    v: np.ndarray
    k_scale: Optional[np.ndarray] = None
    k_zero: Optional[np.ndarray] = None
    v_scale: Optional[np.ndarray] = None
    v_zero: Optional[np.ndarray] = None

    @property
    def quantized(self) -> bool:
        return self.k_scale is not None

    @property
    def tokens(self) -> int:
        return int(self.k.shape[-2])

    @property
    def nbytes(self) -> int:
        """Encoded payload bytes (what a swap of this chunk actually ships)."""
        total = self.k.nbytes + self.v.nbytes
        if self.quantized:
            total += (
                self.k_scale.nbytes
                + self.k_zero.nbytes
                + self.v_scale.nbytes
                + self.v_zero.nbytes
            )
        return int(total)

    def slice(self, start: int, stop: int) -> "EncodedChunk":
        """Rows ``[start, stop)`` of this chunk (views, no copy)."""
        if not self.quantized:
            return EncodedChunk(
                k=self.k[..., start:stop, :], v=self.v[..., start:stop, :]
            )
        return EncodedChunk(
            k=self.k[..., start:stop, :],
            v=self.v[..., start:stop, :],
            k_scale=self.k_scale[..., start:stop],
            k_zero=self.k_zero[..., start:stop],
            v_scale=self.v_scale[..., start:stop],
            v_zero=self.v_zero[..., start:stop],
        )

    def concat(self, other: "EncodedChunk") -> "EncodedChunk":
        """This chunk's rows followed by ``other``'s (for tail fingerprints)."""
        if not self.quantized:
            return EncodedChunk(
                k=np.concatenate([self.k, other.k], axis=-2),
                v=np.concatenate([self.v, other.v], axis=-2),
            )
        return EncodedChunk(
            k=np.concatenate([self.k, other.k], axis=-2),
            v=np.concatenate([self.v, other.v], axis=-2),
            k_scale=np.concatenate([self.k_scale, other.k_scale], axis=-1),
            k_zero=np.concatenate([self.k_zero, other.k_zero], axis=-1),
            v_scale=np.concatenate([self.v_scale, other.v_scale], axis=-1),
            v_zero=np.concatenate([self.v_zero, other.v_zero], axis=-1),
        )

    def param_bytes(self) -> bytes:
        """Serialized quantization parameters (hashed into fingerprints)."""
        if not self.quantized:
            return b""
        return b"".join(
            np.ascontiguousarray(a).tobytes()
            for a in (self.k_scale, self.k_zero, self.v_scale, self.v_zero)
        )


def encode_chunk(k_rows: np.ndarray, v_rows: np.ndarray, storage: str) -> EncodedChunk:
    """Encode float K/V rows into ``storage`` format (per-row for int8)."""
    if storage == "int8":
        k, k_scale, k_zero = quantize_rows(k_rows)
        v, v_scale, v_zero = quantize_rows(v_rows)
        return EncodedChunk(
            k=k, v=v, k_scale=k_scale, k_zero=k_zero, v_scale=v_scale, v_zero=v_zero
        )
    dtype = STORAGE_DTYPES[storage]
    return EncodedChunk(
        k=np.ascontiguousarray(k_rows, dtype=dtype),
        v=np.ascontiguousarray(v_rows, dtype=dtype),
    )


def decode_chunk(chunk: EncodedChunk, dtype) -> Tuple[np.ndarray, np.ndarray]:
    """Decode an encoded chunk back to compute-dtype ``(k, v)`` rows."""
    dtype = np.dtype(dtype)
    if chunk.quantized:
        return (
            dequantize_rows(chunk.k, chunk.k_scale, chunk.k_zero, dtype),
            dequantize_rows(chunk.v, chunk.v_scale, chunk.v_zero, dtype),
        )
    return chunk.k.astype(dtype, copy=False), chunk.v.astype(dtype, copy=False)


# --------------------------------------------------------------------------- #
# Error bounds (explicit functions of the storage dtype)
# --------------------------------------------------------------------------- #
def roundtrip_bound(storage: str, amplitude: float) -> float:
    """Worst-case ``|decode(encode(x)) - x|`` for ``|x| <= amplitude``.

    * fp32/fp64 storage of float32 inputs is exact (0.0);
    * fp16 pays half-precision rounding: relative ``2**-11`` for normal
      values plus the subnormal floor;
    * int8 pays half a quantization step: per-row ``scale <= 2 * amplitude /
      255``, so the error is at most ``amplitude / 255`` — widened by 1% for
      float32 arithmetic slack in the codec itself.
    """
    require(amplitude >= 0.0, "amplitude must be non-negative")
    if storage in ("fp32", "fp64"):
        return 0.0
    if storage == "fp16":
        return amplitude * 2.0**-11 + 2.0**-24
    if storage == "int8":
        return amplitude / 255.0 * 1.01 + 1e-12
    raise ValueError(f"unknown storage {storage!r}")


def attention_tolerance(storage: str, amplitude: float, head_dim: int) -> float:
    """Output ``atol`` for attention over quantized K/V vs. the fp32 reference.

    A decode output is a convex combination of value rows, so the value-side
    error passes through bounded by :func:`roundtrip_bound`; key-side error
    perturbs each score by up to ``~amplitude * sqrt(head_dim) * bound``
    (random-sign dot products concentrate at ``sqrt(d)``), which re-weights
    the softmax and contributes ``~2 * amplitude`` times that score shift.
    This is a practical benchmark bound for well-conditioned inputs, not an
    adversarial worst case — the *exact* cross-checks in the tests compare
    quantized serving paths against an fp32 oracle fed the dequantized rows,
    which must agree bit-for-bit.
    """
    base = roundtrip_bound(storage, amplitude)
    return base * (1.0 + 2.0 * amplitude * float(np.sqrt(head_dim)))


__all__ = [
    "EncodedChunk",
    "QUANT_PARAM_BYTES_PER_TOKEN",
    "STORAGE_DTYPES",
    "attention_tolerance",
    "decode_chunk",
    "dequantize_rows",
    "encode_chunk",
    "quantize_rows",
    "resolve_storage",
    "roundtrip_bound",
    "storage_itemsize",
    "storage_param_bytes_per_token",
]
