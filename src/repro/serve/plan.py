"""Execution-plan compiler: mask + length + device → immutable plan.

Dispatching one :class:`~repro.core.engine.GraphAttentionEngine` call involves
real work that has nothing to do with the Q/K/V at hand: inspecting the mask,
choosing kernels and — for composed unions — materialising every component as
CSR and running the ``difference``/``union`` set algebra that keeps the
sequential kernels edge-disjoint.  For a serving workload that sees the same
mask shapes over and over, that work should happen **once**.

:func:`compile_plan` performs it ahead of time and freezes the outcome into an
:class:`ExecutionPlan`: an immutable list of :class:`PlanStep`\\ s (each either
an implicit-kernel invocation of a spec or a CSR call on a precomputed
remainder matrix), a canonical cache key derived from the mask parameters, and
— when a :class:`~repro.perfmodel.devices.DeviceSpec` is supplied — the
predicted runtime from :mod:`repro.perfmodel.runtime`.  Executing the plan is
then a pure kernel sequence: ``plan.execute(q, k, v)`` for as many request
tensors as desired.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.compose import disjoint_union_components, merge_results
from repro.core.engine import (
    MaskInput,
    composable_in_plan,
    has_specialised_kernel,
    run_spec_kernel,
    spec_kernel_name,
)
from repro.core.explicit_kernels import csr_attention, materialize_explicit
from repro.core.flash import flash_attention
from repro.core.result import AttentionResult
from repro.masks.base import MaskSpec, as_mask_spec
from repro.masks.composite import DifferenceMask, IntersectionMask, UnionMask
from repro.masks.explicit import ExplicitMask
from repro.masks.rows import RowProgram, compile_row_program
from repro.masks.structured import DenseMask
from repro.perfmodel.devices import DeviceSpec
from repro.perfmodel.runtime import RuntimeEstimate, RuntimeModel, combine_estimates
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

#: Head dimension assumed by runtime prediction when the caller gives none.
DEFAULT_HEAD_DIM = 64


# --------------------------------------------------------------------------- #
# Canonical cache keys
# --------------------------------------------------------------------------- #
def _csr_fingerprint(csr: CSRMatrix) -> str:
    digest = hashlib.sha1()
    digest.update(repr(csr.shape).encode())
    digest.update(np.ascontiguousarray(csr.indptr).tobytes())
    digest.update(np.ascontiguousarray(csr.indices).tobytes())
    return digest.hexdigest()[:16]


def mask_key(mask: MaskInput, length: int) -> str:
    """Canonical string identifying a mask pattern (structural, not identity).

    Pattern-defined specs key on their type and parameters, so two
    independently constructed ``LocalMask(window=64)`` objects share a key;
    materialised masks (dense arrays, COO/CSR containers,
    :class:`~repro.masks.explicit.ExplicitMask`) key on a content hash of
    their sparsity structure.
    """
    if mask is None:
        return "dense"
    if isinstance(mask, (np.ndarray, COOMatrix, CSRMatrix)):
        mask = as_mask_spec(mask)
    if isinstance(mask, UnionMask):
        inner = ",".join(mask_key(c, length) for c in mask.components)
        return f"union[{inner}]"
    if isinstance(mask, IntersectionMask):
        inner = ",".join(mask_key(c, length) for c in mask.components)
        return f"intersection[{inner}]"
    if isinstance(mask, DifferenceMask):
        return f"difference[{mask_key(mask.left, length)}-{mask_key(mask.right, length)}]"
    if isinstance(mask, ExplicitMask):
        return f"explicit:{_csr_fingerprint(mask.matrix)}"
    if dataclasses.is_dataclass(mask):
        params = ",".join(
            f"{f.name}={getattr(mask, f.name)!r}" for f in dataclasses.fields(mask)
        )
        return f"{type(mask).__name__}({params})"
    return f"{type(mask).__name__}({mask.describe()})"


def plan_cache_key(
    mask: MaskInput,
    length: int,
    *,
    executor: str = "vectorized",
    scale: Optional[float] = None,
    prefer_composition: bool = True,
    algorithm: str = "auto",
    device: Optional[DeviceSpec] = None,
    head_dim: Optional[int] = None,
    batch: int = 1,
    mode: str = "full",
) -> str:
    """Canonical key under which a compiled plan is cached.

    Everything that influences compilation is part of the key: the mask's
    structural identity, the context length, the execution knobs, the
    device/head-dim/batch the attached runtime prediction targets, and the
    compilation ``mode`` (``"full"`` one-shot vs ``"decode"`` per-row).
    """
    device_name = device.name if device is not None else "-"
    return (
        f"L={length}|alg={algorithm}|mode={mode}|exec={executor}|scale={scale}"
        f"|compose={prefer_composition}|dev={device_name}|hd={head_dim}|b={batch}"
        f"|mask={mask_key(mask, length)}"
    )


# --------------------------------------------------------------------------- #
# Plan representation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanStep:
    """One kernel invocation of a compiled plan.

    ``kernel`` names the kernel (``flash``, ``local``, ``dilated1d``,
    ``dilated2d``, ``global`` or ``csr``); implicit kernels carry the ``spec``
    they execute, the CSR kernel carries its precomputed ``csr`` operand
    (for composed unions this is the already-trimmed remainder).
    """

    kernel: str
    spec: Optional[MaskSpec] = None
    csr: Optional[CSRMatrix] = None
    nnz: int = 0

    def execute(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        *,
        scale: Optional[float],
        executor: str,
    ) -> AttentionResult:
        if self.kernel == "flash":
            return flash_attention(q, k, v, scale=scale)
        if self.kernel == "csr":
            return csr_attention(q, k, v, self.csr, scale=scale, executor=executor)
        return run_spec_kernel(q, k, v, self.spec, scale=scale, executor=executor)


@dataclass(frozen=True)
class ExecutionPlan:
    """Immutable compiled dispatch decision for one mask shape.

    ``algorithm`` is the label the executed
    :class:`~repro.core.result.AttentionResult` will carry (``"composed"``
    for multi-kernel plans, the kernel name otherwise), matching what
    ``GraphAttentionEngine.run`` reports.  ``predicted`` is the
    device-model runtime estimate, present when the plan was compiled for a
    device.  ``key`` is ``None`` for ad-hoc plans compiled outside any cache
    (the engine's one-shot dispatch path skips key derivation entirely).

    ``mode`` distinguishes one-shot plans (``"full"``, executed via
    :meth:`execute`) from incremental-decode plans (``"decode"``), which carry
    a precompiled :class:`~repro.masks.rows.RowProgram` in ``decode`` (the
    per-row stencil offsets / token sets) and are consumed one row at a time
    by :class:`~repro.serve.decode.DecodeSession`; for decode plans ``nnz``
    counts the causal edges a full decode loop over the horizon processes.
    """

    key: Optional[str]
    length: int
    algorithm: str
    steps: Tuple[PlanStep, ...]
    executor: str
    scale: Optional[float]
    nnz: int
    device: Optional[str] = None
    predicted: Optional[RuntimeEstimate] = None
    batch: int = 1
    mode: str = "full"
    decode: Optional[RowProgram] = None
    #: decode plans keep the spec they were compiled from, so derived variants
    #: (the speculative draft pass's thinned mask) can be compiled on demand
    spec: Optional[MaskSpec] = None

    @property
    def num_kernel_calls(self) -> int:
        return len(self.steps)

    @property
    def kernels(self) -> Tuple[str, ...]:
        """Kernel names in execution order."""
        return tuple(step.kernel for step in self.steps)

    @property
    def sparsity_factor(self) -> float:
        total = float(self.length) * float(self.length)
        return self.nnz / total if total else 0.0

    @property
    def predicted_seconds(self) -> Optional[float]:
        return self.predicted.seconds if self.predicted is not None else None

    def execute(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> AttentionResult:
        """Run the compiled kernel sequence on one Q/K/V stack.

        ``q``/``k``/``v`` are ``(..., L, d)``: a bare single-head slice or any
        stack of batch/head slices — every kernel step executes the whole
        stack in one vectorized pass, so one compiled plan amortises over the
        full ``(B, H)`` batch.
        """
        require(
            self.mode == "full",
            "decode plans execute per-row through repro.serve.decode.DecodeSession",
        )
        require(
            q.shape[-2] == self.length,
            f"plan compiled for L={self.length}, got q with L={q.shape[-2]}",
        )
        results = [
            step.execute(q, k, v, scale=self.scale, executor=self.executor)
            for step in self.steps
        ]
        if self.algorithm == "composed":
            return merge_results(results)
        return results[0]

    def describe(self) -> str:
        if self.mode == "decode":
            program = type(self.decode).__name__ if self.decode is not None else "-"
            return (
                f"ExecutionPlan(L={self.length}, decode: {program}, "
                f"causal nnz={self.nnz})"
            )
        kernels = " + ".join(self.kernels)
        pred = f", predicted {self.predicted.seconds:.3e}s on {self.device}" if self.predicted else ""
        return f"ExecutionPlan(L={self.length}, {self.algorithm}: {kernels}, nnz={self.nnz}{pred})"


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
def _composed_steps(mask: UnionMask, length: int) -> List[PlanStep]:
    """Steps executing a union as disjoint sequential kernels (hoisted algebra)."""
    steps: List[PlanStep] = []
    for component, component_csr, remainder in disjoint_union_components(
        mask.components, length
    ):
        if remainder.nnz == component_csr.nnz and has_specialised_kernel(component):
            steps.append(
                PlanStep(
                    kernel=spec_kernel_name(component),
                    spec=component,
                    nnz=component_csr.nnz,
                )
            )
        elif remainder.nnz:
            steps.append(PlanStep(kernel="csr", csr=remainder, nnz=remainder.nnz))
    return steps


def _predict(
    steps: Tuple[PlanStep, ...],
    algorithm: str,
    length: int,
    device: Optional[DeviceSpec],
    head_dim: Optional[int],
    batch: int = 1,
) -> Optional[RuntimeEstimate]:
    if device is None:
        return None
    model = RuntimeModel(device)
    head_dim = head_dim or DEFAULT_HEAD_DIM
    estimates = []
    for step in steps:
        degrees = step.csr.row_degrees() if step.csr is not None else None
        if step.kernel == "flash":
            estimates.append(model.estimate("flash", length, head_dim, batch=batch))
        else:
            # the step's true sparsity drives the load-imbalance model when no
            # explicit degree vector exists (notably the global kernel's skew)
            sparsity = min(1.0, step.nnz / (float(length) * float(length)))
            estimates.append(
                model.estimate(
                    step.kernel,
                    length,
                    head_dim,
                    sparsity_factor=sparsity,
                    nnz=step.nnz,
                    degrees=degrees,
                    batch=batch,
                )
            )
    return combine_estimates(estimates, algorithm=algorithm)


#: Sentinel: derive the cache key during compilation (the default).
_DERIVE_KEY = object()


def compile_plan(
    mask: MaskInput,
    length: int,
    *,
    executor: str = "vectorized",
    scale: Optional[float] = None,
    prefer_composition: bool = True,
    algorithm: str = "auto",
    device: Optional[DeviceSpec] = None,
    head_dim: Optional[int] = None,
    batch: int = 1,
    mode: str = "full",
    key=_DERIVE_KEY,
) -> ExecutionPlan:
    """Compile a mask at a context length into an :class:`ExecutionPlan`.

    ``algorithm`` is ``"auto"`` (mirror the engine's dispatch rules) or
    ``"composed"`` (force sequential disjoint execution of a
    :class:`~repro.masks.composite.UnionMask`, even when some components need
    the CSR fallback).  The kernel choice is identical to what
    ``GraphAttentionEngine.run`` performed before plans existed, so plan
    execution is numerically identical to direct engine dispatch.

    ``mode="decode"`` compiles for incremental autoregressive decoding
    instead: no kernel steps are materialised (no CSR remainders, no set
    algebra); the plan carries a precompiled
    :class:`~repro.masks.rows.RowProgram` whose per-row stencil offsets /
    token sets let a :class:`~repro.serve.decode.DecodeSession` extract each
    new token's neighbour set in O(row edges).  ``length`` then plays the
    role of the decode *horizon* (the pattern length rows are evaluated at
    and the upper bound on generated tokens).

    ``key`` customises cache-key handling: leave the default to derive the
    canonical key, pass an already-computed key string to avoid hashing the
    mask twice (the server does this), or pass ``None`` for a one-shot plan
    that skips key derivation entirely.

    ``batch`` is the number of ``(L, d)`` slices (``B·H``) one execution is
    expected to carry; it scales the attached runtime prediction and is part
    of the cache key.  Execution itself accepts any batch shape regardless.
    """
    require(length > 0, "context length must be positive")
    require(batch >= 1, "batch must be >= 1")
    require(algorithm in ("auto", "composed"), f"cannot compile algorithm {algorithm!r}")
    require(mode in ("full", "decode"), f"unknown plan mode {mode!r}")
    # coerce materialised inputs once, before keying: mask_key would coerce an
    # ndarray/COO/CSR itself, and the compilation below needs the spec anyway
    if isinstance(mask, (np.ndarray, COOMatrix, CSRMatrix)):
        mask = as_mask_spec(mask)
    if key is _DERIVE_KEY:
        key = plan_cache_key(
            mask,
            length,
            executor=executor,
            scale=scale,
            prefer_composition=prefer_composition,
            algorithm=algorithm,
            device=device,
            head_dim=head_dim,
            batch=batch,
            mode=mode,
        )

    if mode == "decode":
        require(algorithm == "auto", "decode plans always dispatch per row (auto)")
        spec = DenseMask() if mask is None else mask
        program = compile_row_program(spec, length)
        return ExecutionPlan(
            key=key,
            length=length,
            algorithm="decode",
            steps=(),
            executor=executor,
            scale=scale,
            nnz=program.causal_nnz(),
            device=device.name if device is not None else None,
            predicted=None,
            batch=batch,
            mode="decode",
            decode=program,
            spec=spec,
        )

    if mask is None:
        require(algorithm == "auto", "composed execution requires a UnionMask")
        steps: Tuple[PlanStep, ...] = (
            PlanStep(kernel="flash", nnz=length * length),
        )
        plan_algorithm = "flash"
    else:
        if algorithm == "composed":
            require(isinstance(mask, UnionMask), "composed execution requires a UnionMask")

        compose = isinstance(mask, UnionMask) and (
            algorithm == "composed"
            or (prefer_composition and all(composable_in_plan(c) for c in mask.components))
        )
        if compose:
            composed = _composed_steps(mask, length)
            if composed:
                steps = tuple(composed)
                plan_algorithm = "composed"
            else:  # every component was empty — degrade to one CSR call
                union_csr = materialize_explicit(mask, length, "csr")
                steps = (PlanStep(kernel="csr", csr=union_csr, nnz=union_csr.nnz),)
                plan_algorithm = "csr"
        elif has_specialised_kernel(mask):
            steps = (
                PlanStep(kernel=spec_kernel_name(mask), spec=mask, nnz=mask.nnz(length)),
            )
            plan_algorithm = spec_kernel_name(mask)
        else:
            csr = materialize_explicit(mask, length, "csr")
            steps = (PlanStep(kernel="csr", csr=csr, nnz=csr.nnz),)
            plan_algorithm = "csr"

    return ExecutionPlan(
        key=key,
        length=length,
        algorithm=plan_algorithm,
        steps=steps,
        executor=executor,
        scale=scale,
        nnz=sum(step.nnz for step in steps),
        device=device.name if device is not None else None,
        predicted=_predict(steps, plan_algorithm, length, device, head_dim, batch),
        batch=batch,
    )
