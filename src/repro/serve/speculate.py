"""Speculative multi-token decoding: draft-and-verify with bit-exact outputs.

A one-token decode step pays one full kernel launch (gather, einsum, segment
softmax) per generated token; the launch overhead, not the per-edge math,
dominates the numpy stack's decode throughput.  This module amortises that
overhead over ``k`` tokens at a time with the classic draft-and-verify
recipe, adapted to the repo's mask-structured attention:

* **Draft pass** — the ``k`` candidate query rows are scored against a
  *thinned* variant of the serving mask (each family's
  :meth:`~repro.masks.base.MaskSpec.draft_variant` — half the local window,
  a strided causal subsample, fewer global/random columns), one cheap
  stacked pass over roughly ``draft_fraction`` of the row edges.
* **Verify pass** — all ``k`` rows attend their *full* causal mask rows in a
  single stacked pass over the provisionally-appended tokens.  Because the
  per-row online-softmax segments of
  :func:`~repro.serve.decode._edge_attention` are independent, row ``j`` of
  the stacked pass is **bit-identical** to the ``j``-th sequential
  :meth:`~repro.serve.decode.DecodeSession.step` — emitted outputs always
  come from the verify pass, so wrong drafts cost rollback, never wrong
  bytes.
* **Acceptance oracle** — position ``j`` is accepted iff the draft row's
  top-attended column (argmax of the raw scaled scores) equals the verify
  row's, reduced over all batch/head axes; the accepted count is the longest
  agreeing prefix.  Draft scores are a subset of the verify scores (same
  dot products), so agreement means the full row's attention peak was inside
  the thinned row — a discrete, deterministic, backend-independent criterion
  whose rate tracks how well the thin mask predicts the full one.
* **Rollback** — rejected positions are erased as if they never happened:
  the paged cache's :meth:`~repro.serve.paging.PagedKVCache.begin_speculative`
  window publishes no fingerprints and probes no share LRU, so a full
  rejection leaves the pool's warm prefix LRU untouched; the contiguous
  cache simply truncates.  The accepted prefix is then re-appended through
  the normal :meth:`extend`, which is what publishes fingerprints/sharing
  for tokens that survived.  Zero acceptance falls back to one genuine
  single-token step, so every pass makes progress.

:func:`speculative_decode_steps` is the group primitive the scheduler's
``speculate_steps`` and the continuous-batching loop drive; sessions that
accept different prefix lengths simply diverge in position and regroup on
the next loop iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dense import resolve_scale
from repro.core.online_softmax import accumulator_dtype
from repro.core.result import AttentionResult, OpCounts
from repro.masks.rows import RowProgram, compile_row_program
from repro.masks.structured import DenseMask
from repro.serve.decode import (
    DecodeSession,
    _edge_attention,
    _require_shared_plan_and_position,
    _stacked_extend,
    stacked_decode_step,
)
from repro.serve.paging import PagedKVCache, PoolExhausted
from repro.serve.plan import ExecutionPlan
from repro.utils.validation import require

#: Default fraction of row edges the draft mask keeps.
DEFAULT_DRAFT_FRACTION = 0.5

#: Test seam: called between the draft and verify passes when set.  The
#: cancellation race tests use it to close/release sessions inside the
#: multi-token append window and assert that verification skips the dead
#: streams and every block/quota retracts.
_between_draft_and_verify: Optional[Callable[[], None]] = None


@dataclass
class SpeculationOutcome:
    """Per-session result of one :func:`speculative_decode_steps` pass.

    ``results`` holds one :class:`~repro.core.result.AttentionResult` per
    *emitted* token, in position order — verify-pass rows for accepted
    tokens, or the single genuine fallback step on zero acceptance.  It is
    empty only when ``degraded`` (the pool could not re-admit the accepted
    prefix; the session made no progress and retries next iteration).
    """

    drafted: int
    accepted: int
    fallback: bool = False  # zero acceptance -> standard single-token step ran
    degraded: bool = False  # pool exhausted mid-finalize -> no progress
    results: List[AttentionResult] = field(default_factory=list)
    draft_edges: int = 0
    verify_edges: int = 0

    @property
    def emitted(self) -> int:
        """Tokens this pass produced (``accepted`` or the one fallback token)."""
        return len(self.results)

    @property
    def rolled_back(self) -> int:
        """Draft tokens whose cache entries were erased."""
        return self.drafted - self.accepted

    @property
    def accept_rate(self) -> float:
        """Accepted fraction of drafted tokens (1.0 when nothing was drafted)."""
        return self.accepted / self.drafted if self.drafted else 1.0


# --------------------------------------------------------------------------- #
# Draft programs
# --------------------------------------------------------------------------- #
#: Compiled draft row programs keyed by ``(id(plan), fraction)``; the plan is
#: pinned in the value so ids cannot be recycled.  Bounded by the number of
#: distinct decode plans the process compiles (the server's PlanCache already
#: bounds that).
_DRAFT_PROGRAMS: Dict[Tuple[int, float], Tuple[ExecutionPlan, RowProgram]] = {}


def draft_program_for(
    plan: ExecutionPlan, fraction: float = DEFAULT_DRAFT_FRACTION
) -> Optional[RowProgram]:
    """Row program of ``plan``'s mask thinned by ``fraction``; cached per plan.

    Returns ``None`` when the mask's draft variant is the mask itself (the
    base-class identity default): there is nothing cheaper to score against,
    so callers skip the draft pass and treat the window as pure multi-token
    batching (every position accepted).
    """
    spec = plan.spec if plan.spec is not None else DenseMask()
    draft = spec.draft_variant(fraction)
    if draft is spec:
        return None
    key = (id(plan), float(fraction))
    hit = _DRAFT_PROGRAMS.get(key)
    if hit is not None and hit[0] is plan:
        return hit[1]
    program = compile_row_program(draft, plan.length)
    _DRAFT_PROGRAMS[key] = (plan, program)
    return program


# --------------------------------------------------------------------------- #
# Stacked row helpers
# --------------------------------------------------------------------------- #
def _rows_layout(
    program: RowProgram, start: int, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR layout (cols, indptr) of rows ``start..start+count-1`` causally."""
    cols_list = [program.causal_row(i) for i in range(start, start + count)]
    indptr = np.concatenate(([0], np.cumsum([c.size for c in cols_list]))).astype(
        np.int64
    )
    cols = np.concatenate(cols_list) if len(cols_list) > 1 else np.asarray(cols_list[0])
    return cols, indptr


def _stacked_scores(
    sessions: Sequence[DecodeSession],
    q_stack: np.ndarray,
    cols: np.ndarray,
    indptr: np.ndarray,
    scale_value: float,
) -> np.ndarray:
    """Raw scaled scores of stacked query rows over gathered key edges.

    The exact score stage of :func:`~repro.serve.decode._edge_attention`
    (same accumulator dtype, same einsum), without the softmax — the draft
    pass only needs per-row argmaxes.
    """
    k_sel = np.stack([s.cache.gather_keys(cols) for s in sessions])
    acc_dtype = accumulator_dtype(q_stack.dtype)
    q_acc = np.asarray(q_stack, dtype=acc_dtype)
    k_acc = np.asarray(k_sel, dtype=acc_dtype)
    edge_rows = np.repeat(np.arange(indptr.size - 1), np.diff(indptr))
    return (
        np.einsum("...ed,...ed->...e", q_acc[..., edge_rows, :], k_acc) * scale_value
    )


def _top_columns(scores: np.ndarray, cols: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row top-attended column id, ``-1`` for empty rows.

    ``scores`` is ``(..., E)`` in CSR edge order; the result is ``(..., R)``
    holding the *global* column index of each row's score argmax, so draft
    and verify tops compare directly even though they index different edge
    subsets.
    """
    rows = indptr.size - 1
    top = np.full(scores.shape[:-1] + (rows,), -1, dtype=np.int64)
    for r in range(rows):
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        if hi > lo:
            local = np.argmax(scores[..., lo:hi], axis=-1)
            top[..., r] = cols[lo:hi][local]
    return top


def _accepted_prefix(agree: np.ndarray, count: int) -> int:
    """Longest agreeing prefix: ``agree`` reduced over all but the row axis."""
    flags = agree.reshape(-1, count).all(axis=0)
    return count if flags.all() else int(np.argmax(~flags))


# --------------------------------------------------------------------------- #
# Speculative windows (paged + contiguous uniformly)
# --------------------------------------------------------------------------- #
class _ContiguousWindow:
    """Truncation-based rollback for a private :class:`KVCache`."""

    def __init__(self, cache, start: int) -> None:
        self.cache = cache
        self.start = start

    def rollback(self) -> None:
        self.cache.truncate(self.start)


def _begin_windows(
    sessions: Sequence[DecodeSession],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    count: int,
) -> List[object]:
    """Open one speculative append window per session, atomically per pool.

    Mirrors :func:`~repro.serve.decode._stacked_extend`: every paged block
    the whole group needs is reserved before any cache advances, so
    :exc:`~repro.serve.paging.PoolExhausted` fails the batch with no window
    opened and no block table touched.
    """
    pending: Dict[object, int] = {}
    for session in sessions:
        if isinstance(session.cache, PagedKVCache):
            pool = session.cache.pool
            pending[pool] = pending.get(pool, 0) + session.cache.plan_extend(count)
    reservations: Dict[object, List[int]] = {pool: [] for pool in pending}
    try:
        for pool, needed in pending.items():
            reservations[pool].extend(pool.reserve(needed))
    except Exception:
        for pool, blocks in reservations.items():
            if blocks:
                pool.release(blocks)
        raise
    windows: List[object] = []
    try:
        for session, k_block, v_block in zip(sessions, ks, vs):
            session._ensure_cache(k_block, v_block)
            if isinstance(session.cache, PagedKVCache):
                windows.append(
                    session.cache.begin_speculative(
                        k_block, v_block, reserved=reservations[session.cache.pool]
                    )
                )
            else:
                start = session.cache.length
                session.cache.extend(k_block, v_block)
                windows.append(_ContiguousWindow(session.cache, start))
    except Exception:
        for window in windows:
            window.rollback()
        raise
    finally:
        # speculative probes take no share hits, so reservations are exact;
        # anything left over (admission prereserves covered it) goes back
        for pool, blocks in reservations.items():
            if blocks:
                pool.release(blocks)
    return windows


def _finalize(
    session: DecodeSession,
    window: object,
    k_block: np.ndarray,
    v_block: np.ndarray,
    accepted: int,
) -> bool:
    """Roll the window back and commit the accepted prefix through the normal
    append path (which publishes fingerprints and prefix sharing for the
    survivors).  Returns ``False`` when the pool cannot re-admit the prefix
    (the session then made no progress this pass — ``degraded``)."""
    if isinstance(window, _ContiguousWindow):
        # the accepted rows' bytes are already in place; keep them
        session.cache.truncate(window.start + accepted)
        return True
    window.rollback()
    if accepted == 0:
        return True
    try:
        session.cache.extend(
            k_block[..., :accepted, :], v_block[..., :accepted, :]
        )
    except PoolExhausted:
        return False
    return True


# --------------------------------------------------------------------------- #
# The draft-and-verify group step
# --------------------------------------------------------------------------- #
def speculative_decode_steps(
    sessions: Sequence[DecodeSession],
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    *,
    draft_fraction: float = DEFAULT_DRAFT_FRACTION,
) -> List[Optional[SpeculationOutcome]]:
    """One draft-and-verify pass of ``k`` candidate tokens per session.

    ``qs[i]``/``ks[i]``/``vs[i]`` are ``batch_shape + (k, d)`` stacks of the
    next ``k`` tokens of session ``i``; all sessions share one plan and
    position (the continuous-batching group contract).  Returns one
    :class:`SpeculationOutcome` per session — ``None`` for sessions that
    were closed concurrently inside the append window (the cancellation
    race; their blocks were already retracted by ``close``).

    Emitted outputs are bit-exact equal to the sequential one-token loop's:
    accepted tokens are verify-pass rows (per-row online-softmax segments
    are independent, so a stacked causal pass equals ``k`` sequential
    steps), and the zero-acceptance fallback is a genuine
    :func:`~repro.serve.decode.stacked_decode_step`.
    """
    require(len(sessions) >= 1, "need at least one session")
    require(
        len(sessions) == len(qs) == len(ks) == len(vs),
        "sessions and token stacks must align",
    )
    require(0.0 < draft_fraction <= 1.0, "draft fraction must be in (0, 1]")
    first = sessions[0]
    position = _require_shared_plan_and_position(sessions, "speculative decode")
    q_list: List[np.ndarray] = []
    k_list: List[np.ndarray] = []
    v_list: List[np.ndarray] = []
    for session, q, k, v in zip(sessions, qs, ks, vs):
        require(not session.closed, "speculative decode on a closed session")
        q, k, v = np.asarray(q), np.asarray(k), np.asarray(v)
        require(q.ndim >= 2, "speculative decode takes (..., k, d) stacks")
        require(q.shape == k.shape, "q and k must have matching shapes")
        require(v.shape[:-1] == q.shape[:-1], "v must cover the same rows as q")
        if q_list:
            require(
                q.shape == q_list[0].shape and v.shape == v_list[0].shape,
                "speculative decode needs identically-shaped sessions",
            )
        q_list.append(q)
        k_list.append(k)
        v_list.append(v)
    count = int(q_list[0].shape[-2])
    require(count >= 1, "speculative decode needs at least one candidate token")
    require(
        position + count <= first.horizon,
        f"speculative window of {count} tokens at position {position} exceeds "
        f"horizon {first.horizon}",
    )

    draft_program = draft_program_for(first.plan, draft_fraction)
    identity = draft_program is None

    # ---- provisional append ------------------------------------------------ #
    if identity:
        # the draft would equal the full mask: skip it and run the window as
        # pure multi-token batching through the normal (publishing) append
        _stacked_extend(sessions, k_list, v_list, count)
        windows: List[object] = [None] * len(sessions)
        draft_tops = None
        draft_edges = 0
    else:
        windows = _begin_windows(sessions, k_list, v_list, count)

        # ---- draft pass ---------------------------------------------------- #
        scale_value = resolve_scale(first.plan.scale, q_list[0].shape[-1])
        draft_cols, draft_indptr = _rows_layout(draft_program, position, count)
        q_stack = np.stack(q_list)
        draft_scores = _stacked_scores(
            sessions, q_stack, draft_cols, draft_indptr, scale_value
        )
        draft_tops = _top_columns(draft_scores, draft_cols, draft_indptr)
        draft_edges = int(draft_cols.size)

    # ---- cancellation seam ------------------------------------------------- #
    if _between_draft_and_verify is not None:
        _between_draft_and_verify()
    alive = [i for i, s in enumerate(sessions) if not s.closed]
    outcomes: List[Optional[SpeculationOutcome]] = [None] * len(sessions)
    if not alive:
        # every stream cancelled mid-window: close() already rolled the
        # blocks back (release closes an open window), nothing to verify
        return outcomes
    live_sessions = [sessions[i] for i in alive]

    # ---- verify pass ------------------------------------------------------- #
    scale_value = resolve_scale(first.plan.scale, q_list[0].shape[-1])
    verify_cols, verify_indptr = _rows_layout(first.program, position, count)
    q_stack = np.stack([q_list[i] for i in alive])
    k_sel = np.stack([s.cache.gather_keys(verify_cols) for s in live_sessions])
    v_sel = np.stack([s.cache.gather_values(verify_cols) for s in live_sessions])
    output, state, scores = _edge_attention(
        q_stack,
        k_sel,
        v_sel,
        verify_indptr,
        scale_value=scale_value,
        out_dtype=q_stack.dtype,
        return_scores=True,
    )
    verify_edges = int(verify_cols.size)

    # ---- acceptance + finalize --------------------------------------------- #
    if identity:
        accepted_counts = [count] * len(alive)
    else:
        verify_tops = _top_columns(scores, verify_cols, verify_indptr)
        accepted_counts = []
        for stack_index, session_index in enumerate(alive):
            agree = (
                draft_tops[session_index] == verify_tops[stack_index]
            )
            accepted_counts.append(_accepted_prefix(agree, count))

    fallback_sessions: List[DecodeSession] = []
    fallback_slots: List[int] = []
    for stack_index, session_index in enumerate(alive):
        session = sessions[session_index]
        accepted = accepted_counts[stack_index]
        committed = True
        if not identity:
            committed = _finalize(
                session,
                windows[session_index],
                k_list[session_index],
                v_list[session_index],
                accepted,
            )
        outcome = SpeculationOutcome(
            drafted=count,
            accepted=accepted if committed else 0,
            degraded=not committed,
            draft_edges=draft_edges,
            verify_edges=verify_edges,
        )
        if committed:
            row_edges = np.diff(verify_indptr)
            for j in range(accepted):
                edges = int(row_edges[j])
                ops = OpCounts.for_edges(
                    edges,
                    q_stack.shape[-1],
                    v_sel.shape[-1],
                    batch=prod(session.cache.batch_shape),
                )
                result = AttentionResult(
                    output=output[stack_index][..., j : j + 1, :],
                    row_max=state.row_max[stack_index][..., j : j + 1],
                    row_sum=state.row_sum[stack_index][..., j : j + 1],
                    ops=ops,
                    algorithm="decode-step",
                    meta={
                        "position": position + j,
                        "edges": edges,
                        "coalesced": len(live_sessions),
                        "speculative": True,
                        "drafted": count,
                        "accepted": accepted,
                    },
                )
                session.steps_taken += 1
                session._absorb(result)
                outcome.results.append(result)
            if accepted == 0:
                outcome.fallback = True
                fallback_sessions.append(session)
                fallback_slots.append(session_index)
        outcomes[session_index] = outcome

    # ---- zero-acceptance fallback ------------------------------------------ #
    if fallback_sessions:
        results = stacked_decode_step(
            fallback_sessions,
            [q_list[i][..., :1, :] for i in fallback_slots],
            [k_list[i][..., :1, :] for i in fallback_slots],
            [v_list[i][..., :1, :] for i in fallback_slots],
        )
        for session_index, result in zip(fallback_slots, results):
            outcomes[session_index].results.append(result)
    return outcomes
