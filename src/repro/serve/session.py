"""Request/response containers and client sessions for attention serving.

An :class:`AttentionRequest` carries one Q/K/V triple plus the mask it wants
attended; the :class:`~repro.serve.scheduler.AttentionServer` answers with an
:class:`AttentionResponse` holding the kernel result, the plan that executed
it, whether that plan came from the warm cache, and the request's kernel
latency.  :class:`ServerStats` aggregates a server's lifetime counters into
the throughput numbers the benchmarks report.

:class:`ServingSession` is a small client-side convenience: it stamps
monotonically increasing request ids, accumulates requests, and flushes them
to its server as one batch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.engine import MaskInput
from repro.core.result import AttentionResult
from repro.serve.cache import CacheStats
from repro.serve.paging import BlockPoolStats
from repro.utils.validation import require


@dataclass(eq=False)
class AttentionRequest:
    """One attention computation to serve.

    ``q``/``k``/``v`` are ``(..., L, d)``: a bare single-head slice or any
    stack of batch/head slices (e.g. ``(B, H, L, d_head)`` for a whole
    multi-head layer) sharing one mask — the plan executes every leading axis
    in one vectorized kernel pass.  ``request_id`` may be left ``None``; the
    server assigns one at submission.  ``algorithm`` chooses between the
    engine's auto dispatch (``"auto"``) and forced composed execution
    (``"composed"``).
    """

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    mask: MaskInput = None
    algorithm: str = "auto"
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        require(self.q.ndim >= 2, "q must be a (..., L, d_k) array")
        require(self.k.shape == self.q.shape, "q and k must have matching shapes")
        require(
            self.v.shape[:-1] == self.q.shape[:-1],
            "v must cover the same batch axes and rows as q",
        )
        require(self.algorithm in ("auto", "composed"), "requests dispatch auto or composed")

    @property
    def length(self) -> int:
        return int(self.q.shape[-2])

    @property
    def batch_shape(self) -> tuple:
        """Leading batch/head axes of the request tensors."""
        return tuple(int(s) for s in self.q.shape[:-2])


@dataclass
class AttentionResponse:
    """Served result of one request."""

    request_id: int
    result: AttentionResult
    plan_key: str
    cache_hit: bool
    latency_s: float

    @property
    def output(self) -> np.ndarray:
        return self.result.output


#: Counter/timer fields copied field-by-field into a snapshot (everything in
#: :class:`ServerStats` except the nested ``cache``/``pool`` stats and the lock).
_SERVER_COUNTER_FIELDS = (
    "requests",
    "batches",
    "flushes",
    "plans_compiled",
    "stacked_executions",
    "coalesced_requests",
    "wall_seconds",
    "kernel_seconds",
    "decode_sessions",
    "decode_steps",
    "decode_stacked_executions",
    "decode_coalesced_steps",
    "decode_wall_seconds",
    "prefill_chunks",
    "prefill_tokens",
    "prefill_stacked_executions",
    "prefill_coalesced_chunks",
    "prefill_wall_seconds",
    "speculate_passes",
    "speculate_drafted",
    "speculate_accepted",
    "speculate_rolled_back",
    "speculate_fallbacks",
    "speculate_wall_seconds",
    "paged_sessions",
    "sessions_closed",
    "admission_rejected",
    "admission_queued",
    "admission_admitted",
)


@dataclass
class ServerStats:
    """Lifetime counters of one :class:`~repro.serve.scheduler.AttentionServer`.

    The owning server mutates these under :attr:`lock`; concurrent readers
    (benchmark reporters, the ops CLI) must use :meth:`snapshot` — reading
    the live fields mid-flush can tear (e.g. ``requests`` updated but
    ``wall_seconds`` not yet).
    """

    requests: int = 0
    batches: int = 0
    flushes: int = 0
    plans_compiled: int = 0
    stacked_executions: int = 0
    coalesced_requests: int = 0
    wall_seconds: float = 0.0
    kernel_seconds: float = 0.0
    decode_sessions: int = 0
    decode_steps: int = 0
    decode_stacked_executions: int = 0
    decode_coalesced_steps: int = 0
    decode_wall_seconds: float = 0.0
    prefill_chunks: int = 0
    prefill_tokens: int = 0
    prefill_stacked_executions: int = 0
    prefill_coalesced_chunks: int = 0
    prefill_wall_seconds: float = 0.0
    speculate_passes: int = 0
    speculate_drafted: int = 0
    speculate_accepted: int = 0
    speculate_rolled_back: int = 0
    speculate_fallbacks: int = 0
    speculate_wall_seconds: float = 0.0
    paged_sessions: int = 0
    sessions_closed: int = 0
    admission_rejected: int = 0
    admission_queued: int = 0
    admission_admitted: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: Live stats of the server's shared block pool (``None`` until one exists).
    pool: Optional[BlockPoolStats] = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def snapshot(self) -> "ServerStatsSnapshot":
        """Tear-free immutable copy of every counter (taken under the lock).

        The nested cache/pool stats are copied too; for a pool snapshot taken
        under the *pool's* lock use
        :meth:`~repro.serve.scheduler.AttentionServer.stats_snapshot`, which
        composes both locks correctly.
        """
        with self.lock:
            counters = {name: getattr(self, name) for name in _SERVER_COUNTER_FIELDS}
            cache = self.cache.snapshot()
            pool = self.pool.snapshot() if self.pool is not None else None
        return ServerStatsSnapshot(cache=cache, pool=pool, **counters)

    @property
    def throughput_rps(self) -> float:
        """Requests served per wall-clock second across all flushes."""
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean per-request kernel latency."""
        return self.kernel_seconds / self.requests if self.requests else 0.0

    @property
    def decode_steps_per_second(self) -> float:
        """Decode tokens served per wall-clock second across all step batches."""
        if self.decode_wall_seconds <= 0:
            return 0.0
        return self.decode_steps / self.decode_wall_seconds

    @property
    def speculate_accept_rate(self) -> float:
        """Accepted fraction of drafted speculative tokens (0.0 before any pass)."""
        if self.speculate_drafted <= 0:
            return 0.0
        return self.speculate_accepted / self.speculate_drafted

    @property
    def block_occupancy(self) -> float:
        """Fraction of the shared pool's blocks mapped by live sessions."""
        return self.pool.occupancy if self.pool is not None else 0.0

    @property
    def block_share_hits(self) -> int:
        """Prefix-sharing hits in the shared pool (blocks mapped, not copied)."""
        return self.pool.share_hits if self.pool is not None else 0


@dataclass(frozen=True)
class ServerStatsSnapshot:
    """Immutable copy of :class:`ServerStats` (same derived accessors)."""

    requests: int
    batches: int
    flushes: int
    plans_compiled: int
    stacked_executions: int
    coalesced_requests: int
    wall_seconds: float
    kernel_seconds: float
    decode_sessions: int
    decode_steps: int
    decode_stacked_executions: int
    decode_coalesced_steps: int
    decode_wall_seconds: float
    prefill_chunks: int
    prefill_tokens: int
    prefill_stacked_executions: int
    prefill_coalesced_chunks: int
    prefill_wall_seconds: float
    speculate_passes: int
    speculate_drafted: int
    speculate_accepted: int
    speculate_rolled_back: int
    speculate_fallbacks: int
    speculate_wall_seconds: float
    paged_sessions: int
    sessions_closed: int
    admission_rejected: int
    admission_queued: int
    admission_admitted: int
    cache: CacheStats
    pool: Optional[BlockPoolStats]

    throughput_rps = ServerStats.throughput_rps
    mean_latency_s = ServerStats.mean_latency_s
    decode_steps_per_second = ServerStats.decode_steps_per_second
    speculate_accept_rate = ServerStats.speculate_accept_rate
    block_occupancy = ServerStats.block_occupancy
    block_share_hits = ServerStats.block_share_hits


class ServingSession:
    """Client-side handle batching requests toward one server.

    Requests accumulate locally via :meth:`ask` and are executed together on
    :meth:`flush`, which lets the server group them by plan key; responses of
    every flush are appended to :attr:`history`.  Request ids are drawn from
    the server's counter, so they stay unique even when several sessions (or
    direct submissions) share one server.
    """

    def __init__(self, server) -> None:
        self.server = server
        self.history: List[AttentionResponse] = []
        self._pending: List[AttentionRequest] = []

    def ask(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskInput = None,
        *,
        algorithm: str = "auto",
    ) -> AttentionRequest:
        """Queue one request; returns it (with its assigned id) for tracking."""
        request = AttentionRequest(
            q=q,
            k=k,
            v=v,
            mask=mask,
            algorithm=algorithm,
            request_id=self.server.next_request_id(),
        )
        self._pending.append(request)
        return request

    def __len__(self) -> int:
        return len(self._pending)

    def flush(self) -> List[AttentionResponse]:
        """Serve every queued request as one batch and return its responses."""
        pending, self._pending = self._pending, []
        responses = self.server.serve(pending)
        self.history.extend(responses)
        return responses
