"""Paged KV-cache: block pools, block tables, prefix sharing, copy-on-write.

PR 3's :class:`~repro.serve.decode.KVCache` gives every decoding stream a
private geometrically-doubling buffer, so N concurrent streams with one
shared prompt store N copies of its keys and values and the server has no
global notion of memory.  This module pages the cache instead — the vLLM
recipe applied to the repo's numpy serving stack:

* :class:`BlockPool` — one preallocated pair of K/V arenas shaped
  ``batch_shape + (num_blocks · block_size, d)``, carved into fixed-size
  *blocks* handed out through a free list.  Blocks are refcounted: several
  sessions may map one physical block, and a block whose refcount drops to
  zero while still registered under a prefix fingerprint parks in an LRU of
  *evictable* blocks — a finished session's prompt stays warm for the next
  identical prompt until memory pressure actually reclaims it.
* :class:`PagedKVCache` — the drop-in replacement for ``KVCache``: the same
  ``extend``/``append``/``gather`` API, but backed by a *block table* of
  physical block ids instead of a contiguous buffer.  Prefill chunks are
  fingerprinted with a chained content hash (hash of this block's bytes
  chained onto the hash of everything before it), so two sessions prefilling
  the same prompt map the same physical blocks (*prefix sharing*), including
  a partially-filled tail block.  Appending into a block mapped by more than
  one session copies it first (*copy-on-write on divergence*).
* :exc:`PoolExhausted` — raised when an allocation (or a server admission
  check) cannot be satisfied even after evicting every unreferenced block;
  the serving layer turns it into reject-or-queue admission control.

All pool mutations happen under one lock, so concurrent sessions on a thread
pool can share a pool; reservation (:meth:`BlockPool.reserve`) is
all-or-nothing, which is what lets a batched decode step fail *before*
touching any session's block table.

The gather/scatter contract keeps decoding bit-exact: a block table lookup
maps logical token positions to physical arena rows, and the kernels consume
exactly the same gathered ``(..., E, d)`` views they would have read from a
contiguous cache.

**Quantized storage** (:mod:`repro.serve.quant`): a pool's ``storage`` axis
(``"fp32"`` / ``"fp16"`` / ``"int8"``) decouples what the arenas hold from
the compute dtype its gathers return.  Chunks are encoded on write (int8
rows carry per-row float32 scale/zero parameters in parallel arenas) and
dequantized on gather through the optional compiled fast path
(:mod:`repro.core.compiled`); fingerprints hash the *encoded* payload, so
prefix sharing, copy-on-write and byte-exact swap restores all operate on
quantized blocks without ever inflating them to fp32.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core import compiled
from repro.obs.recorder import NULL_OBS, Observability
from repro.perfmodel.decode import blocks_for_tokens
from repro.serve.quant import (
    STORAGE_DTYPES,
    EncodedChunk,
    decode_chunk,
    encode_chunk,
    resolve_storage,
    storage_param_bytes_per_token,
)
from repro.utils.dtypes import INDEX_DTYPE, resolve_dtype
from repro.utils.validation import require

#: Default tokens per block — small enough that a short prompt's padding
#: waste stays low, large enough that block tables stay short.
DEFAULT_BLOCK_SIZE = 16

#: Default names for pools created without one ("pool0", "pool1", ...) — the
#: metric label that keeps multiple pools' series apart in one registry.
_POOL_IDS = itertools.count()


class PoolExhausted(RuntimeError):
    """No free or evictable block can satisfy an allocation or admission."""


def _fingerprint(
    parent: str, k_bytes: bytes, v_bytes: bytes, fill: int, params: bytes = b""
) -> str:
    """Chained content hash of one block given the fingerprint of its prefix.

    ``params`` carries the serialized quantization parameters for int8
    storage (empty for float storage, so fp32 fingerprints are byte-for-byte
    the pre-quantization scheme).  Hashing the *encoded* payload is what
    makes sharing and swap-restore consistent on quantized pools: two chunks
    share a block exactly when their stored bytes are identical.
    """
    digest = hashlib.sha1()
    digest.update(parent.encode())
    digest.update(fill.to_bytes(4, "little"))
    digest.update(k_bytes)
    digest.update(v_bytes)
    if params:
        digest.update(params)
    return digest.hexdigest()


def prefix_fingerprints(
    k: np.ndarray,
    v: np.ndarray,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    storage: Optional[str] = None,
    dtype=np.float32,
) -> List[str]:
    """Chained fingerprints of a prompt's *full* KV blocks, without a pool.

    Returns exactly the chain a :class:`PagedKVCache` registers while
    prefilling these rows on a pool of the same ``block_size`` / ``storage``
    / compute ``dtype``: the chain advances only on full blocks and a
    partially filled tail is re-fingerprinted over the complete block's
    encoded content once it fills, so the result is independent of how the
    prompt was chunked.  This is the prefix-affinity routing key — a
    front-end router can compute it before picking a replica and know which
    replica's pool already holds the deepest matching prefix.
    """
    k = np.asarray(k)
    v = np.asarray(v)
    require(k.shape[-2] == v.shape[-2], "k and v must cover the same tokens")
    require(block_size >= 1, "block size must be >= 1")
    resolved = resolve_storage(storage, resolve_dtype(dtype))
    full_blocks = k.shape[-2] // block_size
    if full_blocks == 0:
        return []
    covered = full_blocks * block_size
    payload = encode_chunk(k[..., :covered, :], v[..., :covered, :], resolved)
    chain = "root"
    fingerprints: List[str] = []
    for index in range(full_blocks):
        block = payload.slice(index * block_size, (index + 1) * block_size)
        chain = _fingerprint(
            chain,
            np.ascontiguousarray(block.k).tobytes(),
            np.ascontiguousarray(block.v).tobytes(),
            block_size,
            block.param_bytes(),
        )
        fingerprints.append(chain)
    return fingerprints


@dataclass
class BlockPoolStats:
    """Counters and gauges of one :class:`BlockPool` (gauges updated under its lock)."""

    num_blocks: int = 0
    block_size: int = 0
    allocations: int = 0
    share_hits: int = 0
    shared_tokens_saved: int = 0
    cow_copies: int = 0
    evictions: int = 0
    failed_reservations: int = 0
    free_blocks: int = 0
    evictable_blocks: int = 0
    blocks_in_use: int = 0

    @property
    def occupancy(self) -> float:
        """Fraction of physical blocks currently mapped by at least one cache."""
        return self.blocks_in_use / self.num_blocks if self.num_blocks else 0.0

    def snapshot(self) -> "BlockPoolStats":
        return BlockPoolStats(**{f: getattr(self, f) for f in self.__dataclass_fields__})


class BlockPool:
    """Refcounted fixed-size block arena shared by paged KV caches.

    The K and V arenas are allocated once, shaped
    ``batch_shape + (num_blocks · block_size, d)`` so a block table lookup
    turns token positions into flat physical rows and every kernel gather is
    a single fancy-index on the arena.  All sessions sharing a pool must
    share its layout (batch shape, head dims, dtype) — the same constraint a
    real paged-attention arena has, since blocks are raw ``(block_size, d)``
    tiles of one tensor.

    Thread safety: every mutating method takes the pool lock, and
    :meth:`reserve` is all-or-nothing, so concurrent sessions can allocate
    from one pool without ever observing a partially-applied batch.
    """

    def __init__(
        self,
        num_blocks: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        *,
        key_dim: int,
        value_dim: Optional[int] = None,
        batch_shape: Tuple[int, ...] = (),
        dtype=np.float32,
        storage: Optional[str] = None,
        obs: Optional[Observability] = None,
        name: Optional[str] = None,
    ) -> None:
        require(num_blocks >= 1, "pool needs at least one block")
        require(block_size >= 1, "block size must be >= 1")
        require(key_dim > 0, "key dim must be positive")
        value_dim = key_dim if value_dim is None else value_dim
        require(value_dim > 0, "value dim must be positive")
        self.num_blocks = int(num_blocks)
        self.block_size = int(block_size)
        self.key_dim = int(key_dim)
        self.value_dim = int(value_dim)
        self.batch_shape = tuple(int(s) for s in batch_shape)
        #: compute dtype: what gathers return and kernels consume
        self._dtype = resolve_dtype(dtype)
        #: storage format of the arenas; defaults to matching the compute dtype
        self.storage = resolve_storage(storage, self._dtype)
        storage_dtype = STORAGE_DTYPES[self.storage]
        #: identity storage needs no decode — the fp32 hot path stays a view
        self._identity = storage_dtype == self._dtype
        rows = self.num_blocks * self.block_size
        self._keys = np.zeros(
            self.batch_shape + (rows, self.key_dim), dtype=storage_dtype
        )
        self._values = np.zeros(
            self.batch_shape + (rows, self.value_dim), dtype=storage_dtype
        )
        if self.storage == "int8":
            # per-row affine parameters, indexed by physical row like the arenas
            param_shape = self.batch_shape + (rows,)
            self._k_scale = np.ones(param_shape, dtype=np.float32)
            self._k_zero = np.zeros(param_shape, dtype=np.float32)
            self._v_scale = np.ones(param_shape, dtype=np.float32)
            self._v_zero = np.zeros(param_shape, dtype=np.float32)
        else:
            self._k_scale = self._k_zero = self._v_scale = self._v_zero = None
        self._refcounts = np.zeros(self.num_blocks, dtype=np.int64)
        self._in_use = 0  # blocks with refcount > 0, maintained on 0<->1 edges
        self._free: List[int] = list(range(self.num_blocks - 1, -1, -1))
        #: refcount-0 blocks still registered under a fingerprint, LRU order
        self._evictable: "OrderedDict[int, None]" = OrderedDict()
        self._fingerprint_to_block: Dict[str, int] = {}
        self._block_to_fingerprint: Dict[int, str] = {}
        self._lock = threading.RLock()
        self.stats = BlockPoolStats(num_blocks=self.num_blocks, block_size=self.block_size)
        self.obs = obs if obs is not None else NULL_OBS
        self.name = name if name is not None else f"pool{next(_POOL_IDS)}"
        if self.obs.enabled:
            # label children resolved once; hot paths record through these
            events = self.obs.pool_events
            self._obs_alloc = events.labels(pool=self.name, event="allocation")
            self._obs_evict = events.labels(pool=self.name, event="eviction")
            self._obs_fail = events.labels(pool=self.name, event="failed_reservation")
            self._obs_share = events.labels(pool=self.name, event="share_hit")
            # monotone twin of the retractable share counters: Prometheus
            # counters must never decrease, so backed-out share credit is
            # counted forward here instead of subtracted
            self._obs_retract = events.labels(pool=self.name, event="share_retraction")
            self._obs_cow = events.labels(pool=self.name, event="cow_copy")
            self._obs_shared_tokens = self.obs.pool_shared_tokens.labels(pool=self.name)
            blocks = self.obs.pool_blocks
            self._obs_free = blocks.labels(pool=self.name, state="free")
            self._obs_evictable = blocks.labels(pool=self.name, state="evictable")
            self._obs_in_use = blocks.labels(pool=self.name, state="in_use")
            self._obs_kv_bytes = self.obs.pool_kv_bytes.labels(
                pool=self.name, storage=self.storage
            )
            self._obs_dequant = self.obs.pool_dequant_seconds.labels(
                pool=self.name, storage=self.storage
            )
        self._refresh_gauges()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_budget(
        cls,
        memory_budget_bytes: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        *,
        key_dim: int,
        value_dim: Optional[int] = None,
        batch_shape: Tuple[int, ...] = (),
        dtype=np.float32,
        storage: Optional[str] = None,
        obs: Optional[Observability] = None,
        name: Optional[str] = None,
    ) -> "BlockPool":
        """Size a pool to a byte budget: as many blocks as the arenas can hold.

        The per-block cost is priced at the *storage* dtype — an int8 pool
        carves roughly 4x the blocks of an fp32 pool from one budget, minus
        the per-row quantization-parameter overhead.
        """
        value_dim = key_dim if value_dim is None else value_dim
        resolved = resolve_storage(storage, resolve_dtype(dtype))
        element = STORAGE_DTYPES[resolved].itemsize
        slices = prod(batch_shape or (1,))
        per_block = slices * block_size * (
            (key_dim + value_dim) * element + storage_param_bytes_per_token(resolved)
        )
        num_blocks = int(memory_budget_bytes) // per_block
        require(
            num_blocks >= 1,
            f"memory budget {memory_budget_bytes} bytes is below one "
            f"{per_block}-byte block",
        )
        return cls(
            num_blocks,
            block_size,
            key_dim=key_dim,
            value_dim=value_dim,
            batch_shape=batch_shape,
            dtype=dtype,
            storage=storage,
            obs=obs,
            name=name,
        )

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        """Compute dtype: what gathers return, regardless of storage format."""
        return self._dtype

    @property
    def storage_dtype(self) -> np.dtype:
        """Element dtype the arenas physically hold."""
        return self._keys.dtype

    @property
    def block_bytes(self) -> int:
        """Physical bytes of one block: K/V tiles plus quantization parameters."""
        slices = prod(self.batch_shape) if self.batch_shape else 1
        element = self._keys.dtype.itemsize
        data = slices * self.block_size * (self.key_dim + self.value_dim) * element
        params = slices * self.block_size * storage_param_bytes_per_token(self.storage)
        return int(data + params)

    @property
    def nbytes(self) -> int:
        """Total arena bytes (the fixed memory budget the pool occupies)."""
        total = self._keys.nbytes + self._values.nbytes
        if self._k_scale is not None:
            total += (
                self._k_scale.nbytes
                + self._k_zero.nbytes
                + self._v_scale.nbytes
                + self._v_zero.nbytes
            )
        return int(total)

    @property
    def free_blocks(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def evictable_blocks(self) -> int:
        with self._lock:
            return len(self._evictable)

    @property
    def available_blocks(self) -> int:
        """Blocks an allocation could obtain right now (free + evictable)."""
        with self._lock:
            return len(self._free) + len(self._evictable)

    @property
    def blocks_in_use(self) -> int:
        """Blocks mapped by at least one live cache (refcount > 0)."""
        with self._lock:
            return self._in_use

    @property
    def used_bytes(self) -> int:
        """Bytes of the blocks currently mapped by live caches."""
        return self.blocks_in_use * self.block_bytes

    def refcount(self, block: int) -> int:
        with self._lock:
            return int(self._refcounts[block])

    def _refresh_gauges(self) -> None:
        self.stats.free_blocks = len(self._free)
        self.stats.evictable_blocks = len(self._evictable)
        self.stats.blocks_in_use = self._in_use
        if self.obs.enabled:
            self._obs_free.set(len(self._free))
            self._obs_evictable.set(len(self._evictable))
            self._obs_in_use.set(self._in_use)
            self._obs_kv_bytes.set(self._in_use * self.block_bytes)

    def stats_snapshot(self) -> BlockPoolStats:
        """Tear-free copy of the pool's counters and gauges (under the lock)."""
        with self._lock:
            return self.stats.snapshot()

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _evict_locked(self) -> int:
        block, _ = self._evictable.popitem(last=False)  # least recently parked
        fingerprint = self._block_to_fingerprint.pop(block, None)
        if fingerprint is not None:
            self._fingerprint_to_block.pop(fingerprint, None)
        self.stats.evictions += 1
        if self.obs.enabled:
            self._obs_evict.inc()
        return block

    def _alloc_locked(self) -> int:
        if self._free:
            block = self._free.pop()
        elif self._evictable:
            block = self._evict_locked()
        else:
            raise PoolExhausted(
                f"all {self.num_blocks} blocks are referenced by live sessions"
            )
        self._refcounts[block] = 1
        self._in_use += 1
        self.stats.allocations += 1
        if self.obs.enabled:
            self._obs_alloc.inc()
        return block

    def reserve(self, count: int) -> List[int]:
        """Atomically allocate ``count`` blocks (refcount 1 each) or none.

        Raises :exc:`PoolExhausted` without side effects when fewer than
        ``count`` blocks are free or evictable — the all-or-nothing shape a
        batched decode step needs so a failed batch mutates nothing.
        """
        require(count >= 0, "reserve count must be non-negative")
        with self._lock:
            if len(self._free) + len(self._evictable) < count:
                self.stats.failed_reservations += 1
                if self.obs.enabled:
                    self._obs_fail.inc()
                raise PoolExhausted(
                    f"need {count} blocks, only "
                    f"{len(self._free) + len(self._evictable)} available"
                )
            blocks = [self._alloc_locked() for _ in range(count)]
            self._refresh_gauges()
            return blocks

    def incref(self, block: int) -> None:
        with self._lock:
            require(self._refcounts[block] > 0, "incref on an unreferenced block")
            self._refcounts[block] += 1
            # no gauge refresh: gauges move only on 0<->1 refcount edges and
            # free/evictable list changes, none of which can happen here

    def release(self, blocks: Sequence[int]) -> None:
        """Drop one reference from each block; unreferenced blocks park or free.

        A block still registered under a prefix fingerprint becomes
        *evictable* (kept warm for future identical prefixes, reclaimed LRU
        under pressure); an unregistered block returns straight to the free
        list.
        """
        with self._lock:
            for block in blocks:
                count = int(self._refcounts[block])
                require(count > 0, f"double free of block {block}")
                self._refcounts[block] = count - 1
                if count == 1:
                    self._in_use -= 1
                    if block in self._block_to_fingerprint:
                        # a 1 -> 0 transition cannot already be parked, so the
                        # fresh insertion lands most-recently-parked
                        self._evictable[block] = None
                    else:
                        self._free.append(block)
            self._refresh_gauges()

    # ------------------------------------------------------------------ #
    # Prefix sharing
    # ------------------------------------------------------------------ #
    def lookup(self, fingerprint: str, *, tokens: int = 0) -> Optional[int]:
        """Map a chained prefix fingerprint to its physical block, if cached.

        A hit increfs the block (reviving it from the evictable LRU when its
        last session already finished) — the caller now maps it.  ``tokens``
        is the token count the hit deduplicates, credited to the pool's
        ``shared_tokens_saved`` counter under the lock.
        """
        with self._lock:
            block = self._fingerprint_to_block.get(fingerprint)
            if block is None:
                return None
            if self._refcounts[block] == 0:
                self._evictable.pop(block, None)
                self._refcounts[block] = 1
                self._in_use += 1
            else:
                self._refcounts[block] += 1
            self.stats.share_hits += 1
            self.stats.shared_tokens_saved += int(tokens)
            if self.obs.enabled:
                self._obs_share.inc()
                self._obs_shared_tokens.inc(int(tokens))
            self._refresh_gauges()
            return block

    def register(self, fingerprint: str, block: int) -> None:
        """Publish a block under its chained fingerprint for future sharing.

        The block's previous fingerprint (if any) is withdrawn first, even
        when the new fingerprint loses the first-writer-wins race — the block
        holds new content either way, so its old mapping must never survive.
        """
        with self._lock:
            stale = self._block_to_fingerprint.pop(block, None)
            if stale is not None and self._fingerprint_to_block.get(stale) == block:
                self._fingerprint_to_block.pop(stale)
            if fingerprint in self._fingerprint_to_block:
                return  # first writer wins; the duplicate stays private
            self._fingerprint_to_block[fingerprint] = block
            self._block_to_fingerprint[block] = fingerprint

    def invalidate(self, block: int) -> None:
        """Withdraw a block's fingerprint before its content is mutated."""
        with self._lock:
            fingerprint = self._block_to_fingerprint.pop(block, None)
            if fingerprint is not None:
                self._fingerprint_to_block.pop(fingerprint, None)

    def retract_shares(self, hits: int, tokens: int) -> None:
        """Back out the share credit of lookups whose extend then failed."""
        with self._lock:
            self.stats.share_hits -= int(hits)
            self.stats.shared_tokens_saved -= int(tokens)
            if self.obs.enabled:
                self._obs_retract.inc(int(hits))

    def prepare_append(self, block: int) -> bool:
        """Atomically claim ``block`` for an in-place write.

        Returns ``True`` after withdrawing its fingerprint (no new sharer can
        map it anymore) when this caller is the sole reference; ``False`` when
        the block is shared, in which case the caller must copy-on-write.
        The check and the invalidation happen under one lock — a concurrent
        :meth:`lookup` either shares the block *before* (forcing the COW
        path) or misses *after*, never in between.
        """
        with self._lock:
            if self._refcounts[block] > 1:
                return False
            self.invalidate(block)
            return True

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def encode(self, k_rows: np.ndarray, v_rows: np.ndarray) -> EncodedChunk:
        """Encode compute-dtype K/V rows into this pool's storage format."""
        return encode_chunk(k_rows, v_rows, self.storage)

    def write_encoded(self, block: int, offset: int, chunk: EncodedChunk) -> None:
        """Scatter an encoded chunk into ``block`` starting at ``offset``."""
        count = chunk.tokens
        require(offset >= 0 and offset + count <= self.block_size, "write exceeds block")
        start = block * self.block_size + offset
        stop = start + count
        self._keys[..., start:stop, :] = chunk.k
        self._values[..., start:stop, :] = chunk.v
        if self._k_scale is not None:
            self._k_scale[..., start:stop] = chunk.k_scale
            self._k_zero[..., start:stop] = chunk.k_zero
            self._v_scale[..., start:stop] = chunk.v_scale
            self._v_zero[..., start:stop] = chunk.v_zero

    def write(
        self, block: int, offset: int, k_rows: np.ndarray, v_rows: np.ndarray
    ) -> None:
        """Scatter compute-dtype token rows into ``block`` (encodes on the way)."""
        self.write_encoded(block, offset, self.encode(k_rows, v_rows))

    def copy_block(self, src: int, dst: int, fill: int) -> None:
        """Copy the first ``fill`` rows of ``src`` into ``dst`` (the COW copy).

        A raw byte move in storage space — quantization parameters travel
        with their rows, so a COW of quantized content is exact by
        construction (no decode/re-encode, hence no added error).
        """
        s, d = src * self.block_size, dst * self.block_size
        self._keys[..., d : d + fill, :] = self._keys[..., s : s + fill, :]
        self._values[..., d : d + fill, :] = self._values[..., s : s + fill, :]
        if self._k_scale is not None:
            self._k_scale[..., d : d + fill] = self._k_scale[..., s : s + fill]
            self._k_zero[..., d : d + fill] = self._k_zero[..., s : s + fill]
            self._v_scale[..., d : d + fill] = self._v_scale[..., s : s + fill]
            self._v_zero[..., d : d + fill] = self._v_zero[..., s : s + fill]
        with self._lock:
            self.stats.cow_copies += 1
            if self.obs.enabled:
                self._obs_cow.inc()

    def encoded_block_rows(self, block: int, fill: int) -> EncodedChunk:
        """One block's first ``fill`` rows as stored (views, storage dtype)."""
        start = block * self.block_size
        stop = start + fill
        if self._k_scale is None:
            return EncodedChunk(
                k=self._keys[..., start:stop, :], v=self._values[..., start:stop, :]
            )
        return EncodedChunk(
            k=self._keys[..., start:stop, :],
            v=self._values[..., start:stop, :],
            k_scale=self._k_scale[..., start:stop],
            k_zero=self._k_zero[..., start:stop],
            v_scale=self._v_scale[..., start:stop],
            v_zero=self._v_zero[..., start:stop],
        )

    def block_rows(self, block: int, fill: int) -> Tuple[np.ndarray, np.ndarray]:
        """One block's first ``fill`` K/V rows decoded to the compute dtype."""
        return decode_chunk(self.encoded_block_rows(block, fill), self._dtype)

    def encoded_rows(self, physical: np.ndarray) -> EncodedChunk:
        """Copies of arbitrary physical rows as stored (the swap-out payload)."""
        if self._k_scale is None:
            return EncodedChunk(
                k=self._keys[..., physical, :], v=self._values[..., physical, :]
            )
        return EncodedChunk(
            k=self._keys[..., physical, :],
            v=self._values[..., physical, :],
            k_scale=self._k_scale[..., physical],
            k_zero=self._k_zero[..., physical],
            v_scale=self._v_scale[..., physical],
            v_zero=self._v_zero[..., physical],
        )

    def chunk_fingerprint(self, parent: str, chunk: EncodedChunk, fill: int) -> str:
        """Chained content hash of an encoded chunk (storage bytes + params)."""
        return _fingerprint(
            parent,
            np.ascontiguousarray(chunk.k).tobytes(),
            np.ascontiguousarray(chunk.v).tobytes(),
            fill,
            chunk.param_bytes(),
        )

    def _decode_gather(
        self,
        arena: np.ndarray,
        scale: Optional[np.ndarray],
        zero: Optional[np.ndarray],
        physical: np.ndarray,
    ) -> np.ndarray:
        """Gather physical rows and decode them to the compute dtype."""
        if self._identity:
            # storage == compute: the fp32 hot path stays one fancy-index
            return arena[..., physical, :]
        started = time.perf_counter() if self.obs.enabled else 0.0
        if scale is None:
            out = arena[..., physical, :].astype(self._dtype)
        else:
            out = compiled.gather_dequant_int8(arena, scale, zero, physical)
            if self._dtype != out.dtype:
                out = out.astype(self._dtype)
        if self.obs.enabled:
            self._obs_dequant.inc(time.perf_counter() - started)
        return out

    def decode_key_rows(self, physical: np.ndarray) -> np.ndarray:
        """Key rows at ``physical`` arena indices, decoded to the compute dtype."""
        return self._decode_gather(self._keys, self._k_scale, self._k_zero, physical)

    def decode_value_rows(self, physical: np.ndarray) -> np.ndarray:
        """Value rows at ``physical`` arena indices, decoded to the compute dtype."""
        return self._decode_gather(self._values, self._v_scale, self._v_zero, physical)

    # ------------------------------------------------------------------ #
    def check_consistency(self) -> None:
        """Assert pool invariants (test hook): no leaks, no double mapping."""
        with self._lock:
            free = set(self._free)
            evictable = set(self._evictable)
            require(len(free) == len(self._free), "free list holds duplicates")
            require(not (free & evictable), "block is both free and evictable")
            referenced = {int(b) for b in np.flatnonzero(self._refcounts)}
            require(
                not (referenced & free) and not (referenced & evictable),
                "referenced block sits on the free/evictable lists",
            )
            require(
                self._in_use == len(referenced),
                "in-use counter diverged from the refcount array",
            )
            require(
                len(free) + len(evictable) + len(referenced) == self.num_blocks,
                "blocks leaked: free + evictable + referenced != num_blocks",
            )
            for fingerprint, block in self._fingerprint_to_block.items():
                require(
                    self._block_to_fingerprint.get(block) == fingerprint,
                    "fingerprint maps are out of sync",
                )


# --------------------------------------------------------------------------- #
# Paged cache
# --------------------------------------------------------------------------- #
@dataclass
class _Tail:
    """Mutable state of the (single) partially-filled tail block."""

    fill: int = 0  # tokens in the last block; 0 means the table is block-aligned


class _Step(NamedTuple):
    """One probed extend chunk, executed verbatim by the commit phase."""

    kind: str  # "tail" (append into the partial tail), "share", or "fresh"
    take: int  # tokens this chunk covers
    fingerprint: Optional[str]  # registered on commit; None for a partial tail
    block: Optional[int] = None  # share: the physical block to map
    chunk: Optional[EncodedChunk] = None  # tail/fresh: the rows to scatter


@dataclass
class SpeculativeWindow:
    """One open provisional (draft-token) append on a :class:`PagedKVCache`.

    Created by :meth:`PagedKVCache.begin_speculative`; carries everything
    :meth:`rollback` needs to restore the cache to its pre-append state
    bit-exactly: the block-table/length/chain/tail snapshot, the blocks
    drawn from the admission prereserve (returned there), the fresh block
    references the append took (released back to the pool), and the
    copy-on-written old tail (whose reference was never dropped — it simply
    returns to the table with the snapshot).
    """

    cache: "PagedKVCache"
    start: int  # logical position of the first speculative token
    count: int  # speculative tokens appended
    snapshot: Tuple = ()
    held: List[int] = field(default_factory=list)
    acquired: List[int] = field(default_factory=list)
    deferred: List[int] = field(default_factory=list)
    closed: bool = False

    def rollback(self) -> None:
        """Restore the cache to its state before the speculative append.

        Idempotent.  Because the speculative extend published nothing (no
        fingerprints, no share lookups, chain unchanged), this is pure
        local restoration plus returning block references: the pool's
        fingerprint maps and warm LRU never saw the draft tokens, so a full
        rejection cannot evict or pollute anything another stream shares.
        """
        if self.closed:
            return
        self.closed = True
        cache = self.cache
        (
            cache._blocks,
            cache._length,
            cache._chain,
            cache._tail.fill,
            cache.share_hits,
            cache.cow_copies,
        ) = self.snapshot
        cache._blocks_set = set(cache._blocks)
        cache._table_dirty = True
        cache._tail_claimed = None
        cache._prereserved.extend(self.held)
        if self.acquired:
            cache.pool.release(self.acquired)
        cache._speculative = None


class PagedKVCache:
    """Block-table KV cache over a shared :class:`BlockPool`.

    Exposes the same surface a :class:`~repro.serve.decode.DecodeSession`
    drives on the private :class:`~repro.serve.decode.KVCache` — ``extend``/
    ``append``, ``length``, ``gather_keys``/``gather_values``,
    ``keys``/``values`` — but the storage is a list of physical block ids.

    Prefill chunks are fingerprinted block-by-block with a chained content
    hash; a fingerprint already published in the pool maps the existing
    physical block instead of writing a copy (prefix sharing, including a
    partially-filled tail).  Appending into a block referenced by another
    session copies it first (copy-on-write), so divergence after a shared
    prefix never corrupts a sibling stream.  :meth:`release` returns every
    block reference; released caches refuse further writes, which is what
    makes double-free structurally impossible.
    """

    def __init__(self, pool: BlockPool, *, max_length: Optional[int] = None) -> None:
        self.pool = pool
        self.batch_shape = pool.batch_shape
        self.key_dim = pool.key_dim
        self.value_dim = pool.value_dim
        self.max_length = int(max_length) if max_length is not None else None
        require(
            self.max_length is None or self.max_length >= 1,
            "max_length must be >= 1 when given",
        )
        self._blocks: List[int] = []
        self._blocks_set: set = set()  # mirrors _blocks for O(1) membership
        self._table_cache = np.zeros(0, dtype=np.int64)  # _blocks as ndarray
        self._table_dirty = False
        self._length = 0
        self._chain = "root"  # fingerprint of the full-block prefix
        self._tail = _Tail()
        #: pending prepare_append outcome from plan_extend (None = not claimed)
        self._tail_claimed: Optional[bool] = None
        #: admission-reserved blocks, consumed before any pool allocation
        self._prereserved: List[int] = []
        #: open draft-token window (at most one); see :meth:`begin_speculative`
        self._speculative: Optional[SpeculativeWindow] = None
        self.released = False
        self.share_hits = 0
        self.cow_copies = 0

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        return self.pool.dtype

    @property
    def length(self) -> int:
        """Number of live tokens."""
        return self._length

    @property
    def capacity(self) -> int:
        """Token slots the current block table holds without a new allocation."""
        return len(self._blocks) * self.pool.block_size

    @property
    def blocks_used(self) -> int:
        return len(self._blocks)

    @property
    def block_table(self) -> Tuple[int, ...]:
        """Physical block ids backing logical positions, in order."""
        return tuple(self._blocks)

    @property
    def nbytes(self) -> int:
        """Physical bytes this cache maps (shared blocks count fully here)."""
        return len(self._blocks) * self.pool.block_bytes

    @property
    def prereserved_blocks(self) -> int:
        """Admission-reserved blocks not yet holding tokens."""
        return len(self._prereserved)

    def prereserve(self, blocks: int) -> None:
        """Hold ``blocks`` pool blocks for this cache ahead of any append.

        This is what makes server admission *real* rather than advisory: the
        blocks are refcounted to this cache immediately (atomically, or
        :exc:`PoolExhausted` with no side effects), so a stream admitted for
        N tokens cannot lose them to a racing stream between admission and
        prefill.  Appends consume the reservation before touching the pool;
        whatever prefix sharing leaves unused returns at :meth:`release`.
        """
        require(not self.released, "cache was released back to the pool")
        self._prereserved.extend(self.pool.reserve(blocks))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def _physical(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size:
            require(
                int(positions.min(initial=0)) >= 0,
                "gather with negative positions",
            )
            require(
                int(positions.max(initial=0)) < self._length,
                "gather past the live token range",
            )
        size = self.pool.block_size
        if self._table_dirty:
            self._table_cache = np.asarray(self._blocks, dtype=np.int64)
            self._table_dirty = False
        return self._table_cache[positions // size] * size + positions % size

    def gather_keys(self, positions: np.ndarray) -> np.ndarray:
        """Key rows of logical token ``positions``, ``batch_shape + (E, d_k)``.

        Rows come back in the pool's *compute* dtype: identity storage is the
        same single fancy-index as before, quantized storage dequantizes
        through the compiled gather path.
        """
        return self.pool.decode_key_rows(self._physical(positions))

    def gather_values(self, positions: np.ndarray) -> np.ndarray:
        """Value rows of logical token ``positions``, ``batch_shape + (E, d_v)``."""
        return self.pool.decode_value_rows(self._physical(positions))

    def keys(self) -> np.ndarray:
        """All live key rows gathered contiguously (copy, for inspection/tests)."""
        return self.gather_keys(np.arange(self._length, dtype=INDEX_DTYPE))

    def values(self) -> np.ndarray:
        """All live value rows gathered contiguously (copy, for inspection/tests)."""
        return self.gather_values(np.arange(self._length, dtype=INDEX_DTYPE))

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def plan_extend(self, count: int) -> int:
        """Exact physical blocks an ``extend`` of ``count`` tokens will need.

        When a partially-filled tail block exists, this *claims* it: the pool
        atomically either withdraws its fingerprint (no new sharer can map it
        anymore — the extend will write in place) or reports it shared (the
        extend will copy-on-write into one extra block).  The decision is
        remembered and consumed by the next :meth:`extend`, so the
        reservation a batched caller makes from this count can never run dry
        under concurrent sharing.  Chunks that end up shared via fingerprint
        hits consume no reservation; callers release what ``extend`` leaves
        in the list.
        """
        require(count >= 0, "count must be non-negative")
        self._require_no_window("plan_extend")
        if count == 0:
            return 0
        size = self.pool.block_size
        fill = self._tail.fill
        if fill == 0:
            raw = blocks_for_tokens(count, size)
        else:
            if self._tail_claimed is None:
                self._tail_claimed = self.pool.prepare_append(self._blocks[-1])
            remaining = count - (size - fill)
            fresh = blocks_for_tokens(remaining, size) if remaining > 0 else 0
            raw = fresh + (0 if self._tail_claimed else 1)
        return max(0, raw - len(self._prereserved))

    def _take(self, reserved: List[int]) -> int:
        require(len(reserved) > 0, "reservation exhausted mid-extend")
        return reserved.pop()

    def _require_no_window(self, verb: str) -> None:
        require(
            self._speculative is None,
            f"{verb} with an open speculative window (roll it back first)",
        )

    def extend(
        self,
        k_block: np.ndarray,
        v_block: np.ndarray,
        *,
        reserved: Optional[List[int]] = None,
    ) -> int:
        """Append a block of tokens; returns the first appended position.

        Two phases keep this atomic without sacrificing sharing: a *probe*
        fingerprints every chunk and takes share references first (reviving
        parked prefixes — lookup strictly precedes allocation), then the
        exact fresh-block shortfall is reserved all-or-nothing before any
        write.  A :exc:`PoolExhausted` therefore leaves the cache (and the
        pool) exactly as they were — a failed multi-block prefill neither
        writes a row nor cascade-evicts the warm prefix LRU.  Pass
        ``reserved`` (from :meth:`BlockPool.reserve`, sized by
        :meth:`plan_extend`) to move the reservation out to a batch instead;
        unused entries then stay in the list for the caller to release.
        """
        require(not self.released, "cache was released back to the pool")
        self._require_no_window("extend")
        payload, count = self._encode_block(k_block, v_block)
        if count == 0:
            return self._length
        return self._extend_encoded(payload, count, reserved)

    def _encode_block(
        self, k_block: np.ndarray, v_block: np.ndarray
    ) -> Tuple[Optional[EncodedChunk], int]:
        """Validate an append block against the pool layout and encode it."""
        k_block = np.asarray(k_block)
        v_block = np.asarray(v_block)
        require(k_block.ndim >= 2, "key block must be batch_shape + (T, d_k)")
        count = int(k_block.shape[-2])
        require(
            k_block.shape == self.batch_shape + (count, self.key_dim),
            "key block shape does not match the pool layout",
        )
        require(
            v_block.shape == self.batch_shape + (count, self.value_dim),
            "value block shape does not match the pool layout",
        )
        if count == 0:
            return None, 0
        # one whole-extend encode; per-row coding means slicing the payload
        # per block below is identical to encoding each block separately
        k_compute = np.ascontiguousarray(k_block, dtype=self.pool.dtype)
        v_compute = np.ascontiguousarray(v_block, dtype=self.pool.dtype)
        return self.pool.encode(k_compute, v_compute), count

    def begin_speculative(
        self,
        k_block: np.ndarray,
        v_block: np.ndarray,
        *,
        reserved: Optional[List[int]] = None,
    ) -> SpeculativeWindow:
        """Append draft tokens provisionally; returns the window to roll back.

        The rows become gatherable immediately (a stacked verify pass reads
        them), but nothing speculative is ever *published*: no chunk
        fingerprint is computed or registered, the prefix chain does not
        advance, and the pool's share LRU is never probed — so a rejected
        draft token can never be prefix-shared by another stream, and a full
        rejection leaves the warm LRU untouched.  At most one window may be
        open per cache, and while it is open every other mutation
        (``extend``, ``plan_extend``, ``swap_out``) is refused;
        :meth:`SpeculativeWindow.rollback` is the only exit.  Callers
        re-append the accepted prefix through the normal :meth:`extend`
        afterwards — that pass is what publishes fingerprints and sharing
        for the tokens that survived verification.
        """
        require(not self.released, "cache was released back to the pool")
        self._require_no_window("begin_speculative")
        payload, count = self._encode_block(k_block, v_block)
        require(count >= 1, "speculative window needs at least one token")
        window = SpeculativeWindow(cache=self, start=self._length, count=count)
        self._extend_encoded(payload, count, reserved, window=window)
        self._speculative = window
        return window

    def _extend_encoded(
        self,
        payload: EncodedChunk,
        count: int,
        reserved: Optional[List[int]],
        window: Optional[SpeculativeWindow] = None,
    ) -> int:
        """Probe/commit an already-encoded payload (extend and swap restore)."""
        require(
            self.max_length is None or self._length + count <= self.max_length,
            f"KV cache full: {self._length + count} tokens exceed the decode "
            f"horizon {self.max_length}",
        )
        start = self._length
        owns_reservation = reserved is None
        snapshot = (
            list(self._blocks),
            self._length,
            self._chain,
            self._tail.fill,
            self.share_hits,
            self.cow_copies,
        )
        acquired: List[int] = []  # references this extend took (alloc or share)
        held: List[int] = []  # blocks drawn from the admission prereserve
        deferred: List[int] = []  # COW'd old tails, released only on success
        pending: List[Tuple[str, int]] = []  # fingerprints published on commit
        shares: List[int] = []  # token counts credited per probe share hit
        try:
            steps, fresh_needed, chain = self._probe_extend(
                payload, count, acquired, shares, speculative=window is not None
            )
            if owns_reservation:
                shortfall = max(0, fresh_needed - len(self._prereserved))
                reserved = self.pool.reserve(shortfall) if shortfall else []
            self._commit_extend(steps, reserved, acquired, held, deferred, pending)
            self._chain = chain
        except Exception:
            # full rollback: restore the table, return every new reference and
            # put admission-held blocks back, so a failed extend advances
            # nothing (evictions and fingerprint invalidations that already
            # happened are harmless metadata loss).  Fingerprints are only
            # published below, after the commit — a failed extend must never
            # leave a fingerprint pointing at a block it just rolled back
            # into the free pool or the admission prereserve, or a retry
            # could share that block while _acquire hands it out again
            (
                self._blocks,
                self._length,
                self._chain,
                self._tail.fill,
                self.share_hits,
                self.cow_copies,
            ) = snapshot
            self._blocks_set = set(self._blocks)
            self._table_dirty = True
            self._tail_claimed = None
            self._prereserved.extend(held)
            if acquired:
                self.pool.release(acquired)
            if shares:
                # shares that never materialized must not skew the telemetry
                self.pool.retract_shares(len(shares), sum(shares))
            if owns_reservation and reserved:
                self.pool.release(reserved)  # entries _take never popped
            raise
        if window is not None:
            # nothing was published (pending is empty by construction); stash
            # what rollback must undo and keep the COW'd old tail referenced
            # so rollback can re-map it without a pool round-trip
            window.snapshot = snapshot
            window.held = held
            window.acquired = acquired
            window.deferred = deferred
        else:
            for fingerprint, block in pending:
                self.pool.register(fingerprint, block)
            if deferred:
                self.pool.release(deferred)
        if owns_reservation and reserved:
            self.pool.release(reserved)  # exact on success, so normally empty
        return start

    def append(self, k_row: np.ndarray, v_row: np.ndarray) -> int:
        """Append one token (rows shaped ``batch_shape + (d,)``); returns its position."""
        return self.extend(
            np.asarray(k_row)[..., None, :], np.asarray(v_row)[..., None, :]
        )

    # ------------------------------------------------------------------ #
    def _acquire(
        self, reserved: Optional[List[int]], acquired: List[int], held: List[int]
    ) -> int:
        if self._prereserved:
            block = self._prereserved.pop()
            held.append(block)
        else:
            block = (
                self._take(reserved) if reserved is not None else self.pool.reserve(1)[0]
            )
            acquired.append(block)
        # a write target must be private to this call: a block already in the
        # table would be silently overwritten by the coming pool.write
        require(
            block not in self._blocks_set,
            f"pool handed out block {block} already mapped by this cache",
        )
        return block

    def _probe_extend(
        self,
        payload: EncodedChunk,
        count: int,
        acquired: List[int],
        shares: List[int],
        *,
        speculative: bool = False,
    ) -> Tuple[List[_Step], int, str]:
        """Dry-run an extend: fingerprint every chunk, write nothing.

        Returns ``(steps, fresh_needed, chain)``: the step list
        :meth:`_commit_extend` executes, the exact number of physical blocks
        the commit will acquire (tail copy-on-write included), and the chain
        fingerprint after the extend.  Share hits are increfed *here* —
        lookup strictly precedes any allocation, so a prefix parked in the
        evictable LRU is revived rather than evicted to make room for its
        own copy; the references land in ``acquired`` (and their token
        counts in ``shares``) so a failed reservation rolls back both the
        references and the share credit.

        Fingerprints hash the *encoded* payload (quantized bytes plus their
        per-row parameters), so two sessions share a block exactly when its
        stored content matches — and a swap restore of the same payload
        regenerates the same chain.
        """
        size = self.pool.block_size
        steps: List[_Step] = []
        fresh_needed = 0
        chain = self._chain
        fill = self._tail.fill
        pos = 0
        if fill:
            # the leading segment lands in the existing partial tail: claim
            # it now (atomically, no new sharer can map it afterwards) or
            # learn we must copy-on-write into one extra block
            if self._tail_claimed is None:
                self._tail_claimed = self.pool.prepare_append(self._blocks[-1])
            if not self._tail_claimed:
                fresh_needed += 1
            take = min(size - fill, count)
            chunk = payload.slice(0, take)
            fingerprint = None
            if fill + take == size and not speculative:
                full = self.pool.encoded_block_rows(self._blocks[-1], fill).concat(
                    chunk
                )
                fingerprint = self.pool.chunk_fingerprint(chain, full, size)
                chain = fingerprint
            steps.append(_Step("tail", take, fingerprint, chunk=chunk))
            pos = take
        while pos < count:
            take = min(size, count - pos)
            chunk = payload.slice(pos, pos + take)
            if speculative:
                # draft tokens are never published: no fingerprint, no share
                # lookup, and the chain stays where the committed prefix left it
                fresh_needed += 1
                steps.append(_Step("fresh", take, None, chunk=chunk))
                pos += take
                continue
            fingerprint = self.pool.chunk_fingerprint(chain, chunk, take)
            shared = self.pool.lookup(fingerprint, tokens=take)
            if shared is not None:
                acquired.append(shared)
                shares.append(take)
                steps.append(_Step("share", take, fingerprint, block=shared))
            else:
                fresh_needed += 1
                steps.append(_Step("fresh", take, fingerprint, chunk=chunk))
            if take == size:
                chain = fingerprint
            pos += take
        return steps, fresh_needed, chain

    def _commit_extend(
        self,
        steps: List[_Step],
        reserved: Optional[List[int]],
        acquired: List[int],
        held: List[int],
        deferred: List[int],
        pending: List[Tuple[str, int]],
    ) -> None:
        """Execute a probe's step list: acquire blocks, scatter rows.

        Partial fresh chunks are queued for registration (a prompt's tail is
        shareable, COW on divergence); the tail-append step deliberately
        leaves a still-partial tail unregistered — re-fingerprinting it
        every single-token decode step would be pure per-token hashing
        overhead, invalidated by the very next step's claim.
        """
        size = self.pool.block_size
        for step in steps:
            take = step.take
            if step.kind == "share":
                block = step.block
                self._blocks.append(block)
                self._blocks_set.add(block)
                self._table_dirty = True
                self.share_hits += 1
                self._tail.fill = 0 if take == size else take
            elif step.kind == "fresh":
                block = self._acquire(reserved, acquired, held)
                self.pool.write_encoded(block, 0, step.chunk)
                if step.fingerprint is not None:
                    pending.append((step.fingerprint, block))
                self._blocks.append(block)
                self._blocks_set.add(block)
                self._table_dirty = True
                self._tail.fill = 0 if take == size else take
            else:  # tail append
                fill = self._tail.fill
                tail = self._blocks[-1]
                claimed = self._tail_claimed
                self._tail_claimed = None
                if not claimed:
                    # copy-on-write: divergence after a shared partial prefix;
                    # the old tail is released only if the whole extend lands
                    fresh = self._acquire(reserved, acquired, held)
                    self.pool.copy_block(tail, fresh, fill)
                    deferred.append(tail)
                    self._blocks[-1] = fresh
                    self._blocks_set.discard(tail)
                    self._blocks_set.add(fresh)
                    self._table_dirty = True
                    tail = fresh
                    self.cow_copies += 1
                self.pool.write_encoded(tail, fill, step.chunk)
                if step.fingerprint is not None:
                    pending.append((step.fingerprint, tail))
                    self._tail.fill = 0
                else:
                    # a speculative append may fill the tail exactly without
                    # registering it; fill stays modular either way
                    self._tail.fill = 0 if fill + take == size else fill + take
            self._length += take

    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Return every block reference to the pool; idempotent.

        Blocks still fingerprint-registered park in the pool's evictable LRU
        (a finished session's prompt stays warm); the rest free immediately.
        """
        if self.released:
            return
        self.released = True
        blocks = self._blocks + self._prereserved
        if self._speculative is not None:
            # a mid-window cancellation: the speculative blocks sit in the
            # table (released above), but a COW'd old tail is only referenced
            # by the window — return it too, or it would leak
            blocks = blocks + self._speculative.deferred
            self._speculative.closed = True
            self._speculative = None
        self._blocks, self._prereserved = [], []
        self._blocks_set = set()
        self._table_dirty = True
        self._length = 0
        self._tail.fill = 0
        self._tail_claimed = None
        self.pool.release(blocks)

    def swap_out(self) -> "SwapHandle":
        """Serialize the live rows *as stored* and release every block.

        The returned :class:`SwapHandle` carries the encoded payload —
        quantized bytes plus their per-row parameters for int8 pools, never
        an fp32 inflation — so parking a quantized stream costs the pool's
        per-token storage footprint, and a :meth:`restore` maps exactly the
        bytes that left.  Because fingerprint-registered blocks park in the
        pool's evictable LRU at release, a prompt whose blocks survive until
        the resume is *re-shared* by the restore's probe instead of
        rewritten — the swap-in usually costs refcount bumps, not copies,
        while the host copy guarantees bit-exact resume even after the LRU
        was reclaimed.
        """
        require(not self.released, "cache was released back to the pool")
        self._require_no_window("swap_out")
        physical = self._physical(np.arange(self._length, dtype=np.int64))
        handle = SwapHandle(
            payload=self.pool.encoded_rows(physical),
            storage=self.pool.storage,
            dtype=self.pool.dtype,
            length=self._length,
        )
        self.release()
        return handle

    def restore(self, handle: "SwapHandle") -> None:
        """Map a swap handle's encoded payload into this (empty) cache.

        The payload re-enters block-by-block through the same probe/commit
        machinery as :meth:`extend`; identical stored bytes regenerate
        identical chain fingerprints, so blocks still parked in the pool's
        evictable LRU are re-shared instead of rewritten.  The rows are
        never decoded to the compute dtype on the way — a quantized stream
        resumes with exactly the bytes it swapped out, with zero added
        quantization error.
        """
        require(not self.released, "cache was released back to the pool")
        require(self._length == 0, "restore requires an empty cache")
        require(
            handle.storage == self.pool.storage,
            f"swap handle holds {handle.storage} payload, pool stores "
            f"{self.pool.storage}",
        )
        require(
            handle.payload.k.shape
            == self.batch_shape + (handle.length, self.key_dim)
            and handle.payload.v.shape
            == self.batch_shape + (handle.length, self.value_dim),
            "swap handle layout does not match the pool",
        )
        if handle.length == 0:
            return
        self._extend_encoded(handle.payload, handle.length, None)


# --------------------------------------------------------------------------- #
# Host-side swap parking
# --------------------------------------------------------------------------- #
@dataclass
class SwapHandle:
    """Host-side copy of one preempted stream's live K/V rows, as stored.

    ``payload`` is the pool's encoded representation (storage dtype plus
    int8 quantization parameters); ``keys``/``values`` decode it to the
    compute dtype on demand for inspection and compatibility — restoring
    through :meth:`PagedKVCache.restore` never decodes.
    """

    payload: EncodedChunk
    storage: str
    dtype: np.dtype
    length: int

    @property
    def keys(self) -> np.ndarray:
        """Decoded key rows, ``batch_shape + (length, d_k)`` compute dtype."""
        return decode_chunk(self.payload, self.dtype)[0]

    @property
    def values(self) -> np.ndarray:
        """Decoded value rows, ``batch_shape + (length, d_v)`` compute dtype."""
        return decode_chunk(self.payload, self.dtype)[1]

    @property
    def nbytes(self) -> int:
        """Host bytes parked: the encoded payload, not its fp32 inflation."""
        return self.payload.nbytes


@dataclass
class SwapStoreStats:
    """Lifetime counters of one :class:`SwapStore`."""

    swap_outs: int = 0
    swap_ins: int = 0
    bytes_out: int = 0
    bytes_in: int = 0


class SwapStore:
    """Keyed parking lot for preempted sessions' serialized KV caches.

    The continuous-batching scheduler parks a victim's :class:`SwapHandle`
    here under the stream's request id at swap-out and pops it back at
    resume.  :meth:`peek` exposes the handle without consuming it so a
    restore that fails admission (the pool is still full) leaves the swap
    intact for the next attempt; only the successful :meth:`pop` counts a
    swap-in.
    """

    def __init__(self) -> None:
        self._slots: Dict[object, SwapHandle] = {}
        self.stats = SwapStoreStats()

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: object) -> bool:
        return key in self._slots

    @property
    def resident_bytes(self) -> int:
        """Host bytes currently parked across all swapped streams."""
        return sum(handle.nbytes for handle in self._slots.values())

    def put(self, key: object, handle: SwapHandle) -> None:
        require(key not in self._slots, f"stream {key!r} is already swapped out")
        self._slots[key] = handle
        self.stats.swap_outs += 1
        self.stats.bytes_out += handle.nbytes

    def peek(self, key: object) -> SwapHandle:
        require(key in self._slots, f"no swapped stream under {key!r}")
        return self._slots[key]

    def pop(self, key: object) -> SwapHandle:
        handle = self.peek(key)
        del self._slots[key]
        self.stats.swap_ins += 1
        self.stats.bytes_in += handle.nbytes
        return handle


__all__ = [
    "BlockPool",
    "BlockPoolStats",
    "DEFAULT_BLOCK_SIZE",
    "PagedKVCache",
    "PoolExhausted",
    "SwapHandle",
    "SwapStore",
    "SwapStoreStats",
]
