"""The asyncio serving edge: streaming responses, tenant isolation, drain.

:class:`AsyncServingEdge` is the network-shaped front door the roadmap's
"millions of users" goal needs on top of the in-process
:class:`~repro.serve.loop.ContinuousBatchingScheduler`:

* **Streaming** — ``await edge.submit(request)`` returns a
  :class:`TokenStream`; iterating it (``async for chunk in stream``) yields
  attention-output chunks the moment the loop emits them, bridged through a
  per-stream ``asyncio.Queue`` fed by the scheduler's emit listeners.
* **Backpressure** — a consumer that stops reading lets its queue grow to
  ``max_buffered_chunks``; the edge then *holds* the stream (the scheduler
  skips it in admission and batch formation, without dropping its blocks)
  until the consumer drains below the threshold.  A stalled client therefore
  costs its own stream's progress, never the batch's.
* **Tenant isolation** — every request bills to a tenant whose
  :class:`TenantConfig` caps request rate (token bucket on the scheduler's
  clock), concurrent streams, and total KV block budget.  Violations raise
  :class:`TenantThrottled` *at admission*, before the request touches the
  loop, and are exported per tenant/reason through ``edge_throttled_total``.
* **Graceful drain** — ``await edge.shutdown(drain=True)`` rejects new
  submissions with :class:`EdgeClosed` while in-flight streams run to
  completion; ``drain=False`` cancels them, releasing their blocks.

The edge never spawns threads: one asyncio task drives ``scheduler.step()``
and cooperatively yields after every iteration, so consumers interleave with
the loop on one event loop.  On a
:class:`~repro.serve.loop.VirtualClock` the whole edge is deterministic —
the bit-exactness tests replay streamed chunks against per-request
:class:`~repro.serve.decode.DecodeSession` oracles.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.recorder import Observability
from repro.perfmodel.decode import blocks_for_tokens
from repro.serve.loop import ContinuousBatchingScheduler, LoopRequest
from repro.utils.validation import require


class TenantThrottled(RuntimeError):
    """Admission refused by a tenant limit; ``reason`` is rate/quota/budget."""

    def __init__(self, tenant: str, reason: str, message: str) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class EdgeClosed(RuntimeError):
    """The edge is shut down (or draining) and accepts no new streams."""


class StreamCancelled(RuntimeError):
    """Delivered to a consumer whose stream was cancelled under it."""


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant isolation limits; every field ``None`` means unlimited.

    ``rate_per_second`` refills a token bucket on the scheduler's clock
    (virtual seconds under a :class:`~repro.serve.loop.VirtualClock`), with
    capacity ``burst`` (default: ``max(1, rate)``).  ``max_streams`` caps
    concurrently live streams; ``max_blocks`` caps the summed worst-case KV
    block footprint of the tenant's live streams, so one tenant cannot
    reserve the pool out from under the rest.
    """

    rate_per_second: Optional[float] = None
    burst: Optional[int] = None
    max_streams: Optional[int] = None
    max_blocks: Optional[int] = None

    def __post_init__(self) -> None:
        require(
            self.rate_per_second is None or self.rate_per_second > 0,
            "rate_per_second must be positive when given",
        )
        require(self.burst is None or self.burst >= 1, "burst must be >= 1 when given")
        require(
            self.max_streams is None or self.max_streams >= 1,
            "max_streams must be >= 1 when given",
        )
        require(
            self.max_blocks is None or self.max_blocks >= 1,
            "max_blocks must be >= 1 when given",
        )

    @property
    def bucket_capacity(self) -> float:
        if self.burst is not None:
            return float(self.burst)
        if self.rate_per_second is not None:
            return max(1.0, float(self.rate_per_second))
        return float("inf")


@dataclass
class _TenantState:
    """Live accounting for one tenant: bucket level + active stream blocks."""

    config: TenantConfig
    tokens: float
    last_refill: float
    #: request id -> worst-case block footprint charged at admission
    active: Dict[int, int] = field(default_factory=dict)

    @property
    def blocks_reserved(self) -> int:
        return sum(self.active.values())


@dataclass(eq=False)
class _EdgeStream:
    """Edge-private state of one streaming request."""

    request_id: int
    tenant: str
    blocks: int
    queue: "asyncio.Queue" = field(default_factory=asyncio.Queue)
    held: bool = False
    closed: bool = False
    span: Optional[object] = None


@dataclass
class EdgeStats:
    """Lifetime counters of one edge (admissions, throttles, backpressure)."""

    submitted: int = 0
    accepted: int = 0
    throttled: int = 0
    finished: int = 0
    cancelled: int = 0
    backpressure_holds: int = 0


class TokenStream:
    """Async handle for one stream: iterate it to receive output chunks.

    Chunks arrive as ``batch_shape + (t, d)`` arrays in emission order
    (prefill chunks first, then one row per decode step); concatenating them
    along ``axis=-2`` reproduces the loop's final result bit-exactly.
    ``collect()`` does exactly that.  Exhaustion (``StopAsyncIteration``)
    means the stream finished; :class:`StreamCancelled` / :class:`EdgeClosed`
    are raised mid-iteration if the stream is torn down under the consumer.
    """

    def __init__(self, edge: "AsyncServingEdge", state: _EdgeStream) -> None:
        self._edge = edge
        self._state = state
        self._finished = False

    @property
    def request_id(self) -> int:
        return self._state.request_id

    @property
    def tenant(self) -> str:
        return self._state.tenant

    def __aiter__(self) -> "TokenStream":
        return self

    async def __anext__(self) -> np.ndarray:
        if self._finished:
            raise StopAsyncIteration
        kind, payload = await self._state.queue.get()
        self._edge._after_get(self._state)
        if kind == "chunk":
            return payload
        self._finished = True
        if kind == "error":
            raise payload
        raise StopAsyncIteration

    async def collect(self) -> np.ndarray:
        """Drain the stream and concatenate its chunks along the token axis."""
        chunks = [chunk async for chunk in self]
        require(len(chunks) > 0, "stream produced no chunks (cancelled before start?)")
        return np.concatenate(chunks, axis=-2)

    async def cancel(self) -> bool:
        """Abandon the stream (client disconnect): frees its blocks now."""
        return await self._edge.cancel(self.request_id)


class AsyncServingEdge:
    """Asyncio front-end over one scheduler: streaming, quotas, drain.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.serve.loop.ContinuousBatchingScheduler` to drive.
        The edge owns stepping it while it has live streams; the scheduler's
        clock also times the tenant rate limiters.
    tenants:
        Mapping of tenant name to :class:`TenantConfig`.  Unknown tenants get
        ``default_tenant`` (unlimited by default), created on first use.
    default_tenant:
        The :class:`TenantConfig` applied to tenants absent from ``tenants``.
    max_buffered_chunks:
        Per-stream queue depth that triggers a backpressure hold; the hold
        releases when the consumer drains below it.
    obs:
        Observability recorder (defaults to the scheduler's): edge admission
        outcomes, throttles, per-tenant live-stream gauges, backpressure
        events, and ``edge_stream`` trace spans.
    """

    def __init__(
        self,
        scheduler: ContinuousBatchingScheduler,
        *,
        tenants: Optional[Dict[str, TenantConfig]] = None,
        default_tenant: Optional[TenantConfig] = None,
        max_buffered_chunks: int = 8,
        obs: Optional[Observability] = None,
    ) -> None:
        require(max_buffered_chunks >= 1, "max_buffered_chunks must be >= 1")
        self.scheduler = scheduler
        self.clock = scheduler.clock
        self.obs = obs if obs is not None else scheduler.obs
        self.max_buffered_chunks = int(max_buffered_chunks)
        self.stats = EdgeStats()
        self._tenant_configs = dict(tenants or {})
        self._default_config = default_tenant if default_tenant is not None else TenantConfig()
        self._tenants: Dict[str, _TenantState] = {}
        self._streams: Dict[int, _EdgeStream] = {}
        self._task: Optional[asyncio.Task] = None
        self._work: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done() and not self._closed

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "AsyncServingEdge":
        """Start the drive task (idempotent; ``submit`` calls it lazily)."""
        require(not self._closed, "this edge is shut down; build a new one")
        if self._work is None:
            self._work = asyncio.Event()
            self._idle = asyncio.Event()
            self._idle.set()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._drive())
        return self

    async def __aenter__(self) -> "AsyncServingEdge":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown(drain=exc_info[0] is None)

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting streams; finish (``drain=True``) or cancel the rest.

        Draining requires the in-flight streams' consumers to keep reading —
        a held stream whose consumer is gone never finishes.  Cancel such
        streams (or use ``drain=False``) to tear down unconditionally.
        """
        if self._closed:
            return
        self._draining = True
        if self._work is not None:
            self._work.set()
        if drain and self._streams:
            await self._idle.wait()
        if not drain:
            for stream in list(self._streams.values()):
                self._teardown_stream(stream, error=EdgeClosed("edge shut down"))
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def _tenant_state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            config = self._tenant_configs.get(name, self._default_config)
            state = _TenantState(
                config=config,
                tokens=config.bucket_capacity,
                last_refill=self.clock.now(),
            )
            self._tenants[name] = state
        return state

    def _bucket_take(self, state: _TenantState, now: float) -> bool:
        config = state.config
        if config.rate_per_second is None:
            return True
        capacity = config.bucket_capacity
        state.tokens = min(
            capacity, state.tokens + (now - state.last_refill) * config.rate_per_second
        )
        state.last_refill = now
        if state.tokens >= 1.0:
            state.tokens -= 1.0
            return True
        return False

    def _record_outcome(self, tenant: str, outcome: str) -> None:
        if self.obs.enabled:
            self.obs.edge_requests.labels(tenant=tenant, outcome=outcome).inc()

    def _throttle(self, tenant: str, reason: str, message: str) -> TenantThrottled:
        self.stats.throttled += 1
        self._record_outcome(tenant, "throttled")
        if self.obs.enabled:
            self.obs.edge_throttles.labels(tenant=tenant, reason=reason).inc()
        return TenantThrottled(tenant, reason, message)

    async def submit(self, request: LoopRequest, *, tenant: Optional[str] = None) -> TokenStream:
        """Admit one stream (tenant limits enforced here) and start streaming.

        ``tenant`` overrides/sets ``request.tenant``; untagged requests bill
        to ``"default"``.  Raises :class:`TenantThrottled` (rate / quota /
        budget, in that order) or :class:`EdgeClosed`; on success the request
        is submitted to the loop and its :class:`TokenStream` returned.
        """
        self.stats.submitted += 1
        require(
            tenant is None or request.tenant is None or tenant == request.tenant,
            "tenant= disagrees with request.tenant",
        )
        name = tenant or request.tenant or "default"
        if self._draining or self._closed:
            self._record_outcome(name, "closed")
            raise EdgeClosed("the edge is draining; no new streams accepted")
        await self.start()
        request.tenant = name
        state = self._tenant_state(name)
        config = state.config
        now = self.clock.now()
        if not self._bucket_take(state, now):
            raise self._throttle(
                name,
                "rate",
                f"tenant {name!r} exceeded {config.rate_per_second}/s "
                f"(burst {config.bucket_capacity:g})",
            )
        if config.max_streams is not None and len(state.active) >= config.max_streams:
            raise self._throttle(
                name,
                "quota",
                f"tenant {name!r} already has {len(state.active)} live streams "
                f"(limit {config.max_streams})",
            )
        blocks = blocks_for_tokens(request.total_tokens, self.scheduler.pool.block_size)
        if config.max_blocks is not None and state.blocks_reserved + blocks > config.max_blocks:
            raise self._throttle(
                name,
                "budget",
                f"tenant {name!r} would hold {state.blocks_reserved + blocks} KV "
                f"blocks (budget {config.max_blocks})",
            )
        rid = self.scheduler.submit(request)
        state.active[rid] = blocks
        stream = _EdgeStream(request_id=rid, tenant=name, blocks=blocks)
        self._streams[rid] = stream
        self.scheduler.add_emit_listener(rid, self._on_emit)
        self.stats.accepted += 1
        self._record_outcome(name, "accepted")
        obs = self.obs
        if obs.enabled:
            obs.edge_active_streams.labels(tenant=name).set(len(state.active))
            if obs.trace is not None:
                stream.span = obs.trace.start_span(
                    "edge_stream", now, request_id=rid, tenant=name
                )
        self._idle.clear()
        self._work.set()
        return TokenStream(self, stream)

    # ------------------------------------------------------------------ #
    # The drive task
    # ------------------------------------------------------------------ #
    def _on_emit(self, request_id: int, kind: str, output: np.ndarray) -> None:
        stream = self._streams.get(request_id)
        if stream is not None and not stream.closed:
            stream.queue.put_nowait(("chunk", output))

    def _apply_backpressure(self) -> None:
        for stream in self._streams.values():
            if not stream.held and stream.queue.qsize() >= self.max_buffered_chunks:
                self.scheduler.hold(stream.request_id)
                stream.held = True
                self.stats.backpressure_holds += 1
                if self.obs.enabled:
                    self.obs.edge_backpressure.labels(tenant=stream.tenant).inc()

    def _after_get(self, stream: _EdgeStream) -> None:
        """Consumer drained one item: release the hold once below threshold."""
        if stream.held and stream.queue.qsize() < self.max_buffered_chunks:
            stream.held = False
            if not stream.closed:
                self.scheduler.release_hold(stream.request_id)
            if self._work is not None:
                self._work.set()

    async def _drive(self) -> None:
        stalled = 0
        try:
            while True:
                if not self._streams or all(s.held for s in self._streams.values()):
                    # nothing to schedule (idle, or every consumer stalled):
                    # sleep until a submit / drain / cancel wakes us
                    self._work.clear()
                    await self._work.wait()
                    continue
                self._apply_backpressure()
                report = self.scheduler.step()
                for rid in report.finished:
                    stream = self._streams.get(rid)
                    if stream is not None:
                        self._finish_stream(stream)
                progressed = (
                    report.tokens > 0 or report.admitted or report.finished or report.preempted
                )
                if progressed:
                    stalled = 0
                elif any(s.held for s in self._streams.values()):
                    # blocked behind a held stream's blocks: a consumer drain
                    # will wake us, so park instead of spinning the clock
                    self._work.clear()
                    await self._work.wait()
                    continue
                else:
                    stalled += 1
                    if stalled >= 2:
                        error = RuntimeError(
                            "serving edge stalled: no admission, tokens, or finishes"
                        )
                        for stream in list(self._streams.values()):
                            self._teardown_stream(stream, error=error)
                        continue
                # yield after every iteration so consumers interleave
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # Completion / cancellation
    # ------------------------------------------------------------------ #
    def _release_tenant(self, stream: _EdgeStream) -> None:
        state = self._tenants.get(stream.tenant)
        if state is not None:
            state.active.pop(stream.request_id, None)
            if self.obs.enabled:
                self.obs.edge_active_streams.labels(tenant=stream.tenant).set(
                    len(state.active)
                )

    def _close_stream(self, stream: _EdgeStream, event: str) -> None:
        stream.closed = True
        self.scheduler.remove_emit_listener(stream.request_id)
        self._release_tenant(stream)
        self._streams.pop(stream.request_id, None)
        obs = self.obs
        if obs.enabled and obs.trace is not None and stream.span is not None:
            now = self.clock.now()
            obs.trace.event(
                event, now, span=stream.span, request_id=stream.request_id
            )
            obs.trace.end_span(stream.span, now)
            stream.span = None
        if not self._streams and self._idle is not None:
            self._idle.set()
        if self._work is not None:
            self._work.set()

    def _finish_stream(self, stream: _EdgeStream) -> None:
        # the loop concatenated the full output into scheduler.results; the
        # consumer already holds every chunk, so drop the duplicate — a
        # perpetual edge must not accumulate finished tensors
        self.scheduler.results.pop(stream.request_id, None)
        stream.queue.put_nowait(("done", None))
        self.stats.finished += 1
        self._close_stream(stream, "edge_finish")

    def _teardown_stream(self, stream: _EdgeStream, error: Optional[Exception]) -> None:
        self.scheduler.cancel(stream.request_id)
        self.scheduler.results.pop(stream.request_id, None)
        stream.queue.put_nowait(("done", None) if error is None else ("error", error))
        self.stats.cancelled += 1
        self._record_outcome(stream.tenant, "cancelled")
        self._close_stream(stream, "edge_cancel")

    async def cancel(self, request_id: int) -> bool:
        """Client disconnect: cancel the stream, releasing blocks and quota.

        The consumer (if still iterating) receives :class:`StreamCancelled`.
        Returns ``False`` for unknown / already-finished streams.
        """
        stream = self._streams.get(request_id)
        if stream is None:
            return False
        self._teardown_stream(
            stream, error=StreamCancelled(f"stream {request_id} cancelled")
        )
        return True


__all__ = [
    "AsyncServingEdge",
    "EdgeClosed",
    "EdgeStats",
    "StreamCancelled",
    "TenantConfig",
    "TenantThrottled",
    "TokenStream",
]
