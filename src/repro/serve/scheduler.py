"""Batched request scheduler: the attention serving front-end.

:class:`AttentionServer` accepts :class:`~repro.serve.session.AttentionRequest`
objects, groups compatible requests into batches keyed by their canonical plan
key, compiles (or fetches from the :class:`~repro.serve.cache.PlanCache`) one
:class:`~repro.serve.plan.ExecutionPlan` per batch, and executes every request
against the shared plan — so the mask materialisation and dispatch work is
paid once per mask shape per cache lifetime instead of once per request.

Within a plan batch, requests whose tensors share one shape and dtype are
**coalesced**: their Q/K/V are stacked along a new leading axis and the plan
executes the whole stack in a single vectorized kernel pass (the kernels
treat leading axes as first-class batch dimensions), after which the stacked
result is sliced back into per-request responses.  Requests with ragged
shapes simply form singleton groups and take the same code path one slice at
a time.

Execution is serial by default; with ``max_workers > 1`` coalesced groups are
spread over a thread pool using the greedy longest-processing-time balancing
of :func:`repro.distributed.partition_balance.balanced_worker_bins`, with
each group's plan edge count times its stacked width as its load — the same
pick-work-by-expected-cost idea the distributed partitioners apply to query
rows.

Autoregressive decoding streams through the same front-end: the
:class:`~repro.serve.client.ServingClient` façade (``open_session`` /
``request_session``) hands out :class:`~repro.serve.decode.DecodeSession`
objects whose decode-mode plans share the server's plan cache, and
:meth:`AttentionServer.decode_steps` coalesces same-plan same-position steps
from concurrent sessions into one stacked kernel pass (continuous batching).
The old ``open_decode_session`` / ``request_decode_session`` entry points
survive as deprecation shims over the same internals.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.engine import MaskInput
from repro.distributed.partition_balance import balanced_worker_bins
from repro.masks.base import as_mask_spec
from repro.obs.recorder import Observability, default_observability
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.perfmodel.decode import blocks_for_tokens
from repro.perfmodel.devices import DeviceSpec
from repro.serve.cache import PlanCache
from repro.serve.decode import DecodeSession, stacked_decode_step, stacked_prefill
from repro.serve.paging import (
    DEFAULT_BLOCK_SIZE,
    BlockPool,
    PagedKVCache,
    PoolExhausted,
)
from repro.serve.plan import ExecutionPlan, compile_plan, plan_cache_key
from repro.serve.speculate import (
    DEFAULT_DRAFT_FRACTION,
    SpeculationOutcome,
    speculative_decode_steps,
)
from repro.serve.session import (
    AttentionRequest,
    AttentionResponse,
    ServerStats,
    ServerStatsSnapshot,
)
from repro.utils.validation import require


@dataclass
class RequestBatch:
    """Requests of one flush that share an execution plan."""

    plan: ExecutionPlan
    cache_hit: bool
    requests: List[AttentionRequest] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass
class DecodeTicket:
    """Admission-queue entry for a paged decode session.

    Returned by :meth:`repro.serve.client.ServingClient.request_session`: when the pool
    had room the ticket is already admitted (``session`` set); otherwise it
    waits FIFO until :meth:`AttentionServer.close_decode_session` (or an
    explicit :meth:`AttentionServer.admit_queued`) frees enough blocks.
    """

    mask: MaskInput
    horizon: int
    retain_outputs: bool
    pool: "BlockPool"
    reserve_tokens: Optional[int]
    session: Optional[DecodeSession] = None
    #: decode plan compiled at request time (outside the admission lock), so
    #: admitting the ticket later is a pure capacity grant
    plan: Optional[ExecutionPlan] = None
    plan_cache_hit: bool = False

    @property
    def admitted(self) -> bool:
        return self.session is not None


@dataclass
class ExecutionGroup:
    """Same-plan requests whose tensors stack into one kernel invocation.

    ``positions`` are the requests' submission indices within the flush, used
    to restore response ordering after the stacked execution is sliced.
    """

    batch: RequestBatch
    positions: List[int] = field(default_factory=list)
    requests: List[AttentionRequest] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.requests)


class AttentionServer:
    """Serves attention requests through cached execution plans.

    Request intake (``submit``/``serve``/``flush``) is single-threaded: the
    server parallelises kernel execution internally via ``max_workers``, but
    its pending queue, plan cache and statistics are not synchronised, so
    calls into one server must come from one client thread at a time.

    Parameters
    ----------
    executor, scale, prefer_composition:
        Kernel execution knobs, identical to
        :class:`~repro.core.engine.GraphAttentionEngine`.
    cache_capacity:
        Maximum number of plans the LRU cache retains.
    device:
        Optional :class:`~repro.perfmodel.devices.DeviceSpec`; when given,
        every compiled plan carries a predicted runtime for that device.
    head_dim:
        Head dimension assumed by runtime prediction (defaults to the plan
        compiler's constant).
    max_workers:
        ``None`` or ``1`` executes serially; larger values execute each flush
        on a thread pool with load-balanced request bins.
    obs:
        An :class:`~repro.obs.recorder.Observability` recorder shared with
        the plan cache, any pool created by :meth:`create_block_pool`, and
        schedulers built on this server; defaults to
        :func:`~repro.obs.recorder.default_observability` (the no-op
        recorder unless ``REPRO_OBS=1`` is set in the environment).
    """

    def __init__(
        self,
        *,
        executor: str = "vectorized",
        scale: Optional[float] = None,
        prefer_composition: bool = True,
        cache_capacity: int = 64,
        device: Optional[DeviceSpec] = None,
        head_dim: Optional[int] = None,
        max_workers: Optional[int] = None,
        block_pool: Optional[BlockPool] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        require(max_workers is None or max_workers >= 1, "max_workers must be >= 1")
        self.executor = executor
        self.scale = scale
        self.prefer_composition = prefer_composition
        self.device = device
        self.head_dim = head_dim
        self.max_workers = max_workers
        # fall back to the process-wide recorder so REPRO_OBS=1 instruments
        # any serving stack without code changes (NULL_OBS when unset)
        self.obs = obs if obs is not None else default_observability()
        self.cache = PlanCache(cache_capacity, obs=self.obs)
        self.block_pool = block_pool
        self.stats = ServerStats(
            cache=self.cache.stats,
            pool=block_pool.stats if block_pool is not None else None,
        )
        self._pending: List[AttentionRequest] = []
        self._admission_queue: Deque[DecodeTicket] = deque()
        #: serializes queue-mode admission (request/admit/queue inspection):
        #: the queue-empty check and the open-or-enqueue decision must be one
        #: atomic step, or concurrent callers admit out of FIFO order
        self._admission_lock = threading.Lock()
        self._ids = itertools.count()
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def key_for(
        self, mask: MaskInput, length: int, *, algorithm: str = "auto", mode: str = "full"
    ) -> str:
        """Canonical plan key a request with this mask/length resolves to."""
        return plan_cache_key(
            mask,
            length,
            executor=self.executor,
            scale=self.scale,
            prefer_composition=self.prefer_composition,
            algorithm=algorithm,
            device=self.device,
            head_dim=self.head_dim,
            mode=mode,
        )

    def plan_for(
        self, mask: MaskInput, length: int, *, algorithm: str = "auto", mode: str = "full"
    ) -> Tuple[ExecutionPlan, bool]:
        """Fetch or compile the plan for one mask shape; returns ``(plan, was_hit)``.

        Useful for warming the cache ahead of a traffic burst.
        """
        key = self.key_for(mask, length, algorithm=algorithm, mode=mode)
        return self._plan_for_key(key, mask, length, algorithm, mode=mode)

    def _plan_for_key(
        self, key: str, mask: MaskInput, length: int, algorithm: str, *, mode: str = "full"
    ) -> Tuple[ExecutionPlan, bool]:
        def _compile() -> ExecutionPlan:
            with self.stats.lock:
                self.stats.plans_compiled += 1
            return compile_plan(
                mask,
                length,
                executor=self.executor,
                scale=self.scale,
                prefer_composition=self.prefer_composition,
                algorithm=algorithm,
                device=self.device,
                head_dim=self.head_dim,
                mode=mode,
                key=key,  # already derived for the cache lookup; don't re-hash
            )

        return self.cache.get_or_compile(key, _compile)

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def next_request_id(self) -> int:
        """Allocate a request id unique across everything this server serves."""
        return next(self._ids)

    def submit(self, request: AttentionRequest) -> int:
        """Queue one request; returns its (possibly newly assigned) id."""
        if request.request_id is None:
            request.request_id = self.next_request_id()
        self._pending.append(request)
        return request.request_id

    def submit_many(self, requests: Iterable[AttentionRequest]) -> List[int]:
        return [self.submit(request) for request in requests]

    @property
    def pending(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def flush(self) -> List[AttentionResponse]:
        """Execute every queued request; responses follow submission order."""
        requests, self._pending = self._pending, []
        return self._process(requests)

    def serve(self, requests: Sequence[AttentionRequest]) -> List[AttentionResponse]:
        """Execute exactly ``requests`` (queued submissions stay queued)."""
        requests = list(requests)
        for request in requests:
            if request.request_id is None:
                request.request_id = self.next_request_id()
        return self._process(requests)

    def handle(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskInput = None,
        *,
        algorithm: str = "auto",
    ) -> AttentionResponse:
        """Serve a single ad-hoc request."""
        return self.serve([AttentionRequest(q=q, k=k, v=v, mask=mask, algorithm=algorithm)])[0]

    # ------------------------------------------------------------------ #
    # Streaming decode
    # ------------------------------------------------------------------ #
    def create_block_pool(
        self,
        *,
        key_dim: int,
        value_dim: Optional[int] = None,
        batch_shape: Tuple[int, ...] = (),
        dtype=np.float32,
        storage: Optional[str] = None,
        memory_budget_bytes: Optional[int] = None,
        num_blocks: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        name: Optional[str] = None,
    ) -> BlockPool:
        """Install the server's shared KV block pool and return it.

        Size it either by ``memory_budget_bytes`` (the global KV memory the
        server may spend — blocks are carved until the budget is full) or by
        an explicit ``num_blocks``.  Every paged session the server opens
        afterwards draws from this pool and shares identical prefixes.
        ``storage`` selects the arena format (``"fp32"``/``"fp16"``/
        ``"int8"``); a byte budget then buys proportionally more blocks.
        """
        require(
            (memory_budget_bytes is None) != (num_blocks is None),
            "size the pool with exactly one of memory_budget_bytes / num_blocks",
        )
        if memory_budget_bytes is not None:
            pool = BlockPool.from_budget(
                memory_budget_bytes,
                block_size,
                key_dim=key_dim,
                value_dim=value_dim,
                batch_shape=batch_shape,
                dtype=dtype,
                storage=storage,
                obs=self.obs,
                name=name,
            )
        else:
            pool = BlockPool(
                num_blocks,
                block_size,
                key_dim=key_dim,
                value_dim=value_dim,
                batch_shape=batch_shape,
                dtype=dtype,
                storage=storage,
                obs=self.obs,
                name=name,
            )
        self.block_pool = pool
        self.stats.pool = pool.stats
        return pool

    def stats_snapshot(self) -> ServerStatsSnapshot:
        """Tear-free stats copy: server counters under the stats lock, the
        pool's gauges under the pool's own lock."""
        snapshot = self.stats.snapshot()
        if self.block_pool is not None:
            snapshot = dataclasses.replace(
                snapshot, pool=self.block_pool.stats_snapshot()
            )
        return snapshot

    def _admission_blocks(self, pool: BlockPool, reserve_tokens: Optional[int]) -> int:
        tokens = pool.block_size if reserve_tokens is None else int(reserve_tokens)
        require(tokens >= 0, "reserve_tokens must be non-negative")
        blocks = blocks_for_tokens(tokens, pool.block_size)
        # an infeasible grant must fail its caller now: queued, it would wedge
        # the FIFO head forever (PoolExhausted on every admit, even empty)
        require(
            blocks <= pool.num_blocks,
            f"reserve_tokens={tokens} needs {blocks} blocks but the pool "
            f"holds only {pool.num_blocks}",
        )
        return blocks

    def _grant_paged(
        self,
        plan: ExecutionPlan,
        hit: bool,
        horizon: int,
        *,
        retain_outputs: bool,
        pool: BlockPool,
        reserve_tokens: Optional[int],
    ) -> DecodeSession:
        """The admission capacity grant: prereserve blocks, build the session.

        The cache prereserves ``ceil(reserve_tokens / block_size)`` blocks up
        front (all-or-nothing), so admission is a real capacity grant — a
        racing stream cannot take the blocks between admission and prefill.
        Raises :exc:`~repro.serve.paging.PoolExhausted` untouched; callers
        decide between reject and queue.  Callers compile ``plan`` *before*
        taking the admission lock (an invalid mask must fail with no blocks
        held and no lock held, or repeated bad opens would leak the pool dry
        and serialize every other open behind the compile).
        """
        cache = PagedKVCache(pool, max_length=horizon)
        cache.prereserve(self._admission_blocks(pool, reserve_tokens))
        try:
            session = DecodeSession(
                plan,
                retain_outputs=retain_outputs,
                session_id=self.next_request_id(),
                cache=cache,
            )
        except Exception:
            cache.release()
            raise
        session.plan_cache_hit = hit
        with self.stats.lock:
            self.stats.decode_sessions += 1
            self.stats.paged_sessions += 1
        return session

    def open_decode_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        paged: bool = False,
        pool: Optional[BlockPool] = None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeSession:
        """Deprecated shim: use :meth:`repro.serve.client.ServingClient.open_session`.

        The unified client façade is the one public way to open sessions;
        this name survives one deprecation cycle for existing callers and
        simply delegates (with a :class:`DeprecationWarning`).
        """
        warnings.warn(
            "AttentionServer.open_decode_session is deprecated; open sessions "
            "through repro.serve.ServingClient (client.open_session / "
            "client.generate) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._open_decode_session(
            mask,
            horizon,
            retain_outputs=retain_outputs,
            paged=paged,
            pool=pool,
            reserve_tokens=reserve_tokens,
        )

    def _open_decode_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        paged: bool = False,
        pool: Optional[BlockPool] = None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeSession:
        """Open an autoregressive decoding stream against this server.

        The decode-mode plan (per-row stencil program) is fetched from — or
        compiled into — the shared :class:`~repro.serve.cache.PlanCache`, so
        concurrent sessions over one mask shape pay compilation once and can
        coalesce their steps in :meth:`decode_steps`.

        With ``paged=True`` (or an explicit ``pool``) the session's KV cache
        is a :class:`~repro.serve.paging.PagedKVCache` over the shared block
        pool — identical prompts map the same physical blocks.  Admission is
        a real capacity grant: blocks for ``reserve_tokens`` tokens (default:
        one block) are held by the session up front, or the session is
        *rejected* with :exc:`~repro.serve.paging.PoolExhausted`.  Use
        :meth:`_request_decode_session` (``ServingClient.request_session``)
        for queue-instead-of-reject admission.

        Reject-mode opens serialize with queue-mode admission under the
        server's admission lock, but they do not *wait behind* the FIFO
        queue: an open that fits is admitted even while tickets are queued
        (the two are different admission policies — mix them knowing
        reject-mode callers can take capacity ahead of queued tickets).
        """
        pool = pool if pool is not None else (self.block_pool if paged else None)
        # compile outside the admission lock: concurrent opens over distinct
        # masks pay compilation in parallel, and the lock is held only for
        # the capacity grant itself
        key = self.key_for(mask, horizon, mode="decode")
        plan, hit = self._plan_for_key(key, mask, horizon, "auto", mode="decode")
        if paged or pool is not None:
            require(
                pool is not None,
                "paged sessions need a shared pool: call create_block_pool first "
                "or pass pool=",
            )
            with self._admission_lock:
                try:
                    return self._grant_paged(
                        plan,
                        hit,
                        horizon,
                        retain_outputs=retain_outputs,
                        pool=pool,
                        reserve_tokens=reserve_tokens,
                    )
                except PoolExhausted:
                    # counted under the lock like the other admission stats
                    with self.stats.lock:
                        self.stats.admission_rejected += 1
                    if self.obs.enabled:
                        self.obs.server_rejections.inc()
                    raise
        session = DecodeSession(
            plan, retain_outputs=retain_outputs, session_id=self.next_request_id()
        )
        session.plan_cache_hit = hit
        with self.stats.lock:
            self.stats.decode_sessions += 1
        return session

    def request_decode_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        pool: Optional[BlockPool] = None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeTicket:
        """Deprecated shim: use :meth:`repro.serve.client.ServingClient.request_session`.

        Delegates to the internal queue-mode admission path with a
        :class:`DeprecationWarning`, exactly like :meth:`open_decode_session`.
        """
        warnings.warn(
            "AttentionServer.request_decode_session is deprecated; use "
            "repro.serve.ServingClient.request_session instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._request_decode_session(
            mask,
            horizon,
            retain_outputs=retain_outputs,
            pool=pool,
            reserve_tokens=reserve_tokens,
        )

    def _request_decode_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        pool: Optional[BlockPool] = None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeTicket:
        """Queue-mode admission: always returns a :class:`DecodeTicket`.

        When the pool has room the ticket comes back admitted (``session``
        set); otherwise it joins a FIFO queue that
        :meth:`close_decode_session` drains as finished sessions return their
        blocks.
        """
        pool = pool if pool is not None else self.block_pool
        require(pool is not None, "request_decode_session needs a shared block pool")
        # validate the reservation spec now: a bad ticket must fail its own
        # caller, not explode out of someone else's close_decode_session when
        # admit_queued finally pops it
        self._admission_blocks(pool, reserve_tokens)
        ticket = DecodeTicket(
            mask=mask,
            horizon=horizon,
            retain_outputs=retain_outputs,
            pool=pool,
            reserve_tokens=reserve_tokens,
        )
        # compile outside the admission lock: an invalid mask fails here,
        # before the ticket queues, and the ticket carries its compiled plan
        # so admitting it later is a pure capacity grant
        key = self.key_for(mask, horizon, mode="decode")
        plan, hit = self._plan_for_key(key, mask, horizon, "auto", mode="decode")
        ticket.plan, ticket.plan_cache_hit = plan, hit
        with self._admission_lock:
            # drain first: capacity freed by a direct session.close() (not
            # through close_decode_session) would otherwise strand the queue
            # head forever while this request queued behind it
            self._admit_queued_locked()
            # FIFO is per pool: only a waiting ticket for *this* pool forces
            # the new request behind it
            if not any(t.pool is pool for t in self._admission_queue):
                try:
                    ticket.session = self._grant_paged(
                        plan,
                        hit,
                        horizon,
                        retain_outputs=retain_outputs,
                        pool=pool,
                        reserve_tokens=reserve_tokens,
                    )
                    return ticket
                except PoolExhausted:
                    pass
            self._admission_queue.append(ticket)
            with self.stats.lock:
                self.stats.admission_queued += 1
            return ticket

    @property
    def queued_sessions(self) -> int:
        """Tickets waiting for admission."""
        with self._admission_lock:
            return len(self._admission_queue)

    def admit_queued(self) -> List[DecodeTicket]:
        """Admit queued tickets FIFO-per-pool while their pools have room.

        Within each pool, the first ticket that does not fit blocks the ones
        behind it (head-of-line order keeps admission fair); tickets bound
        for *other* pools keep draining, so one exhausted pool cannot starve
        the rest.  Returns the tickets admitted now.
        """
        with self._admission_lock:
            return self._admit_queued_locked()

    def _admit_queued_locked(self) -> List[DecodeTicket]:
        admitted: List[DecodeTicket] = []
        exhausted: Set[BlockPool] = set()  # pools whose head ticket did not fit
        kept: List[DecodeTicket] = []
        try:
            while self._admission_queue:
                # pop before opening: a ticket whose spec turns out invalid is
                # dropped as its error propagates, not left poisoning the head
                ticket = self._admission_queue.popleft()
                if ticket.pool in exhausted:
                    kept.append(ticket)  # FIFO holds behind its pool's head
                    continue
                try:
                    ticket.session = self._grant_paged(
                        ticket.plan,
                        ticket.plan_cache_hit,
                        ticket.horizon,
                        retain_outputs=ticket.retain_outputs,
                        pool=ticket.pool,
                        reserve_tokens=ticket.reserve_tokens,
                    )
                except PoolExhausted:
                    exhausted.add(ticket.pool)
                    kept.append(ticket)
                    continue
                with self.stats.lock:
                    self.stats.admission_admitted += 1
                admitted.append(ticket)
        finally:
            # waiting tickets return to the head in arrival order — also when
            # an invalid ticket's error propagates mid-drain
            self._admission_queue.extendleft(reversed(kept))
        return admitted

    def close_decode_session(self, session: DecodeSession) -> List[DecodeTicket]:
        """Finish a stream: release its blocks, then admit queued tickets.

        A paged session's prefix-registered blocks park in the pool's
        evictable LRU (the prompt stays warm for the next identical prompt);
        the freed capacity admits as many queued tickets as now fit, FIFO.
        """
        already_closed = session.closed
        session.close()
        if not already_closed:
            with self.stats.lock:
                self.stats.sessions_closed += 1
        return self.admit_queued()

    def decode_step(
        self, session: DecodeSession, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> AttentionResponse:
        """Serve one decode step for one session."""
        return self.decode_steps([(session, q, k, v)])[0]

    def prefill_chunks(
        self,
        chunks: Sequence[Tuple[DecodeSession, np.ndarray, np.ndarray, np.ndarray]],
    ) -> List[AttentionResponse]:
        """Serve one prompt chunk per ``(session, q, k, v)`` entry.

        The chunked-prefill twin of :meth:`decode_steps`: chunks whose
        sessions share one plan, sit at the same position and carry
        identically-shaped ``batch_shape + (P, d)`` tensors fuse into a
        single stacked kernel pass
        (:func:`~repro.serve.decode.stacked_prefill`); ragged chunks execute
        as singleton groups.  Responses follow the input order; a session may
        appear at most once per call.
        """
        chunks = list(chunks)
        if not chunks:
            return []
        started = time.perf_counter()
        seen_sessions = set()
        groups: "Dict[Tuple, List[int]]" = {}
        for index, (session, q, k, v) in enumerate(chunks):
            require(
                id(session) not in seen_sessions,
                "a session may appear at most once per prefill_chunks call",
            )
            seen_sessions.add(id(session))
            group_key = (
                session.plan.key or id(session.plan),
                session.position,
                np.shape(q),
                np.shape(v),
                np.asarray(q).dtype.str,
                np.asarray(k).dtype.str,
                np.asarray(v).dtype.str,
            )
            groups.setdefault(group_key, []).append(index)

        responses: List[Optional[AttentionResponse]] = [None] * len(chunks)
        tokens = 0
        for indices in groups.values():
            group_started = time.perf_counter()
            sessions = [chunks[i][0] for i in indices]
            results = stacked_prefill(
                sessions,
                [chunks[i][1] for i in indices],
                [chunks[i][2] for i in indices],
                [chunks[i][3] for i in indices],
            )
            latency = (time.perf_counter() - group_started) / len(indices)
            if len(indices) > 1:
                with self.stats.lock:
                    self.stats.prefill_stacked_executions += 1
                    self.stats.prefill_coalesced_chunks += len(indices)
            if self.obs.enabled:
                plan_key = sessions[0].plan.key or "adhoc"
                kernel = self.obs.kernel_seconds.labels(plan=plan_key, phase="prefill")
                for _ in indices:
                    kernel.observe(latency)
            for index, session, result in zip(indices, sessions, results):
                start, stop = result.meta["positions"]
                tokens += stop - start
                responses[index] = AttentionResponse(
                    request_id=self.next_request_id(),
                    result=result,
                    plan_key=session.plan.key,
                    cache_hit=session.plan_cache_hit,
                    latency_s=latency,
                )

        with self.stats.lock:
            self.stats.prefill_chunks += len(chunks)
            self.stats.prefill_tokens += tokens
            self.stats.prefill_wall_seconds += time.perf_counter() - started
        if self.obs.enabled:
            self.obs.server_requests.labels(phase="prefill").inc(len(chunks))
        return responses

    def decode_steps(
        self,
        steps: Sequence[Tuple[DecodeSession, np.ndarray, np.ndarray, np.ndarray]],
    ) -> List[AttentionResponse]:
        """Serve one decode step per ``(session, q, k, v)`` entry.

        Continuous batching: steps whose sessions share one plan, sit at the
        same position and carry identically-shaped tensors are fused into a
        single stacked kernel pass (:func:`~repro.serve.decode.stacked_decode_step`);
        ragged steps execute as singleton groups.  Responses follow the input
        order.  A session may appear at most once per call — its position
        advances with every step, so two steps for one stream are inherently
        sequential.
        """
        steps = list(steps)
        if not steps:
            return []
        started = time.perf_counter()
        seen_sessions = set()
        groups: "Dict[Tuple, List[int]]" = {}
        for index, (session, q, k, v) in enumerate(steps):
            require(
                id(session) not in seen_sessions,
                "a session may appear at most once per decode_steps call",
            )
            seen_sessions.add(id(session))
            group_key = (
                session.plan.key or id(session.plan),
                session.position,
                np.shape(q),
                np.shape(v),
                np.asarray(q).dtype.str,
                np.asarray(k).dtype.str,
                np.asarray(v).dtype.str,
            )
            groups.setdefault(group_key, []).append(index)

        responses: List[Optional[AttentionResponse]] = [None] * len(steps)
        for indices in groups.values():
            group_started = time.perf_counter()
            sessions = [steps[i][0] for i in indices]
            results = stacked_decode_step(
                sessions,
                [steps[i][1] for i in indices],
                [steps[i][2] for i in indices],
                [steps[i][3] for i in indices],
            )
            latency = (time.perf_counter() - group_started) / len(indices)
            if len(indices) > 1:
                with self.stats.lock:
                    self.stats.decode_stacked_executions += 1
                    self.stats.decode_coalesced_steps += len(indices)
            if self.obs.enabled:
                plan_key = sessions[0].plan.key or "adhoc"
                kernel = self.obs.kernel_seconds.labels(plan=plan_key, phase="decode")
                for _ in indices:
                    kernel.observe(latency)
            for index, session, result in zip(indices, sessions, results):
                responses[index] = AttentionResponse(
                    request_id=self.next_request_id(),
                    result=result,
                    plan_key=session.plan.key,
                    cache_hit=session.plan_cache_hit,
                    latency_s=latency,
                )

        with self.stats.lock:
            self.stats.decode_steps += len(steps)
            self.stats.decode_wall_seconds += time.perf_counter() - started
        if self.obs.enabled:
            self.obs.server_requests.labels(phase="decode").inc(len(steps))
        return responses

    def speculate_steps(
        self,
        steps: Sequence[Tuple[DecodeSession, np.ndarray, np.ndarray, np.ndarray]],
        *,
        draft_fraction: float = DEFAULT_DRAFT_FRACTION,
    ) -> List[Optional[SpeculationOutcome]]:
        """Serve one draft-and-verify pass per ``(session, q, k, v)`` entry.

        The multi-token twin of :meth:`decode_steps`: ``q``/``k``/``v`` carry
        ``batch_shape + (k, d)`` stacks of the next ``k`` candidate tokens,
        and entries whose sessions share one plan, position and tensor shape
        fuse into one :func:`~repro.serve.speculate.speculative_decode_steps`
        group.  Outcomes follow the input order; emitted outputs are
        bit-exact equal to what ``k`` sequential one-token steps would have
        produced (``None`` marks a session closed concurrently inside the
        append window).
        """
        steps = list(steps)
        if not steps:
            return []
        started = time.perf_counter()
        seen_sessions = set()
        groups: "Dict[Tuple, List[int]]" = {}
        for index, (session, q, k, v) in enumerate(steps):
            require(
                id(session) not in seen_sessions,
                "a session may appear at most once per speculate_steps call",
            )
            seen_sessions.add(id(session))
            group_key = (
                session.plan.key or id(session.plan),
                session.position,
                np.shape(q),
                np.shape(v),
                np.asarray(q).dtype.str,
                np.asarray(k).dtype.str,
                np.asarray(v).dtype.str,
            )
            groups.setdefault(group_key, []).append(index)

        outcomes: List[Optional[SpeculationOutcome]] = [None] * len(steps)
        drafted = accepted = rolled_back = fallbacks = 0
        for indices in groups.values():
            group_started = time.perf_counter()
            sessions = [steps[i][0] for i in indices]
            group_outcomes = speculative_decode_steps(
                sessions,
                [steps[i][1] for i in indices],
                [steps[i][2] for i in indices],
                [steps[i][3] for i in indices],
                draft_fraction=draft_fraction,
            )
            latency = (time.perf_counter() - group_started) / len(indices)
            if self.obs.enabled:
                plan_key = sessions[0].plan.key or "adhoc"
                kernel = self.obs.kernel_seconds.labels(plan=plan_key, phase="speculate")
                for _ in indices:
                    kernel.observe(latency)
            for index, outcome in zip(indices, group_outcomes):
                outcomes[index] = outcome
                if outcome is None:
                    continue
                drafted += outcome.drafted
                accepted += outcome.accepted
                rolled_back += outcome.rolled_back
                fallbacks += int(outcome.fallback)
                if self.obs.enabled:
                    self.obs.speculate_accept_rate.observe(outcome.accept_rate)

        with self.stats.lock:
            self.stats.speculate_passes += len(steps)
            self.stats.speculate_drafted += drafted
            self.stats.speculate_accepted += accepted
            self.stats.speculate_rolled_back += rolled_back
            self.stats.speculate_fallbacks += fallbacks
            self.stats.speculate_wall_seconds += time.perf_counter() - started
        if self.obs.enabled:
            self.obs.server_requests.labels(phase="speculate").inc(len(steps))
            self.obs.speculate_drafted.inc(drafted)
            self.obs.speculate_accepted.inc(accepted)
            self.obs.speculate_rolled_back.inc(rolled_back)
            self.obs.speculate_fallbacks.inc(fallbacks)
        return outcomes

    def _process(self, requests: List[AttentionRequest]) -> List[AttentionResponse]:
        if not requests:
            return []
        started = time.perf_counter()

        batches: "Dict[str, RequestBatch]" = {}
        groups: "Dict[Tuple, ExecutionGroup]" = {}
        # key derivation coerces and content-hashes materialised masks, so
        # requests sharing one mask object (the common repeated-traffic shape)
        # do that once, and the coerced spec is reused for compilation too
        key_memo: Dict[Tuple[int, int, str], Tuple[str, MaskInput]] = {}
        for index, request in enumerate(requests):
            memo = (id(request.mask), request.length, request.algorithm)
            entry = key_memo.get(memo)
            if entry is None:
                mask = request.mask
                if isinstance(mask, (np.ndarray, COOMatrix, CSRMatrix)):
                    mask = as_mask_spec(mask)
                key = self.key_for(mask, request.length, algorithm=request.algorithm)
                entry = key_memo[memo] = (key, mask)
            key, mask = entry
            batch = batches.get(key)
            if batch is None:
                plan, hit = self._plan_for_key(key, mask, request.length, request.algorithm)
                batch = batches[key] = RequestBatch(plan=plan, cache_hit=hit)
            batch.requests.append(request)
            # requests coalesce only when every tensor matches in shape and
            # dtype — ragged requests form singleton groups
            group_key = (
                key,
                request.q.shape,
                request.v.shape,
                request.q.dtype.str,
                request.k.dtype.str,
                request.v.dtype.str,
            )
            group = groups.get(group_key)
            if group is None:
                group = groups[group_key] = ExecutionGroup(batch=batch)
            group.positions.append(index)
            group.requests.append(request)

        # coalescing stats are counted here, on the intake thread — the group
        # executors may run on pool workers, where unsynchronised increments
        # of the shared counters would race
        with self.stats.lock:
            for group in groups.values():
                if group.size > 1:
                    self.stats.stacked_executions += 1
                    self.stats.coalesced_requests += group.size

        ordered = self._execute_groups(list(groups.values()))
        responses = [response for _, response in sorted(ordered, key=lambda pair: pair[0])]

        with self.stats.lock:
            self.stats.requests += len(requests)
            self.stats.batches += len(batches)
            self.stats.flushes += 1
            self.stats.wall_seconds += time.perf_counter() - started
            self.stats.kernel_seconds += sum(r.latency_s for r in responses)
        if self.obs.enabled:
            self.obs.server_requests.labels(phase="oneshot").inc(len(requests))
        return responses

    # ------------------------------------------------------------------ #
    def _execute_groups(
        self, groups: Sequence[ExecutionGroup]
    ) -> List[Tuple[int, AttentionResponse]]:
        workers = self.max_workers or 1
        workers = min(workers, len(groups))
        if workers <= 1:
            return [pair for group in groups for pair in self._execute_group(group)]
        loads = np.asarray(
            [max(group.batch.plan.nnz, 1) * group.size for group in groups],
            dtype=np.int64,
        )
        bins = balanced_worker_bins(loads, workers)

        def _run_bin(indices: np.ndarray) -> List[Tuple[int, AttentionResponse]]:
            return [pair for i in indices for pair in self._execute_group(groups[i])]

        if self._pool is None:  # lazily created, reused across flushes
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        chunks = list(self._pool.map(_run_bin, [b for b in bins if b.size]))
        return [pair for chunk in chunks for pair in chunk]

    def _execute_group(self, group: ExecutionGroup) -> List[Tuple[int, AttentionResponse]]:
        if group.size == 1:
            return [(group.positions[0], self._execute_one(group.requests[0], group.batch))]
        started = time.perf_counter()
        stacked_q = np.stack([request.q for request in group.requests])
        stacked_k = np.stack([request.k for request in group.requests])
        stacked_v = np.stack([request.v for request in group.requests])
        result = group.batch.plan.execute(stacked_q, stacked_k, stacked_v)
        latency = time.perf_counter() - started
        per_request = latency / group.size
        if self.obs.enabled:
            plan_key = group.batch.plan.key or "adhoc"
            kernel = self.obs.kernel_seconds.labels(plan=plan_key, phase="oneshot")
            for _ in range(group.size):
                kernel.observe(per_request)
        responses: List[Tuple[int, AttentionResponse]] = []
        for offset, (position, request) in enumerate(zip(group.positions, group.requests)):
            sliced = result.slice_batch(offset)
            sliced.meta["coalesced"] = group.size
            responses.append(
                (
                    position,
                    AttentionResponse(
                        request_id=request.request_id,
                        result=sliced,
                        plan_key=group.batch.plan.key,
                        cache_hit=group.batch.cache_hit,
                        latency_s=per_request,
                    ),
                )
            )
        return responses

    def close(self) -> None:
        """Release the worker pool (the server stays usable; it re-creates one).

        Idempotent; also invoked by the context-manager exit and, as a last
        resort, by :meth:`__del__` — a lazily created pool must not outlive
        the server, since its worker threads would otherwise leak until
        interpreter shutdown.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "AttentionServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing is interpreter-specific
        try:
            self.close()
        except Exception:
            pass  # never raise during garbage collection

    def _execute_one(
        self, request: AttentionRequest, batch: RequestBatch
    ) -> AttentionResponse:
        started = time.perf_counter()
        result = batch.plan.execute(request.q, request.k, request.v)
        latency = time.perf_counter() - started
        if self.obs.enabled:
            self.obs.kernel_seconds.labels(
                plan=batch.plan.key or "adhoc", phase="oneshot"
            ).observe(latency)
        return AttentionResponse(
            request_id=request.request_id,
            result=result,
            plan_key=batch.plan.key,
            cache_hit=batch.cache_hit,
            latency_s=latency,
        )
