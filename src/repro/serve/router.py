"""Multi-replica serving: prefix-affinity routing over scheduler replicas.

One :class:`~repro.serve.loop.ContinuousBatchingScheduler` owns one block
pool, so a single process caps out at one pool's worth of streams.  This
module is the placement layer above that ceiling: a :class:`ReplicaRouter`
fronts N worker replicas — each a private
:class:`~repro.serve.scheduler.AttentionServer` + paged
:class:`~repro.serve.paging.BlockPool` + scheduler + swap store — and decides
*where* every stream runs while the replicas decide *when*.

Routing is prefix-affine: the router computes the prompt's chained block
fingerprints with :func:`~repro.serve.paging.prefix_fingerprints` (the exact
chain any replica's pool registers while prefilling those rows) and sends a
request whose deepest fingerprint is already mapped to the replica that holds
those warm blocks, so shared prompts pay their prefill once per replica
instead of once per stream.  When no prefix matches, the fallback is
load-based: least-loaded by default, or Kaczmarz-flavoured norm-weighted
sampling (probability inversely proportional to current load — the same
motif as :class:`~repro.serve.loop.WeightedFairPolicy`), or plain
round-robin.

Two more `repro.distributed` wires complete the layer:

* **Rebalancing** — under skewed load (one hot prefix family pinning one
  replica), the router withdraws still-waiting streams via
  :meth:`~repro.serve.loop.ContinuousBatchingScheduler.withdraw` and
  re-places them along :func:`~repro.distributed.balanced_worker_bins`
  (greedy LPT over pending-token costs), pairing the heaviest bin with the
  lightest replica.  Moving a stream that never ran cannot change its
  output, so rebalancing preserves bit-exactness by construction.
* **Sharded execution** — a single request too large for any one replica's
  pool runs through :func:`~repro.distributed.kv_parallel_attention` on a
  :class:`~repro.distributed.SimulatedWorld` spanning the replicas: K/V rows
  scatter, Q broadcasts, and per-replica partial online-softmax states merge
  at the root.  Communication volume lands in :attr:`ReplicaRouter.comm_stats`.

Determinism: all replicas share one injected clock, ticked once per router
step (replicas run "concurrently" in virtual time), and each replica's
scheduler is fully deterministic given its policy seed.  ``threaded=True``
steps replicas on a thread pool — outputs are unchanged because replicas
share no mutable state beyond the thread-safe metrics registry.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.comm import CommunicationStats, SimulatedWorld
from repro.distributed.partition_balance import balanced_worker_bins
from repro.distributed.sequence_parallel import kv_parallel_attention
from repro.obs.recorder import NULL_OBS, Observability
from repro.perfmodel.decode import blocks_for_tokens
from repro.perfmodel.devices import DeviceSpec
from repro.serve.decode import decode_reference_mask
from repro.serve.loop import (
    ContinuousBatchingScheduler,
    InfeasibleRequest,
    IterationReport,
    LoopRequest,
    LoopStatsSnapshot,
    RequestTelemetry,
    resolve_serving_kwargs,
    scheduling_policy,
)
from repro.serve.paging import DEFAULT_BLOCK_SIZE, SwapStore, prefix_fingerprints
from repro.serve.quant import resolve_storage
from repro.serve.scheduler import AttentionServer
from repro.utils.dtypes import resolve_dtype
from repro.utils.validation import require

#: Routing policies: ``affinity`` (prefix hit, else least-loaded),
#: ``weighted`` (prefix hit, else norm-weighted sampling by inverse load),
#: ``round_robin`` (ignore prefixes — the affinity-off baseline).
ROUTER_POLICIES = ("affinity", "weighted", "round_robin")

#: Fingerprint -> replica entries the affinity map retains (LRU).
DEFAULT_AFFINITY_CAPACITY = 4096


class _ReplicaClock:
    """A replica's view of the shared clock: reads pass through, ticks don't.

    Every replica scheduler calls ``clock.tick()`` at the end of its own
    ``step()``; with N replicas sharing one :class:`VirtualClock` that would
    advance N iteration-seconds per router step.  Replicas run concurrently,
    so the router ticks the base clock exactly once per step and the
    replicas' ticks are swallowed here.
    """

    def __init__(self, base) -> None:
        self._base = base

    def now(self) -> float:
        return self._base.now()

    def tick(self) -> None:  # the router owns the real tick
        return None


@dataclass
class ReplicaHandle:
    """One worker replica: its server, scheduler and swap store."""

    index: int
    server: AttentionServer
    scheduler: ContinuousBatchingScheduler
    swap_store: SwapStore

    @property
    def pool(self):
        return self.server.block_pool

    @property
    def active(self) -> int:
        return self.scheduler.active


@dataclass
class RouterStats:
    """Lifetime counters of one router (placement decisions, not tokens)."""

    routed: int = 0
    route_hits: int = 0
    route_misses: int = 0
    sharded_requests: int = 0
    rebalance_passes: int = 0
    moved_streams: int = 0
    cancelled: int = 0

    @property
    def route_hit_rate(self) -> float:
        decisions = self.route_hits + self.route_misses
        return self.route_hits / decisions if decisions else 0.0


@dataclass(frozen=True)
class RebalanceRecord:
    """What one rebalance pass saw and decided (for telemetry cross-checks).

    ``bins`` is the raw :func:`~repro.distributed.balanced_worker_bins`
    output over ``costs``; ``replica_order`` maps bin rank (heaviest first)
    to the replica it was assigned (lightest base load first).
    """

    loads: np.ndarray
    costs: np.ndarray
    bins: Tuple[np.ndarray, ...]
    replica_order: Tuple[int, ...]
    moved: int


@dataclass
class RouterReport:
    """What one :meth:`ReplicaRouter.step` accomplished, in router ids."""

    step: int
    admitted: List[int] = field(default_factory=list)
    finished: List[int] = field(default_factory=list)
    preempted: List[int] = field(default_factory=list)
    tokens: int = 0
    moved: int = 0
    replica_reports: List[IterationReport] = field(default_factory=list)


@dataclass
class _Placement:
    """Router-private record of where one stream lives."""

    replica: int
    local_id: Optional[int]
    fingerprints: List[str]
    sharded: bool = False


def aggregate_loop_stats(snapshots: Sequence[LoopStatsSnapshot]) -> LoopStatsSnapshot:
    """Sum per-replica loop snapshots into one cluster-wide snapshot.

    Counters add; ``iteration_log`` concatenates in replica order.  The
    result is what the router-level invariants (registry == summed stats)
    and the aggregate-throughput bench compare against.
    """
    require(len(snapshots) >= 1, "need at least one snapshot to aggregate")
    totals: Dict[str, object] = {}
    for spec in fields(LoopStatsSnapshot):
        if spec.name == "iteration_log":
            totals[spec.name] = tuple(
                entry for snap in snapshots for entry in snap.iteration_log
            )
        else:
            totals[spec.name] = sum(getattr(snap, spec.name) for snap in snapshots)
    return LoopStatsSnapshot(**totals)


class ReplicaRouter:
    """Fan streams out to N scheduler replicas by prompt-prefix affinity.

    Parameters
    ----------
    num_replicas:
        Worker replicas to build.  Each gets a private server, pool (sized
        ``num_blocks`` *per replica*) and swap store.
    key_dim, value_dim, num_blocks, block_size, batch_shape, pool_dtype,
    storage:
        Per-replica block-pool geometry (same meaning as
        :meth:`AttentionServer.create_block_pool`).
    policy, policy_seed:
        Scheduling policy *name* for the replica loops; replica ``i`` seeds
        its policy at ``policy_seed + i`` so weighted sampling streams stay
        independent (instances cannot be shared across replicas).
    router_policy, router_seed:
        Placement policy (see :data:`ROUTER_POLICIES`) and the seed of the
        weighted fallback's generator.
    clock, obs:
        Shared clock (ticked once per router step) and observability
        recorder, threaded through every replica.
    max_streams, prefill_chunk, max_iteration_tokens, preemption, device:
        Forwarded to each replica's scheduler.
    rebalance_interval:
        Run :meth:`rebalance` every this many steps (0 disables the
        automatic trigger; manual calls always work).
    rebalance_threshold:
        Skew trigger: rebalance only when the max replica's pending tokens
        exceed this multiple of the mean.
    shard_oversized:
        When a 2-D prompt-only request cannot fit one replica's pool, run it
        sharded across all replicas via :func:`kv_parallel_attention`
        instead of raising :class:`InfeasibleRequest`.
    threaded:
        Step replicas concurrently on a thread pool (outputs unchanged).
    """

    def __init__(
        self,
        num_replicas: int,
        *,
        key_dim: int,
        value_dim: Optional[int] = None,
        num_blocks: int = 64,
        block_size: int = DEFAULT_BLOCK_SIZE,
        batch_shape: Tuple[int, ...] = (),
        pool_dtype=np.float32,
        storage: Optional[str] = None,
        policy: str = "fcfs",
        policy_seed: int = 0,
        router_policy: str = "affinity",
        router_seed: int = 0,
        clock=None,
        obs: Optional[Observability] = None,
        max_streams: int = 8,
        prefill_chunk: int = 32,
        max_iteration_tokens: Optional[int] = None,
        preemption: str = "auto",
        device: Optional[DeviceSpec] = None,
        rebalance_interval: int = 8,
        rebalance_threshold: float = 1.5,
        shard_oversized: bool = True,
        threaded: bool = False,
        affinity_capacity: int = DEFAULT_AFFINITY_CAPACITY,
        name: str = "router",
    ) -> None:
        require(num_replicas >= 1, "need at least one replica")
        require(
            router_policy in ROUTER_POLICIES,
            f"unknown router policy {router_policy!r}; valid: {ROUTER_POLICIES}",
        )
        require(
            isinstance(policy, str),
            "the router builds one policy instance per replica; pass a "
            "registry name, not an instance",
        )
        require(rebalance_interval >= 0, "rebalance_interval must be >= 0")
        require(rebalance_threshold >= 1.0, "rebalance_threshold must be >= 1.0")
        self.num_replicas = int(num_replicas)
        self.name = name
        _, self.clock, self.obs = resolve_serving_kwargs(clock=clock, obs=obs)
        self.block_size = int(block_size)
        self.pool_blocks_per_replica = int(num_blocks)
        self.pool_dtype = resolve_dtype(pool_dtype)
        self.storage = resolve_storage(storage, self.pool_dtype)
        self.router_policy = router_policy
        self.rebalance_interval = int(rebalance_interval)
        self.rebalance_threshold = float(rebalance_threshold)
        self.shard_oversized = bool(shard_oversized)
        self._rng = np.random.default_rng(router_seed)
        self._round_robin = 0

        replica_clock = _ReplicaClock(self.clock)
        self.replicas: List[ReplicaHandle] = []
        for index in range(self.num_replicas):
            server = AttentionServer(obs=self.obs, device=device)
            server.create_block_pool(
                key_dim=key_dim,
                value_dim=value_dim,
                batch_shape=batch_shape,
                dtype=pool_dtype,
                storage=self.storage,
                num_blocks=num_blocks,
                block_size=block_size,
                name=f"{name}-replica{index}",
            )
            swap_store = SwapStore()
            scheduler = ContinuousBatchingScheduler(
                server,
                policy=scheduling_policy(policy, seed=policy_seed + index),
                clock=replica_clock,
                max_streams=max_streams,
                prefill_chunk=prefill_chunk,
                max_iteration_tokens=max_iteration_tokens,
                preemption=preemption,
                swap_store=swap_store,
                device=device,
                obs=self.obs,
            )
            self.replicas.append(
                ReplicaHandle(
                    index=index, server=server, scheduler=scheduler, swap_store=swap_store
                )
            )

        self.stats = RouterStats()
        self.comm_stats = CommunicationStats()
        self.last_rebalance: Optional[RebalanceRecord] = None
        self.results: Dict[int, np.ndarray] = {}
        self.telemetry: Dict[int, RequestTelemetry] = {}
        self._rid = itertools.count(1)
        self._placements: Dict[int, _Placement] = {}
        self._local_to_global: List[Dict[int, int]] = [
            {} for _ in range(self.num_replicas)
        ]
        self._affinity: "OrderedDict[str, int]" = OrderedDict()
        self._affinity_capacity = int(affinity_capacity)
        self._steps = 0
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=self.num_replicas, thread_name_prefix=f"{name}-replica"
            )
            if threaded and self.num_replicas > 1
            else None
        )
        if self.obs.enabled:
            self._obs_hit = self.obs.router_routes.labels(outcome="hit")
            self._obs_miss = self.obs.router_routes.labels(outcome="miss")
            self._obs_sharded = self.obs.router_routes.labels(outcome="sharded")

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #
    def submit(self, request: LoopRequest) -> int:
        """Place one stream on a replica (or shard it); returns the router id.

        Router ids are globally monotonic and distinct from the per-replica
        request ids each scheduler assigns; :attr:`results` and
        :attr:`telemetry` are keyed by router id.
        """
        require(
            request.request_id is None,
            "the router assigns request ids at submit; leave request_id unset",
        )
        needed = blocks_for_tokens(request.total_tokens, self.block_size)
        if needed > self.pool_blocks_per_replica:
            if (
                self.shard_oversized
                and request.batch_shape == ()
                and request.decode_tokens == 0
                and request.speculate_k == 0
            ):
                return self._submit_sharded(request)
            raise InfeasibleRequest(
                f"stream of {request.total_tokens} tokens needs {needed} KV "
                f"blocks but each replica pool holds only "
                f"{self.pool_blocks_per_replica} blocks of {self.block_size} "
                f"tokens (sharded execution covers 2-D prompt-only requests)"
            )
        prompt = request.prompt_tokens
        fingerprints = prefix_fingerprints(
            request.k[..., :prompt, :],
            request.v[..., :prompt, :],
            block_size=self.block_size,
            storage=self.storage,
            dtype=self.pool_dtype,
        )
        replica_index, hit = self._route(fingerprints)
        replica = self.replicas[replica_index]
        local_id = replica.scheduler.submit(request)
        rid = next(self._rid)
        self._placements[rid] = _Placement(
            replica=replica_index, local_id=local_id, fingerprints=fingerprints
        )
        self._local_to_global[replica_index][local_id] = rid
        self.telemetry[rid] = replica.scheduler.telemetry[local_id]
        self._remember(fingerprints, replica_index)
        self.stats.routed += 1
        if hit:
            self.stats.route_hits += 1
        else:
            self.stats.route_misses += 1
        if self.obs.enabled:
            (self._obs_hit if hit else self._obs_miss).inc()
            self._update_replica_gauges()
        return rid

    def submit_many(self, requests: Sequence[LoopRequest]) -> List[int]:
        return [self.submit(request) for request in requests]

    def _route(self, fingerprints: Sequence[str]) -> Tuple[int, bool]:
        """Pick a replica: deepest warm prefix wins, else the fallback policy."""
        if self.router_policy != "round_robin":
            for fingerprint in reversed(fingerprints):
                replica = self._affinity.get(fingerprint)
                if replica is not None:
                    self._affinity.move_to_end(fingerprint)
                    return replica, True
        if self.router_policy == "round_robin":
            index = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.num_replicas
            return index, False
        loads = np.array(
            [handle.scheduler.active for handle in self.replicas], dtype=np.float64
        )
        if self.router_policy == "weighted":
            # norm-weighted sampling, the Kaczmarz motif: a replica's pick
            # probability is inversely proportional to its current load
            weights = 1.0 / (1.0 + loads)
            index = int(self._rng.choice(self.num_replicas, p=weights / weights.sum()))
            return index, False
        return int(np.lexsort((np.arange(self.num_replicas), loads))[0]), False

    def _remember(self, fingerprints: Sequence[str], replica: int) -> None:
        for fingerprint in fingerprints:
            self._affinity[fingerprint] = replica
            self._affinity.move_to_end(fingerprint)
        while len(self._affinity) > self._affinity_capacity:
            self._affinity.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Sharded execution of oversized requests
    # ------------------------------------------------------------------ #
    def _submit_sharded(self, request: LoopRequest) -> int:
        """Run one oversized prompt across all replicas, synchronously.

        The context is what exceeds a single pool, so the context is what
        shards: K/V rows scatter over a :class:`SimulatedWorld` spanning the
        replicas and the per-replica partial online-softmax states merge at
        the router.  The finished output lands in :attr:`results`
        immediately (equal to the one-shot kernel up to float
        reassociation — sharded requests are the one path that is *not*
        bit-identical to a single-replica run, and the differential suite
        checks it at float tolerance instead).
        """
        rid = next(self._rid)
        length = request.total_tokens
        world = SimulatedWorld(self.num_replicas)
        result = kv_parallel_attention(
            request.q,
            request.k,
            request.v,
            decode_reference_mask(request.mask, length),
            num_ranks=self.num_replicas,
            world=world,
        )
        now = self.clock.now()
        telemetry = RequestTelemetry(
            request_id=rid,
            priority=request.priority,
            prompt_tokens=request.prompt_tokens,
            total_tokens=length,
            arrival_time=now,
            tenant=request.tenant,
        )
        telemetry.first_scheduled_time = now
        telemetry.first_token_time = now
        telemetry.finish_time = now
        telemetry.tokens_emitted = length
        self.results[rid] = result.output
        self.telemetry[rid] = telemetry
        self._placements[rid] = _Placement(
            replica=-1, local_id=None, fingerprints=[], sharded=True
        )
        self.stats.sharded_requests += 1
        self.comm_stats = self.comm_stats.merge(world.stats)
        obs = self.obs
        if obs.enabled:
            self._obs_sharded.inc()
            obs.router_comm_bytes.inc(world.stats.bytes_moved)
            if obs.trace is not None:
                obs.trace.event(
                    "sharded",
                    now,
                    request_id=rid,
                    tokens=length,
                    ranks=self.num_replicas,
                    bytes_moved=world.stats.bytes_moved,
                )
        return rid

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self) -> RouterReport:
        """Advance every busy replica one iteration (concurrently in virtual
        time); harvest finished outputs; tick the shared clock once."""
        self._steps += 1
        report = RouterReport(step=self._steps)
        if self.rebalance_interval and self._steps % self.rebalance_interval == 0:
            report.moved = self.rebalance()
        busy = [handle for handle in self.replicas if handle.scheduler.active]
        if self._executor is not None and len(busy) > 1:
            replica_reports = list(
                self._executor.map(lambda handle: handle.scheduler.step(), busy)
            )
        else:
            replica_reports = [handle.scheduler.step() for handle in busy]
        for handle, replica_report in zip(busy, replica_reports):
            mapping = self._local_to_global[handle.index]
            report.replica_reports.append(replica_report)
            report.tokens += replica_report.tokens
            report.admitted.extend(mapping[lid] for lid in replica_report.admitted)
            report.finished.extend(mapping[lid] for lid in replica_report.finished)
            report.preempted.extend(mapping[lid] for lid in replica_report.preempted)
        self._harvest()
        self.clock.tick()
        if self.obs.enabled:
            self._update_replica_gauges()
        return report

    def run(self, *, max_iterations: Optional[int] = None) -> Dict[int, np.ndarray]:
        """Step until every placed stream finishes; returns :attr:`results`."""
        stalled = 0
        while self.active:
            if max_iterations is not None and self._steps >= max_iterations:
                raise RuntimeError(
                    f"router exceeded {max_iterations} steps with "
                    f"{self.active} streams still active"
                )
            report = self.step()
            if report.tokens == 0 and not report.admitted and not report.finished:
                stalled += 1
                require(
                    stalled < 3, "router stalled: no admission, tokens, or finishes"
                )
            else:
                stalled = 0
        return self.results

    def _harvest(self) -> None:
        for handle in self.replicas:
            if not handle.scheduler.results:
                continue
            mapping = self._local_to_global[handle.index]
            for local_id in list(handle.scheduler.results):
                self.results[mapping[local_id]] = handle.scheduler.results.pop(local_id)

    def cancel(self, rid: int) -> bool:
        """Cancel a routed stream mid-flight (router-id flavoured)."""
        placement = self._placements.get(rid)
        if placement is None or placement.sharded or rid in self.results:
            return False
        cancelled = self.replicas[placement.replica].scheduler.cancel(placement.local_id)
        if cancelled:
            self.stats.cancelled += 1
        return cancelled

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #
    def rebalance(self) -> int:
        """Re-place still-waiting streams when replica loads skew; returns moves.

        Only streams :meth:`ContinuousBatchingScheduler.withdraw` accepts —
        waiting, never activated, nothing emitted — are movable, so a move
        is pure bookkeeping: the stream's bits are untouched.  Target bins
        come from :func:`~repro.distributed.balanced_worker_bins` over the
        movable streams' total-token costs; the heaviest bin lands on the
        replica with the lightest immovable (running/preempted) load.
        """
        loads = np.array(
            [handle.scheduler.pending_tokens for handle in self.replicas],
            dtype=np.float64,
        )
        self.stats.rebalance_passes += 1
        if self.obs.enabled:
            self.obs.router_rebalances.inc()
        mean = loads.mean()
        if mean <= 0 or loads.max() <= self.rebalance_threshold * mean:
            return 0
        movable: List[Tuple[int, int, int]] = []  # (replica, local_id, cost)
        for handle in self.replicas:
            for local_id in handle.scheduler.withdrawable():
                cost = handle.scheduler.telemetry[local_id].total_tokens
                movable.append((handle.index, local_id, cost))
        if not movable:
            return 0
        costs = np.array([cost for _, _, cost in movable], dtype=np.float64)
        base = loads - np.bincount(
            [replica for replica, _, _ in movable],
            weights=costs,
            minlength=self.num_replicas,
        )
        bins = balanced_worker_bins(costs, self.num_replicas)
        bin_weights = np.array([costs[indices].sum() for indices in bins])
        heavy_first = np.argsort(-bin_weights, kind="stable")
        light_first = np.lexsort((np.arange(self.num_replicas), base))
        span = None
        if self.obs.enabled and self.obs.trace is not None:
            span = self.obs.trace.start_span(
                "rebalance", self.clock.now(), loads=loads.tolist()
            )
        moved = 0
        replica_order: List[int] = []
        for bin_rank, target in zip(heavy_first, light_first):
            replica_order.append(int(target))
            for item in bins[bin_rank]:
                source, local_id, _ = movable[item]
                if source == target:
                    continue
                request = self.replicas[source].scheduler.withdraw(local_id)
                if request is None:  # raced a natural activation; leave it
                    continue
                rid = self._local_to_global[source].pop(local_id)
                new_local = self.replicas[target].scheduler.submit(request)
                placement = self._placements[rid]
                placement.replica = int(target)
                placement.local_id = new_local
                self._local_to_global[target][new_local] = rid
                self.telemetry[rid] = self.replicas[target].scheduler.telemetry[new_local]
                self._remember(placement.fingerprints, int(target))
                moved += 1
        self.stats.moved_streams += moved
        self.last_rebalance = RebalanceRecord(
            loads=loads,
            costs=costs,
            bins=tuple(bins),
            replica_order=tuple(replica_order),
            moved=moved,
        )
        obs = self.obs
        if obs.enabled:
            if moved:
                obs.router_moved_streams.inc(moved)
            if obs.trace is not None and span is not None:
                obs.trace.end_span(span, self.clock.now(), moved=moved)
        return moved

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Streams placed but not yet finished, across all replicas."""
        return sum(handle.scheduler.active for handle in self.replicas)

    @property
    def iterations(self) -> int:
        """Router steps taken (each advances every busy replica once)."""
        return self._steps

    def loop_stats(self) -> LoopStatsSnapshot:
        """Cluster-wide loop counters: the sum of every replica's snapshot."""
        return aggregate_loop_stats(
            [handle.scheduler.stats.snapshot() for handle in self.replicas]
        )

    def replica_loads(self) -> np.ndarray:
        """Pending tokens per replica (the rebalance load signal)."""
        return np.array(
            [handle.scheduler.pending_tokens for handle in self.replicas],
            dtype=np.int64,
        )

    def _update_replica_gauges(self) -> None:
        obs = self.obs
        for handle in self.replicas:
            label = str(handle.index)
            obs.router_replica_streams.labels(replica=label).set(
                handle.scheduler.active
            )
            obs.router_replica_tokens.labels(replica=label).set(
                handle.scheduler.pending_tokens
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for handle in self.replicas:
            handle.server.close()

    def __enter__(self) -> "ReplicaRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DEFAULT_AFFINITY_CAPACITY",
    "ROUTER_POLICIES",
    "RebalanceRecord",
    "ReplicaHandle",
    "ReplicaRouter",
    "RouterReport",
    "RouterStats",
    "aggregate_loop_stats",
]
