"""Incremental autoregressive decoding: KV-cache sessions over decode plans.

One-shot attention recomputes every mask edge per call; the heavy-traffic
serving workload is *decoding*, where tokens arrive one at a time and the
work-optimal cost of the new token is O(edges of its own mask row · d) — the
paper's per-edge work argument (Section IV-B) applied to the streaming
pattern of the sequence-parallel systems it surveys.  This module provides
that path:

* :class:`KVCache` — preallocated, geometrically-doubling ``(..., L, d)``
  key/value buffers with batch/head leading axes, so appending a token is an
  O(d) copy and growth is amortised O(1).
* :class:`DecodeSession` — one decoding stream: a decode-mode
  :class:`~repro.serve.plan.ExecutionPlan` (whose precompiled
  :class:`~repro.masks.rows.RowProgram` yields each new token's neighbour
  set), the growing KV cache, and the incremental attention step that scores
  one query row against the cached keys via the online-softmax state.
* :func:`stacked_decode_step` / :func:`stacked_prefill` — the
  continuous-batching primitives: decode steps (or same-position prompt
  chunks) of several sessions that share one plan stack into a single
  vectorized kernel pass (used by
  :meth:`repro.serve.scheduler.AttentionServer.decode_steps` /
  :meth:`~repro.serve.scheduler.AttentionServer.prefill_chunks` and the
  iteration-level loop in :mod:`repro.serve.loop`).
* :func:`decode_reference_mask` — the causally-clipped CSR mask a full decode
  loop attends, so ``engine.run`` on it reproduces an entire prefill+steps
  loop in one shot (the verification oracle for tests and benchmarks).

A decode step at position ``i`` attends the causal clip of mask row ``i``
evaluated at the session's *horizon* (keys ``j <= i`` only — later tokens do
not exist yet), which makes the incremental loop exactly equal to a one-shot
run over :func:`decode_reference_mask`.
"""

from __future__ import annotations

from math import prod
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dense import resolve_scale
from repro.core.engine import MaskInput
from repro.core.online_softmax import (
    OnlineSoftmaxState,
    accumulator_dtype,
    segment_softmax_stats,
    segment_weighted_sum,
)
from repro.core.result import AttentionResult, OpCounts
from repro.masks.base import as_mask_spec
from repro.masks.rows import compile_row_program
from repro.masks.structured import DenseMask
from repro.serve.paging import BlockPool, PagedKVCache
from repro.serve.plan import ExecutionPlan, compile_plan
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

#: Initial KV-cache capacity (tokens) before the first geometric doubling.
DEFAULT_INITIAL_CAPACITY = 16


class KVCache:
    """Growing key/value buffers for one decoding stream.

    Buffers are ``batch_shape + (capacity, d)`` with the batch/head axes
    leading, matching the layout every kernel treats as first-class; only the
    first :attr:`length` rows are live.  Appending beyond capacity reallocates
    at twice the size (geometric doubling, amortised O(1) per token), capped
    at ``max_length`` when given.
    """

    def __init__(
        self,
        batch_shape: Tuple[int, ...],
        key_dim: int,
        value_dim: int,
        *,
        dtype=np.float32,
        capacity: int = DEFAULT_INITIAL_CAPACITY,
        max_length: Optional[int] = None,
    ) -> None:
        require(key_dim > 0 and value_dim > 0, "key/value dims must be positive")
        require(capacity >= 1, "initial capacity must be >= 1")
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.key_dim = int(key_dim)
        self.value_dim = int(value_dim)
        self.max_length = int(max_length) if max_length is not None else None
        require(
            self.max_length is None or self.max_length >= 1,
            "max_length must be >= 1 when given",
        )
        if self.max_length is not None:
            capacity = min(capacity, self.max_length)
        self._keys = np.empty(self.batch_shape + (capacity, self.key_dim), dtype=dtype)
        self._values = np.empty(self.batch_shape + (capacity, self.value_dim), dtype=dtype)
        self._length = 0
        self.grows = 0

    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of live tokens."""
        return self._length

    @property
    def capacity(self) -> int:
        """Allocated token slots."""
        return int(self._keys.shape[-2])

    @property
    def dtype(self) -> np.dtype:
        return self._keys.dtype

    @property
    def nbytes(self) -> int:
        """Allocated buffer bytes (capacity, not just live tokens)."""
        return int(self._keys.nbytes + self._values.nbytes)

    def keys(self) -> np.ndarray:
        """View of the live key rows, ``batch_shape + (length, d_k)``."""
        return self._keys[..., : self._length, :]

    def values(self) -> np.ndarray:
        """View of the live value rows, ``batch_shape + (length, d_v)``."""
        return self._values[..., : self._length, :]

    def _check_live(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions)
        if positions.size:
            require(
                int(positions.min(initial=0)) >= 0,
                "gather with negative positions",
            )
            require(
                int(positions.max(initial=0)) < self._length,
                "gather past the live token range",
            )
        return positions

    def gather_keys(self, positions: np.ndarray) -> np.ndarray:
        """Key rows of live token ``positions``, ``batch_shape + (E, d_k)``.

        Same contract as :meth:`PagedKVCache.gather_keys
        <repro.serve.paging.PagedKVCache.gather_keys>` — the kernels consume
        only gathered views, so contiguous and paged caches interchange
        (including the refusal to read past the live rows into slack
        capacity).
        """
        return self._keys[..., self._check_live(positions), :]

    def gather_values(self, positions: np.ndarray) -> np.ndarray:
        """Value rows of live token ``positions``, ``batch_shape + (E, d_v)``."""
        return self._values[..., self._check_live(positions), :]

    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        require(
            self.max_length is None or needed <= self.max_length,
            f"KV cache full: {needed} tokens exceed the decode horizon {self.max_length}",
        )
        if needed <= self.capacity:
            return
        new_capacity = self.capacity
        while new_capacity < needed:
            new_capacity *= 2
        if self.max_length is not None:
            new_capacity = min(new_capacity, self.max_length)
        keys = np.empty(self.batch_shape + (new_capacity, self.key_dim), dtype=self.dtype)
        values = np.empty(self.batch_shape + (new_capacity, self.value_dim), dtype=self.dtype)
        keys[..., : self._length, :] = self.keys()
        values[..., : self._length, :] = self.values()
        self._keys, self._values = keys, values
        self.grows += 1

    def extend(self, k_block: np.ndarray, v_block: np.ndarray) -> int:
        """Append a block of tokens; returns the first appended position."""
        k_block = np.asarray(k_block)
        v_block = np.asarray(v_block)
        require(k_block.ndim >= 2, "key block must be batch_shape + (T, d_k)")
        count = int(k_block.shape[-2])
        require(
            k_block.shape == self.batch_shape + (count, self.key_dim),
            "key block shape does not match the cache layout",
        )
        require(
            v_block.shape == self.batch_shape + (count, self.value_dim),
            "value block shape does not match the cache layout",
        )
        self._ensure_capacity(count)
        start = self._length
        self._keys[..., start : start + count, :] = k_block
        self._values[..., start : start + count, :] = v_block
        self._length += count
        return start

    def append(self, k_row: np.ndarray, v_row: np.ndarray) -> int:
        """Append one token (rows shaped ``batch_shape + (d,)``); returns its position."""
        return self.extend(
            np.asarray(k_row)[..., None, :], np.asarray(v_row)[..., None, :]
        )

    def truncate(self, length: int) -> None:
        """Discard tokens past ``length`` (speculative-decode rollback).

        The contiguous twin of the paged cache's speculative window: rows
        above ``length`` become dead capacity (never re-read — every gather
        checks the live range), so rejected draft tokens vanish without a
        copy and the accepted prefix keeps its exact written bytes.
        """
        require(0 <= length <= self._length, "truncate target outside the live range")
        self._length = int(length)


# --------------------------------------------------------------------------- #
# Row attention core
# --------------------------------------------------------------------------- #
def _edge_attention(
    q_rows: np.ndarray,
    k_edges: np.ndarray,
    v_edges: np.ndarray,
    indptr: np.ndarray,
    *,
    scale_value: float,
    out_dtype,
    return_scores: bool = False,
):
    """Attention of ``R`` query rows over pre-gathered per-edge K/V rows.

    ``q_rows`` is ``(..., R, d_k)``; ``k_edges``/``v_edges`` hold one
    key/value row per mask edge in CSR order (``(..., E, d)``), ``indptr``
    delimits each query row's edges.  The per-row softmax statistics are
    folded through an :class:`OnlineSoftmaxState` so empty rows (fully masked
    queries) finalise to zero exactly like the one-shot kernels.

    ``return_scores=True`` appends the raw scaled ``(..., E)`` score vector to
    the return tuple — the speculative verify pass reads per-row argmaxes off
    it without recomputing the dot products.
    """
    acc_dtype = accumulator_dtype(q_rows.dtype)
    q_acc = np.asarray(q_rows, dtype=acc_dtype)
    k_acc = np.asarray(k_edges, dtype=acc_dtype)
    v_acc = np.asarray(v_edges, dtype=acc_dtype)
    num_rows = int(indptr.size - 1)
    lengths = np.diff(indptr)
    edge_rows = np.repeat(np.arange(num_rows), lengths)
    scores = (
        np.einsum("...ed,...ed->...e", q_acc[..., edge_rows, :], k_acc) * scale_value
    )
    row_max, row_sum, weights = segment_softmax_stats(scores, indptr)
    accumulator = segment_weighted_sum(weights, v_acc, indptr, v_acc.shape[-1])
    state = OnlineSoftmaxState(row_max=row_max, row_sum=row_sum, accumulator=accumulator)
    if return_scores:
        return state.finalize(dtype=out_dtype), state, scores
    return state.finalize(dtype=out_dtype), state


#: Either cache flavour a session may own: the private contiguous buffer or a
#: block-table view over a shared pool.  Kernels only ever see gathered rows.
AnyKVCache = Union[KVCache, PagedKVCache]


def _rows_attention(
    q_rows: np.ndarray,
    cache: AnyKVCache,
    cols_list: Sequence[np.ndarray],
    *,
    scale: Optional[float],
) -> Tuple[np.ndarray, OnlineSoftmaxState, int]:
    """Attend ``R`` query rows against the cache via per-row column lists."""
    indptr = np.concatenate(([0], np.cumsum([c.size for c in cols_list]))).astype(np.int64)
    cols = np.concatenate(cols_list) if len(cols_list) > 1 else np.asarray(cols_list[0])
    scale_value = resolve_scale(scale, q_rows.shape[-1])
    output, state = _edge_attention(
        q_rows,
        cache.gather_keys(cols),
        cache.gather_values(cols),
        indptr,
        scale_value=scale_value,
        out_dtype=q_rows.dtype,
    )
    return output, state, int(cols.size)


# --------------------------------------------------------------------------- #
# Decode sessions
# --------------------------------------------------------------------------- #
class DecodeSession:
    """One autoregressive decoding stream over a decode-mode execution plan.

    The session owns a :class:`KVCache` (allocated lazily from the first
    tokens it sees, so batch shape, head dims and dtype are inferred) and the
    plan's precompiled :class:`~repro.masks.rows.RowProgram`.  ``prefill``
    processes the prompt in one vectorized pass over its causal rows;
    ``step`` appends a single token and attends only that token's mask row —
    O(row edges · d) instead of the O(all edges · d) a full recompute pays.

    ``plan.length`` is the session's *horizon*: the pattern length mask rows
    are evaluated at, and the maximum number of tokens the session may hold.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        *,
        retain_outputs: bool = False,
        initial_capacity: int = DEFAULT_INITIAL_CAPACITY,
        session_id: Optional[int] = None,
        cache: Optional[AnyKVCache] = None,
    ) -> None:
        require(
            plan.mode == "decode" and plan.decode is not None,
            "DecodeSession needs a plan compiled with mode='decode'",
        )
        self.plan = plan
        self.program = plan.decode
        self.retain_outputs = bool(retain_outputs)
        self.initial_capacity = int(initial_capacity)
        self.session_id = session_id
        #: ``None`` until the first tokens arrive (layout is inferred), unless
        #: a pre-built cache — typically a :class:`~repro.serve.paging.
        #: PagedKVCache` over a shared pool — was injected at open.
        self.cache: Optional[AnyKVCache] = cache
        self.closed = False
        self.ops = OpCounts()
        self.steps_taken = 0
        self.prefilled_tokens = 0
        #: Whether the plan came from a warm cache (set by the server at open).
        self.plan_cache_hit = False
        self._outputs: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def start(
        cls,
        mask: MaskInput,
        horizon: int,
        *,
        scale: Optional[float] = None,
        executor: str = "vectorized",
        retain_outputs: bool = False,
        initial_capacity: int = DEFAULT_INITIAL_CAPACITY,
        pool: Optional[BlockPool] = None,
    ) -> "DecodeSession":
        """Compile a decode plan for ``mask`` at ``horizon`` and open a session.

        The plan keeps its canonical cache key, so independently started
        sessions over the same mask shape can still coalesce their steps
        (see :func:`stacked_decode_step`).  Passing ``pool`` backs the session
        with a :class:`~repro.serve.paging.PagedKVCache` over that shared
        block pool instead of a private buffer.
        """
        plan = compile_plan(mask, horizon, executor=executor, scale=scale, mode="decode")
        cache = PagedKVCache(pool, max_length=horizon) if pool is not None else None
        return cls(
            plan,
            retain_outputs=retain_outputs,
            initial_capacity=initial_capacity,
            cache=cache,
        )

    # ------------------------------------------------------------------ #
    @property
    def horizon(self) -> int:
        """Pattern length rows are evaluated at (upper bound on tokens held)."""
        return self.plan.length

    @property
    def position(self) -> int:
        """Index the next appended token will occupy."""
        return self.cache.length if self.cache is not None else 0

    @property
    def batch_shape(self) -> Tuple[int, ...]:
        """Leading batch/head axes (empty until the first tokens arrive)."""
        return self.cache.batch_shape if self.cache is not None else ()

    @property
    def kv_cache_bytes(self) -> int:
        """Bytes currently allocated (private) or mapped (paged) by the cache."""
        return self.cache.nbytes if self.cache is not None else 0

    @property
    def paged(self) -> bool:
        """Whether the session's KV cache lives in a shared block pool."""
        return isinstance(self.cache, PagedKVCache)

    # ------------------------------------------------------------------ #
    def _ensure_cache(self, k_block: np.ndarray, v_block: np.ndarray) -> None:
        if self.cache is not None:
            require(
                k_block.shape[:-2] == self.cache.batch_shape
                and k_block.shape[-1] == self.cache.key_dim
                and v_block.shape[-1] == self.cache.value_dim,
                f"token batch shape {k_block.shape[:-2]} / dims "
                f"({k_block.shape[-1]}, {v_block.shape[-1]}) do not match the "
                f"cache layout {self.cache.batch_shape} + "
                f"({self.cache.key_dim}, {self.cache.value_dim})",
            )
            return
        self.cache = KVCache(
            k_block.shape[:-2],
            k_block.shape[-1],
            v_block.shape[-1],
            dtype=k_block.dtype,
            capacity=self.initial_capacity,
            max_length=self.horizon,
        )

    def _absorb(self, result: AttentionResult) -> None:
        self.ops = self.ops + result.ops
        if self.retain_outputs:
            self._outputs.append(result.output)

    def _as_token_slice(self, array: np.ndarray) -> np.ndarray:
        """Normalise a single-token input to ``batch_shape + (1, d)``."""
        array = np.asarray(array)
        if self.cache is not None:
            row_ndim = len(self.cache.batch_shape) + 1
            if array.ndim == row_ndim:
                return array[..., None, :]
            require(
                array.ndim == row_ndim + 1 and array.shape[-2] == 1,
                "decode steps take exactly one token: (..., d) or (..., 1, d)",
            )
            return array
        # before the cache exists, the batch shape is unknown: a bare (d,)
        # vector is a row, anything batched must carry the explicit token
        # axis — (..., 1, d) — or the leading axes would be ambiguous
        if array.ndim == 1:
            return array[None, :]
        require(
            array.ndim >= 2 and array.shape[-2] == 1,
            "first decode step with batch axes needs an explicit token axis: "
            "pass (..., 1, d) (or prefill first)",
        )
        return array

    # ------------------------------------------------------------------ #
    def prefill(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> AttentionResult:
        """Process a prompt block ``(..., P, d)``: fill the cache, attend causally.

        Rows ``start..start+P-1`` each attend the causal clip of their mask
        row (keys up to and including themselves), in one vectorized pass
        over the block's edges.  May be called repeatedly (chunked prefill).
        """
        require(not self.closed, "session is closed")
        q, k, v = np.asarray(q), np.asarray(k), np.asarray(v)
        require(q.ndim >= 2, "prefill takes (..., P, d) blocks")
        require(q.shape == k.shape, "q and k must have matching shapes")
        require(v.shape[:-1] == q.shape[:-1], "v must cover the same rows as q")
        count = int(q.shape[-2])
        require(count >= 1, "prefill needs at least one token")
        self._ensure_cache(k, v)
        start = self.cache.length
        require(
            start + count <= self.horizon,
            f"prefill of {count} tokens at position {start} exceeds horizon {self.horizon}",
        )
        self.cache.extend(k, v)
        cols_list = [self.program.causal_row(i) for i in range(start, start + count)]
        output, state, edges = _rows_attention(q, self.cache, cols_list, scale=self.plan.scale)
        ops = OpCounts.for_edges(
            edges, q.shape[-1], v.shape[-1], batch=prod(self.cache.batch_shape)
        )
        result = AttentionResult(
            output=output,
            row_max=state.row_max,
            row_sum=state.row_sum,
            ops=ops,
            algorithm="decode-prefill",
            meta={"positions": (start, start + count), "edges": edges},
        )
        self.prefilled_tokens += count
        self._absorb(result)
        return result

    def step(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> AttentionResult:
        """Append one token and attend its mask row against the cached K/V.

        ``q``/``k``/``v`` are one-token slices (``(..., d)`` or
        ``(..., 1, d)``).  The returned result's output is
        ``batch_shape + (1, d_v)`` — the new token's attention row.
        """
        require(not self.closed, "session is closed")
        q = self._as_token_slice(q)
        k = self._as_token_slice(k)
        v = self._as_token_slice(v)
        require(q.shape == k.shape, "q and k must have matching shapes")
        require(v.shape[:-1] == q.shape[:-1], "v must cover the same rows as q")
        self._ensure_cache(k, v)
        position = self.cache.length
        require(
            position < self.horizon,
            f"decode step at position {position} exceeds horizon {self.horizon}",
        )
        self.cache.extend(k, v)
        cols = self.program.causal_row(position)
        output, state, edges = _rows_attention(q, self.cache, [cols], scale=self.plan.scale)
        ops = OpCounts.for_edges(
            edges, q.shape[-1], v.shape[-1], batch=prod(self.cache.batch_shape)
        )
        result = AttentionResult(
            output=output,
            row_max=state.row_max,
            row_sum=state.row_sum,
            ops=ops,
            algorithm="decode-step",
            meta={"position": position, "edges": edges},
        )
        self.steps_taken += 1
        self._absorb(result)
        return result

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Finish the stream: release paged blocks back to their pool.

        Idempotent.  A closed session refuses further prefills and steps;
        retained outputs stay readable.  For a private-cache session this
        only marks the stream finished (the buffer is garbage-collected with
        the session); for a paged session every block reference returns to
        the pool, where prefix-registered blocks park in the evictable LRU.
        """
        if self.closed:
            return
        self.closed = True
        if isinstance(self.cache, PagedKVCache):
            self.cache.release()

    def outputs(self) -> np.ndarray:
        """All retained outputs concatenated to ``batch_shape + (length, d_v)``.

        Requires ``retain_outputs=True``; row ``i`` is the attention output
        token ``i`` received at the step (or prefill) that produced it.
        """
        require(self.retain_outputs, "session was opened with retain_outputs=False")
        require(len(self._outputs) > 0, "no tokens decoded yet")
        return np.concatenate(self._outputs, axis=-2)


# --------------------------------------------------------------------------- #
# Continuous batching: stacked same-plan decode steps
# --------------------------------------------------------------------------- #
def _require_shared_plan_and_position(sessions: Sequence["DecodeSession"], verb: str) -> int:
    """Assert every session shares the first one's plan and position."""
    first = sessions[0]
    position = first.position
    for session in sessions[1:]:
        shared = session.plan is first.plan or (
            first.plan.key is not None and session.plan.key == first.plan.key
        )
        require(shared, f"{verb} needs sessions sharing one plan")
        require(session.position == position, f"{verb} needs sessions at one position")
    return position


def _stacked_extend(
    sessions: Sequence["DecodeSession"],
    k_rows: Sequence[np.ndarray],
    v_rows: Sequence[np.ndarray],
    tokens: int,
) -> None:
    """Atomically extend every session's cache by one ``tokens``-row block.

    Paged sessions reserve every block the batch needs per pool BEFORE any
    cache advances — pool exhaustion fails the whole batch with no block
    table advanced (the PR 3 atomicity guarantee).  Prefix-share hits consume
    no reservation; leftover entries return to their pools.
    """
    pending: Dict[BlockPool, int] = {}
    for session in sessions:
        if isinstance(session.cache, PagedKVCache):
            pool = session.cache.pool
            pending[pool] = pending.get(pool, 0) + session.cache.plan_extend(tokens)
    reservations: Dict[BlockPool, List[int]] = {pool: [] for pool in pending}
    try:
        for pool, count in pending.items():
            reservations[pool].extend(pool.reserve(count))
    except Exception:
        for pool, blocks in reservations.items():
            if blocks:
                pool.release(blocks)
        raise
    try:
        for session, k, v in zip(sessions, k_rows, v_rows):
            session._ensure_cache(k, v)
            if isinstance(session.cache, PagedKVCache):
                session.cache.extend(k, v, reserved=reservations[session.cache.pool])
            else:
                session.cache.extend(k, v)
    finally:
        # share hits consume no reservation; return what the batch left over
        for pool, blocks in reservations.items():
            if blocks:
                pool.release(blocks)


def stacked_prefill(
    sessions: Sequence["DecodeSession"],
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
) -> List[AttentionResult]:
    """One prefill chunk for several sessions fused into a single kernel pass.

    The chunked-prefill twin of :func:`stacked_decode_step`: sessions sharing
    one plan and position append identically-shaped ``batch_shape + (P, d)``
    prompt chunks, and all their causal rows run through one stacked
    segment-softmax pass.  Block reservation is atomic per pool, so exhaustion
    fails the whole group before any block table advances.  Returns one
    per-session :class:`~repro.core.result.AttentionResult`, exactly equal to
    what individual :meth:`DecodeSession.prefill` calls would produce.
    """
    require(len(sessions) >= 1, "need at least one session")
    require(
        len(sessions) == len(qs) == len(ks) == len(vs),
        "sessions and prompt chunks must align",
    )
    first = sessions[0]
    if len(sessions) == 1:
        return [first.prefill(qs[0], ks[0], vs[0])]
    position = _require_shared_plan_and_position(sessions, "stacked prefill")

    # validate every chunk fully before mutating any session: a failure below
    # must not leave earlier sessions' caches advanced with orphan tokens
    q_list: List[np.ndarray] = []
    k_list: List[np.ndarray] = []
    v_list: List[np.ndarray] = []
    for session, q, k, v in zip(sessions, qs, ks, vs):
        require(not session.closed, "prefill on a closed session")
        q, k, v = np.asarray(q), np.asarray(k), np.asarray(v)
        require(q.ndim >= 2, "prefill takes (..., P, d) blocks")
        require(q.shape == k.shape, "q and k must have matching shapes")
        require(v.shape[:-1] == q.shape[:-1], "v must cover the same rows as q")
        if q_list:
            require(
                q.shape == q_list[0].shape and v.shape == v_list[0].shape,
                "stacked prefill needs identically-shaped chunks",
            )
        if session.cache is not None:
            require(
                k.shape[:-2] == session.cache.batch_shape
                and k.shape[-1] == session.cache.key_dim
                and v.shape[-1] == session.cache.value_dim,
                "prompt chunk does not match the session's cache layout",
            )
        count = int(q.shape[-2])
        require(count >= 1, "prefill needs at least one token")
        require(
            position + count <= session.horizon,
            f"prefill of {count} tokens at position {position} exceeds "
            f"horizon {session.horizon}",
        )
        q_list.append(q)
        k_list.append(k)
        v_list.append(v)
    count = int(q_list[0].shape[-2])

    _stacked_extend(sessions, k_list, v_list, count)

    cols_list = [first.program.causal_row(i) for i in range(position, position + count)]
    indptr = np.concatenate(([0], np.cumsum([c.size for c in cols_list]))).astype(np.int64)
    cols = np.concatenate(cols_list) if len(cols_list) > 1 else np.asarray(cols_list[0])
    scale_value = resolve_scale(first.plan.scale, q_list[0].shape[-1])
    # stack sessions on a new leading axis: (S,) + batch_shape + (P|E, d)
    q_stack = np.stack(q_list)
    k_sel = np.stack([s.cache.gather_keys(cols) for s in sessions])
    v_sel = np.stack([s.cache.gather_values(cols) for s in sessions])
    output, state = _edge_attention(
        q_stack, k_sel, v_sel, indptr, scale_value=scale_value, out_dtype=q_stack.dtype
    )

    edges = int(cols.size)
    results: List[AttentionResult] = []
    for index, session in enumerate(sessions):
        ops = OpCounts.for_edges(
            edges,
            q_stack.shape[-1],
            v_sel.shape[-1],
            batch=prod(session.cache.batch_shape),
        )
        result = AttentionResult(
            output=output[index],
            row_max=state.row_max[index],
            row_sum=state.row_sum[index],
            ops=ops,
            algorithm="decode-prefill",
            meta={
                "positions": (position, position + count),
                "edges": edges,
                "coalesced": len(sessions),
            },
        )
        session.prefilled_tokens += count
        session._absorb(result)
        results.append(result)
    return results


def stacked_decode_step(
    sessions: Sequence[DecodeSession],
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
) -> List[AttentionResult]:
    """One decode step for several sessions fused into a single kernel pass.

    All sessions must share one plan (same mask/horizon/scale) and sit at the
    same position with identically-shaped caches, so they also share the new
    token's neighbour set; their query rows and gathered K/V stack along a
    new leading axis and the whole group runs through one vectorized
    segment-softmax pass — the continuous-batching shape of decode serving.
    Returns one per-session :class:`~repro.core.result.AttentionResult`,
    exactly equal to what individual :meth:`DecodeSession.step` calls would
    produce.
    """
    require(len(sessions) >= 1, "need at least one session")
    require(
        len(sessions) == len(qs) == len(ks) == len(vs),
        "sessions and token slices must align",
    )
    first = sessions[0]
    if len(sessions) == 1:
        return [first.step(qs[0], ks[0], vs[0])]

    position = _require_shared_plan_and_position(sessions, "stacked decode steps")

    # validate every step fully before mutating any session: a failure below
    # must not leave earlier sessions' caches advanced with orphan tokens
    q_rows, k_rows, v_rows = [], [], []
    for session, q, k, v in zip(sessions, qs, ks, vs):
        require(not session.closed, "decode step on a closed session")
        q, k, v = session._as_token_slice(q), session._as_token_slice(k), session._as_token_slice(v)
        require(q.shape == k.shape, "q and k must have matching shapes")
        require(v.shape[:-1] == q.shape[:-1], "v must cover the same rows as q")
        require(position < session.horizon, "decode step exceeds the session horizon")
        if session.cache is not None:
            require(
                k.shape[:-2] == session.cache.batch_shape
                and k.shape[-1] == session.cache.key_dim
                and v.shape[-1] == session.cache.value_dim,
                "token slice does not match the session's cache layout",
            )
        if q_rows:
            require(
                q.shape == q_rows[0].shape and v.shape == v_rows[0].shape,
                "stacked decode steps need identically-shaped sessions",
            )
        q_rows.append(q)
        k_rows.append(k)
        v_rows.append(v)

    _stacked_extend(sessions, k_rows, v_rows, 1)

    cols = first.program.causal_row(position)
    indptr = np.array([0, cols.size], dtype=np.int64)
    scale_value = resolve_scale(first.plan.scale, q_rows[0].shape[-1])
    # stack sessions on a new leading axis: (S,) + batch_shape + (E, d)
    q_stack = np.stack(q_rows)
    k_sel = np.stack([s.cache.gather_keys(cols) for s in sessions])
    v_sel = np.stack([s.cache.gather_values(cols) for s in sessions])
    output, state = _edge_attention(
        q_stack, k_sel, v_sel, indptr, scale_value=scale_value, out_dtype=q_stack.dtype
    )

    results: List[AttentionResult] = []
    for index, session in enumerate(sessions):
        ops = OpCounts.for_edges(
            int(cols.size),
            q_stack.shape[-1],
            v_sel.shape[-1],
            batch=prod(session.cache.batch_shape),
        )
        result = AttentionResult(
            output=output[index],
            row_max=state.row_max[index],
            row_sum=state.row_sum[index],
            ops=ops,
            algorithm="decode-step",
            meta={"position": position, "edges": int(cols.size), "coalesced": len(sessions)},
        )
        session.steps_taken += 1
        session._absorb(result)
        results.append(result)
    return results


# --------------------------------------------------------------------------- #
# Verification oracle
# --------------------------------------------------------------------------- #
def decode_reference_mask(
    mask: MaskInput, length: int, *, horizon: Optional[int] = None
) -> CSRMatrix:
    """The causally-clipped mask a decode loop of ``length`` tokens attends.

    Row ``i`` is ``mask``'s row ``i`` evaluated at ``horizon`` (defaults to
    ``length``) clipped to keys ``j <= i``.  A one-shot
    ``engine.run(q, k, v, mask=decode_reference_mask(...))`` over the full
    tensors reproduces an entire ``prefill`` + ``step`` loop bit-for-bit up
    to accumulation order — the oracle the decode tests and benchmarks
    compare against.
    """
    require(length > 0, "length must be positive")
    horizon = length if horizon is None else int(horizon)
    require(horizon >= length, "horizon must be at least the decoded length")
    spec = DenseMask() if mask is None else as_mask_spec(mask)
    program = compile_row_program(spec, horizon)
    rows = [program.causal_row(i) for i in range(length)]
    return CSRMatrix.from_row_lists((length, length), rows)
