"""``ServingClient`` — the one public façade over the serving stack.

Before this module there were three divergent ways to get attention served:
``AttentionServer.open_decode_session`` (reject-mode paged or plain
sessions), ``request_decode_session`` (queue-mode tickets), and raw
``scheduler.submit`` against the continuous-batching loop.  The client
consolidates them:

* :meth:`ServingClient.generate` — synchronous end-to-end: submit one
  :class:`~repro.serve.loop.LoopRequest` (or raw ``q/k/v``) and drive the
  loop until it finishes.  Everything routes through the scheduler, so
  concurrent ``generate_many`` calls batch and preempt like real traffic.
* :meth:`ServingClient.agenerate` — the same contract ``async``, routed
  through a lazily-started :class:`~repro.serve.edge.AsyncServingEdge` on
  the current event loop (tenant limits and SLO scheduling included).
* :meth:`ServingClient.open_session` / :meth:`ServingClient.request_session`
  — the session-level escape hatches the old entry points exposed, for
  callers that drive :class:`~repro.serve.decode.DecodeSession` steps
  themselves.  The deprecated ``AttentionServer`` methods now shim onto the
  same internals and warn.

Constructor keywords follow the stack-wide normalized style (``obs=``,
``clock=``, ``policy=``, ``storage=``), validated by the shared
:func:`~repro.serve.loop.resolve_serving_kwargs` helper — the same one the
scheduler and the scenario runner use.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.engine import MaskInput
from repro.obs.recorder import Observability
from repro.perfmodel.devices import DeviceSpec
from repro.serve.edge import AsyncServingEdge, TenantConfig, TokenStream
from repro.serve.loop import (
    ContinuousBatchingScheduler,
    LoopRequest,
    RequestTelemetry,
    resolve_serving_kwargs,
)
from repro.serve.paging import DEFAULT_BLOCK_SIZE, SwapStore
from repro.serve.quant import resolve_storage
from repro.serve.router import ReplicaRouter
from repro.serve.scheduler import AttentionServer, DecodeTicket
from repro.serve.decode import DecodeSession
from repro.utils.validation import require


@dataclass(frozen=True)
class GenerationResult:
    """One finished stream: its id, stacked output, and telemetry."""

    request_id: int
    #: ``batch_shape + (total_tokens, d_v)`` attention outputs, prompt included
    output: np.ndarray
    telemetry: RequestTelemetry

    @property
    def slo_attained(self) -> Optional[bool]:
        return self.telemetry.slo_attained


class ServingClient:
    """The blessed entry point: one object, every way to get served.

    Build it over an existing :class:`~repro.serve.scheduler.AttentionServer`
    (or scheduler), or let it assemble the stack itself:

    >>> client = ServingClient(key_dim=8, num_blocks=64)
    >>> result = client.generate(q, k, v, mask, prompt_tokens=16)

    Parameters
    ----------
    server:
        An existing server to wrap; built fresh when omitted.
    scheduler:
        An existing loop to route through (mutually exclusive with
        ``server`` and the stack-assembly keywords below).
    obs, clock, policy, policy_seed:
        Normalized observability / clock / scheduling-policy keywords
        (``policy`` accepts a registry name or an instance), validated by
        :func:`~repro.serve.loop.resolve_serving_kwargs`.
    storage, key_dim, value_dim, num_blocks, memory_budget_bytes,
    block_size, batch_shape, pool_dtype:
        Block-pool assembly: when ``key_dim`` is given and the server has no
        pool, one is created (sized by ``num_blocks`` — default 64 — or
        ``memory_budget_bytes``) with the requested ``storage`` format.
    max_streams, prefill_chunk, max_iteration_tokens, preemption,
    swap_store, device:
        Passed to the :class:`~repro.serve.loop.ContinuousBatchingScheduler`
        the client builds lazily on first loop-routed call.
    tenants, default_tenant, max_buffered_chunks:
        Tenant isolation config for the async edge ``agenerate`` uses.
    replicas, router_policy, router_seed, rebalance_interval:
        ``replicas > 1`` assembles a :class:`~repro.serve.router.ReplicaRouter`
        instead of a single scheduler: each replica gets its own server and
        ``num_blocks``-sized pool, and ``generate``/``generate_many`` route
        by prompt-prefix affinity (outputs stay bit-identical to
        ``replicas=1``).  Requires ``key_dim`` and excludes ``server=``,
        ``scheduler=``, ``memory_budget_bytes=`` and the session/async entry
        points, which are single-server concepts.
    """

    def __init__(
        self,
        server: Optional[AttentionServer] = None,
        *,
        scheduler: Optional[ContinuousBatchingScheduler] = None,
        obs: Optional[Observability] = None,
        clock=None,
        policy=None,
        policy_seed: int = 0,
        storage: Optional[str] = None,
        key_dim: Optional[int] = None,
        value_dim: Optional[int] = None,
        num_blocks: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        batch_shape: Tuple[int, ...] = (),
        pool_dtype=np.float32,
        max_streams: int = 8,
        prefill_chunk: int = 32,
        max_iteration_tokens: Optional[int] = None,
        preemption: str = "auto",
        swap_store: Optional[SwapStore] = None,
        device: Optional[DeviceSpec] = None,
        tenants: Optional[Dict[str, TenantConfig]] = None,
        default_tenant: Optional[TenantConfig] = None,
        max_buffered_chunks: int = 8,
        replicas: int = 1,
        router_policy: str = "affinity",
        router_seed: int = 0,
        rebalance_interval: int = 8,
    ) -> None:
        require(replicas >= 1, "replicas must be >= 1")
        self._router: Optional[ReplicaRouter] = None
        if replicas > 1:
            require(
                server is None and scheduler is None,
                "replicas>1 builds its own per-replica servers; drop server=/scheduler=",
            )
            require(
                key_dim is not None,
                "replicas>1 needs key_dim= to size each replica's block pool",
            )
            require(
                memory_budget_bytes is None,
                "multi-replica pools are sized per replica by num_blocks=, "
                "not a global byte budget",
            )
            require(
                policy is None or isinstance(policy, str),
                "replicas>1 builds one policy instance per replica; pass a "
                "registry name, not an instance",
            )
            self._router = ReplicaRouter(
                replicas,
                key_dim=key_dim,
                value_dim=value_dim,
                num_blocks=num_blocks if num_blocks is not None else 64,
                block_size=block_size,
                batch_shape=batch_shape,
                pool_dtype=pool_dtype,
                storage=storage,
                policy=policy if policy is not None else "fcfs",
                policy_seed=policy_seed,
                router_policy=router_policy,
                router_seed=router_seed,
                clock=clock,
                obs=obs,
                max_streams=max_streams,
                prefill_chunk=prefill_chunk,
                max_iteration_tokens=max_iteration_tokens,
                preemption=preemption,
                device=device,
                rebalance_interval=rebalance_interval,
            )
            self.server = None
            self._scheduler = None
            self._policy = None
            self._clock = self._router.clock
            self._obs = self._router.obs
            self._storage = self._router.storage
            self._loop_kwargs = {}
            self._tenants = tenants
            self._default_tenant = default_tenant
            self._max_buffered_chunks = max_buffered_chunks
            self._edge = None
            self._edge_loop = None
            return
        if scheduler is not None:
            require(
                server is None,
                "pass either scheduler= or server=, not both",
            )
            require(
                policy is None and clock is None and obs is None,
                "policy/clock/obs are configured on the scheduler you passed; "
                "leave them unset here",
            )
            self.server = scheduler.server
            self._scheduler: Optional[ContinuousBatchingScheduler] = scheduler
            self._policy = scheduler.policy
            self._clock = scheduler.clock
            self._obs = scheduler.obs
        else:
            self.server = server if server is not None else AttentionServer(obs=obs)
            self._scheduler = None
            # policy/clock resolved now (fail fast on typos); obs defaults to
            # the server's recorder at scheduler-build time
            self._policy, self._clock, self._obs = resolve_serving_kwargs(
                policy=policy,
                policy_seed=policy_seed,
                clock=clock,
                obs=obs,
                default_obs=self.server.obs,
            )
        self._storage = (
            resolve_storage(storage, pool_dtype) if storage is not None else None
        )
        if key_dim is not None and self.server.block_pool is None:
            if num_blocks is None and memory_budget_bytes is None:
                num_blocks = 64
            self.server.create_block_pool(
                key_dim=key_dim,
                value_dim=value_dim,
                batch_shape=batch_shape,
                dtype=pool_dtype,
                storage=self._storage,
                num_blocks=num_blocks,
                memory_budget_bytes=memory_budget_bytes,
                block_size=block_size,
            )
        elif self._storage is not None and self.server.block_pool is not None:
            require(
                self.server.block_pool.storage == self._storage,
                f"server pool stores {self.server.block_pool.storage!r} but "
                f"storage={self._storage!r} was requested",
            )
        self._loop_kwargs = dict(
            max_streams=max_streams,
            prefill_chunk=prefill_chunk,
            max_iteration_tokens=max_iteration_tokens,
            preemption=preemption,
            swap_store=swap_store,
            device=device,
        )
        self._tenants = tenants
        self._default_tenant = default_tenant
        self._max_buffered_chunks = max_buffered_chunks
        self._edge: Optional[AsyncServingEdge] = None
        self._edge_loop = None

    # ------------------------------------------------------------------ #
    # The loop (built lazily: session-only clients need no block pool)
    # ------------------------------------------------------------------ #
    @property
    def router(self) -> Optional[ReplicaRouter]:
        """The multi-replica router (None unless built with ``replicas>1``)."""
        return self._router

    @property
    def scheduler(self) -> ContinuousBatchingScheduler:
        if self._scheduler is None:
            require(
                self._router is None,
                "a replicas>1 client routes through client.router, not one "
                "scheduler; use generate/generate_many or router.* directly",
            )
            require(
                self.server.block_pool is not None,
                "loop-routed generation needs a KV block pool: construct the "
                "client with key_dim=/num_blocks= (or call "
                "client.server.create_block_pool first)",
            )
            self._scheduler = ContinuousBatchingScheduler(
                self.server,
                policy=self._policy,
                clock=self._clock,
                obs=self._obs,
                **self._loop_kwargs,
            )
        return self._scheduler

    @property
    def clock(self):
        return self._clock

    @property
    def obs(self) -> Observability:
        return self._obs

    # ------------------------------------------------------------------ #
    # Synchronous generation
    # ------------------------------------------------------------------ #
    def _as_request(
        self,
        q,
        k,
        v,
        mask: MaskInput = None,
        *,
        prompt_tokens: int = 1,
        priority: float = 1.0,
        tenant: Optional[str] = None,
        slo_latency_seconds: Optional[float] = None,
        speculate_k: int = 0,
    ) -> LoopRequest:
        return LoopRequest(
            q=q,
            k=k,
            v=v,
            mask=mask,
            prompt_tokens=prompt_tokens,
            priority=priority,
            tenant=tenant,
            slo_latency_seconds=slo_latency_seconds,
            speculate_k=speculate_k,
        )

    def submit(self, request: LoopRequest) -> int:
        """Queue a prepared request on the loop (or router); returns its id."""
        if self._router is not None:
            return self._router.submit(request)
        return self.scheduler.submit(request)

    def generate(
        self,
        q,
        k,
        v,
        mask: MaskInput = None,
        *,
        prompt_tokens: int = 1,
        priority: float = 1.0,
        tenant: Optional[str] = None,
        slo_latency_seconds: Optional[float] = None,
        speculate_k: int = 0,
        max_iterations: Optional[int] = None,
    ) -> GenerationResult:
        """Serve one stream end to end through the loop, synchronously.

        ``speculate_k > 1`` decodes the stream speculatively (draft-and-verify
        multi-token steps); outputs are bit-identical to plain stepping.
        """
        request = self._as_request(
            q,
            k,
            v,
            mask,
            prompt_tokens=prompt_tokens,
            priority=priority,
            tenant=tenant,
            slo_latency_seconds=slo_latency_seconds,
            speculate_k=speculate_k,
        )
        rid = self.submit(request)
        self._drive({rid}, max_iterations)
        return self._result(rid)

    def generate_many(
        self, requests: Sequence[LoopRequest], *, max_iterations: Optional[int] = None
    ) -> List[GenerationResult]:
        """Submit a batch and drive the loop until all of them finish."""
        rids = [self.submit(request) for request in requests]
        self._drive(set(rids), max_iterations)
        return [self._result(rid) for rid in rids]

    def _engine(self):
        """Whatever executes streams: the router, or the single loop."""
        return self._router if self._router is not None else self.scheduler

    def _drive(self, rids: Set[int], max_iterations: Optional[int]) -> None:
        engine = self._engine()
        # a router rebalance pass may legitimately produce one zero-token
        # step, so the stall tolerance is one strike wider there
        strikes = 3 if self._router is not None else 2
        stalled = 0
        while any(rid not in engine.results for rid in rids):
            iterations = (
                engine.iterations
                if self._router is not None
                else engine.stats.iterations
            )
            if max_iterations is not None and iterations >= max_iterations:
                raise RuntimeError(
                    f"generation exceeded {max_iterations} iterations with "
                    f"{engine.active} streams still active"
                )
            report = engine.step()
            if report.tokens == 0 and not report.admitted and not report.finished:
                stalled += 1
                require(
                    stalled < strikes,
                    "serving loop stalled: no admission, tokens, or finishes",
                )
            else:
                stalled = 0

    def _result(self, rid: int) -> GenerationResult:
        engine = self._engine()
        output = engine.results.pop(rid)
        return GenerationResult(
            request_id=rid, output=output, telemetry=engine.telemetry[rid]
        )

    # ------------------------------------------------------------------ #
    # Async generation (routed through the edge)
    # ------------------------------------------------------------------ #
    async def _ensure_edge(self) -> AsyncServingEdge:
        require(
            self._router is None,
            "the async edge drives one scheduler; replicas>1 serves through "
            "generate/generate_many (or router.submit + router.step)",
        )
        loop = asyncio.get_running_loop()
        if self._edge is None or self._edge_loop is not loop or not self._edge.running:
            self._edge = AsyncServingEdge(
                self.scheduler,
                tenants=self._tenants,
                default_tenant=self._default_tenant,
                max_buffered_chunks=self._max_buffered_chunks,
                obs=self._obs,
            )
            self._edge_loop = loop
            await self._edge.start()
        return self._edge

    @property
    def edge(self) -> Optional[AsyncServingEdge]:
        """The edge backing ``agenerate`` (None until first async call)."""
        return self._edge

    async def astream(
        self, request: LoopRequest, *, tenant: Optional[str] = None
    ) -> TokenStream:
        """Admit one prepared request and stream its chunks through the edge.

        The streaming sibling of :meth:`submit`: tenant limits are enforced
        at admission and the returned :class:`~repro.serve.edge.TokenStream`
        yields output chunks as the loop emits them.
        """
        edge = await self._ensure_edge()
        return await edge.submit(request, tenant=tenant)

    async def agenerate(
        self,
        q,
        k,
        v,
        mask: MaskInput = None,
        *,
        prompt_tokens: int = 1,
        priority: float = 1.0,
        tenant: Optional[str] = None,
        slo_latency_seconds: Optional[float] = None,
        speculate_k: int = 0,
    ) -> GenerationResult:
        """``generate``'s async twin: same stream, same bits, via the edge."""
        edge = await self._ensure_edge()
        request = self._as_request(
            q,
            k,
            v,
            mask,
            prompt_tokens=prompt_tokens,
            priority=priority,
            tenant=tenant,
            slo_latency_seconds=slo_latency_seconds,
            speculate_k=speculate_k,
        )
        handle = await edge.submit(request)
        output = await handle.collect()
        return GenerationResult(
            request_id=handle.request_id,
            output=output,
            telemetry=self.scheduler.telemetry[handle.request_id],
        )

    # ------------------------------------------------------------------ #
    # Session-level entry points (the consolidated old paths)
    # ------------------------------------------------------------------ #
    def open_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        paged: bool = False,
        pool=None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeSession:
        """Open a decode session (reject-mode admission for paged sessions).

        The consolidated form of the deprecated
        ``AttentionServer.open_decode_session``; see that shim's target for
        full semantics.
        """
        require(
            self.server is not None,
            "session entry points address one server; a replicas>1 client "
            "has no single server (use the replica handles on client.router)",
        )
        return self.server._open_decode_session(
            mask,
            horizon,
            retain_outputs=retain_outputs,
            paged=paged,
            pool=pool,
            reserve_tokens=reserve_tokens,
        )

    def request_session(
        self,
        mask: MaskInput,
        horizon: int,
        *,
        retain_outputs: bool = False,
        pool=None,
        reserve_tokens: Optional[int] = None,
    ) -> DecodeTicket:
        """Queue-mode admission (the consolidated ``request_decode_session``)."""
        require(
            self.server is not None,
            "session entry points address one server; a replicas>1 client "
            "has no single server (use the replica handles on client.router)",
        )
        return self.server._request_decode_session(
            mask,
            horizon,
            retain_outputs=retain_outputs,
            pool=pool,
            reserve_tokens=reserve_tokens,
        )

    def close_session(self, session: DecodeSession) -> List[DecodeTicket]:
        """Finish a session; returns any queued tickets admitted by the space."""
        require(
            self.server is not None,
            "session entry points address one server; a replicas>1 client "
            "has no single server (use the replica handles on client.router)",
        )
        return self.server.close_decode_session(session)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the server's worker pool (the edge task dies with its loop)."""
        if self._router is not None:
            self._router.close()
        else:
            self.server.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["GenerationResult", "ServingClient"]
