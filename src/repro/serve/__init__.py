"""Attention serving subsystem: plan compiler, plan cache, request scheduler.

Three layers turn the paper's kernels into a serving stack:

* :mod:`repro.serve.plan` — compile a mask + context length (+ optional
  device) into an immutable :class:`ExecutionPlan`: the chosen kernel
  sequence, precomputed CSR remainders for composed unions, a predicted
  runtime from :mod:`repro.perfmodel`, and a canonical cache key.
* :mod:`repro.serve.cache` — an LRU :class:`PlanCache` with hit/miss/eviction
  statistics so repeated mask shapes skip compilation entirely.
* :mod:`repro.serve.scheduler` / :mod:`repro.serve.session` — an
  :class:`AttentionServer` that batches :class:`AttentionRequest`\\ s by plan
  key, executes them (optionally on a load-balanced thread pool) and returns
  per-request latencies plus aggregate throughput stats.
* :mod:`repro.serve.decode` — incremental autoregressive decoding:
  :class:`DecodeSession` KV-cache streams whose per-token steps cost O(edges
  of the new token's mask row), with same-plan steps from concurrent
  sessions coalesced into stacked kernel passes (continuous batching).
* :mod:`repro.serve.paging` — paged KV memory: a refcounted
  :class:`BlockPool` of fixed-size K/V blocks shared by every paged session,
  :class:`PagedKVCache` block tables with chained-hash prefix sharing and
  copy-on-write divergence, LRU eviction of finished sessions' blocks,
  reject-or-queue admission control on the server, and a host-side
  :class:`SwapStore` parking preempted sessions' serialized caches.
* :mod:`repro.serve.quant` — quantized block storage: pools accept a
  ``storage="fp32"|"fp16"|"int8"`` axis (int8 rows carry per-row affine
  scale/zero-point parameters) with explicit, property-tested error bounds
  per storage dtype; sharing, copy-on-write and swap round-trips operate on
  the encoded payload without ever inflating it to fp32.
* :mod:`repro.serve.speculate` — speculative multi-token decoding: a thinned
  *draft* pass proposes up to ``k`` tokens per stream
  (:meth:`~repro.masks.base.MaskSpec.draft_variant` mask per family), one
  stacked *verify* pass accepts the longest agreeing prefix, and rejected
  tokens roll back atomically from the paged KV cache — emitted outputs are
  bit-exact against one-token decoding by construction.
* :mod:`repro.serve.loop` — iteration-level continuous batching: a
  :class:`ContinuousBatchingScheduler` that owns the request lifecycle
  (admission, chunked-prefill/decode batch formation, preemption by
  swap-out or recompute, completion) under pluggable scheduling policies
  (FCFS / priority / weighted-fair sampling / least-slack deadline) and an
  injected clock, so the whole loop is testable on virtual time.
* :mod:`repro.serve.client` / :mod:`repro.serve.edge` — the public serving
  surface: :class:`ServingClient` consolidates every way to get served
  (``generate`` sync, ``agenerate`` async, session-level escape hatches),
  and :class:`AsyncServingEdge` is the asyncio front door — streaming
  token responses over per-stream queues, consumer backpressure, per-tenant
  rate/stream/block quotas, SLO-aware slack scheduling, graceful drain.
* :mod:`repro.serve.router` — multi-replica serving: a
  :class:`ReplicaRouter` fans streams out to N scheduler replicas by
  prompt-prefix fingerprint affinity (:func:`prefix_fingerprints`), falls
  back to load-based placement, rebalances waiting streams along
  :func:`~repro.distributed.balanced_worker_bins` under skew, and shards
  oversized requests across replicas via
  :func:`~repro.distributed.kv_parallel_attention` — routed outputs stay
  bit-identical to a single-replica run (``ServingClient(replicas=N)``).

Quick start::

    from repro.serve import ServingClient
    from repro.masks import longformer_mask

    client = ServingClient(key_dim=8, num_blocks=64, policy="slack")
    mask = longformer_mask(reach=16, global_tokens=(0,))
    result = client.generate(q, k, v, mask, prompt_tokens=16,
                             tenant="acme", slo_latency_seconds=2.0)
    print(result.output.shape, result.telemetry.slo_attained)
"""

from repro.serve.cache import CacheStats, PlanCache
from repro.serve.client import GenerationResult, ServingClient
from repro.serve.decode import (
    DecodeSession,
    KVCache,
    decode_reference_mask,
    stacked_decode_step,
    stacked_prefill,
)
from repro.serve.edge import (
    AsyncServingEdge,
    EdgeClosed,
    EdgeStats,
    StreamCancelled,
    TenantConfig,
    TenantThrottled,
    TokenStream,
)
from repro.serve.loop import (
    ContinuousBatchingScheduler,
    FCFSPolicy,
    InfeasibleRequest,
    IterationReport,
    LoopRequest,
    LoopStats,
    LoopStatsSnapshot,
    PriorityPolicy,
    RequestTelemetry,
    SchedulingPolicy,
    SlackPolicy,
    VirtualClock,
    WallClock,
    WeightedFairPolicy,
    resolve_serving_kwargs,
    scheduling_policy,
)
from repro.serve.paging import (
    DEFAULT_BLOCK_SIZE,
    BlockPool,
    BlockPoolStats,
    PagedKVCache,
    PoolExhausted,
    SwapHandle,
    SwapStore,
    SwapStoreStats,
    prefix_fingerprints,
)
from repro.serve.router import (
    DEFAULT_AFFINITY_CAPACITY,
    ROUTER_POLICIES,
    RebalanceRecord,
    ReplicaHandle,
    ReplicaRouter,
    RouterReport,
    RouterStats,
    aggregate_loop_stats,
)
from repro.serve.quant import (
    STORAGE_DTYPES,
    EncodedChunk,
    attention_tolerance,
    resolve_storage,
    roundtrip_bound,
)
from repro.serve.plan import (
    DEFAULT_HEAD_DIM,
    ExecutionPlan,
    PlanStep,
    compile_plan,
    mask_key,
    plan_cache_key,
)
from repro.serve.scheduler import AttentionServer, DecodeTicket, RequestBatch
from repro.serve.speculate import (
    DEFAULT_DRAFT_FRACTION,
    SpeculationOutcome,
    speculative_decode_steps,
)
from repro.serve.session import (
    AttentionRequest,
    AttentionResponse,
    ServerStats,
    ServerStatsSnapshot,
    ServingSession,
)

__all__ = [
    "AsyncServingEdge",
    "AttentionRequest",
    "AttentionResponse",
    "AttentionServer",
    "BlockPool",
    "BlockPoolStats",
    "CacheStats",
    "ContinuousBatchingScheduler",
    "DEFAULT_AFFINITY_CAPACITY",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_DRAFT_FRACTION",
    "DEFAULT_HEAD_DIM",
    "DecodeSession",
    "DecodeTicket",
    "EdgeClosed",
    "EdgeStats",
    "EncodedChunk",
    "ExecutionPlan",
    "FCFSPolicy",
    "GenerationResult",
    "InfeasibleRequest",
    "IterationReport",
    "KVCache",
    "LoopRequest",
    "LoopStats",
    "LoopStatsSnapshot",
    "PagedKVCache",
    "PlanCache",
    "PlanStep",
    "PoolExhausted",
    "PriorityPolicy",
    "ROUTER_POLICIES",
    "RebalanceRecord",
    "ReplicaHandle",
    "ReplicaRouter",
    "RequestBatch",
    "RequestTelemetry",
    "RouterReport",
    "RouterStats",
    "SchedulingPolicy",
    "STORAGE_DTYPES",
    "ServerStats",
    "ServerStatsSnapshot",
    "ServingClient",
    "ServingSession",
    "SlackPolicy",
    "SpeculationOutcome",
    "StreamCancelled",
    "SwapHandle",
    "SwapStore",
    "SwapStoreStats",
    "TenantConfig",
    "TenantThrottled",
    "TokenStream",
    "VirtualClock",
    "WallClock",
    "WeightedFairPolicy",
    "aggregate_loop_stats",
    "attention_tolerance",
    "compile_plan",
    "decode_reference_mask",
    "mask_key",
    "plan_cache_key",
    "prefix_fingerprints",
    "resolve_serving_kwargs",
    "resolve_storage",
    "scheduling_policy",
    "roundtrip_bound",
    "speculative_decode_steps",
    "stacked_decode_step",
    "stacked_prefill",
]
