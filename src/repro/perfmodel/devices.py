"""GPU device specifications (paper Table I).

The paper measures on three systems, identified by their GPU: an NVIDIA A100
(SXM4 80 GB), an L40 (48 GB) and a V100 (SXM2 32 GB).  :class:`DeviceSpec`
captures the characteristics the analytical models need — memory capacity,
memory bandwidth, peak arithmetic rates, SM count — plus the per-algorithm
*effective throughput* constants calibrated against the runtimes the paper
reports (see :mod:`repro.perfmodel.runtime` for how they are used).

Published peak numbers are used for capacity/bandwidth/FLOPs; the calibrated
constants are documented inline as being fit to the paper's Table III and
Fig. 3 observations rather than taken from datasheets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import require

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one accelerator.

    Attributes
    ----------
    name:
        Human-readable identifier, matching the paper's labels.
    memory_bytes:
        Usable device memory capacity (the context-length limits of Table II
        assume the full capacity is available to the attention tensors).
    memory_bandwidth:
        Peak DRAM bandwidth in bytes/second.
    peak_flops:
        Peak arithmetic throughput in FLOP/s keyed by dtype name
        (``"fp16"`` = tensor-core half precision, ``"fp32"`` = CUDA-core
        single precision, ``"tf32"`` = tensor-core TF32 as used by cuBLAS for
        float32 matmuls).
    sm_count:
        Number of streaming multiprocessors; the runtime model uses it as the
        number of concurrently executing row blocks when evaluating load
        imbalance.
    kernel_launch_overhead:
        Fixed per-kernel-invocation overhead in seconds.
    effective_throughput:
        Calibrated sustained FLOP/s of the *naive* graph-processing kernels on
        this device (they use neither tensor cores nor coalesced access, so
        their sustained rate is far below peak).  Fit to the paper's Table III
        and Fig. 3 runtimes.
    dense_efficiency:
        Fraction of peak the dense library baselines (cuBLAS SDP,
        FlashAttention) sustain on this device.
    search_throughput:
        COO in-kernel search steps per second (the linear row-bound scan the
        paper blames for COO's runtime).
    """

    name: str
    memory_bytes: int
    memory_bandwidth: float
    peak_flops: Dict[str, float]
    sm_count: int
    kernel_launch_overhead: float = 5e-4
    effective_throughput: float = 8.0e10
    dense_efficiency: float = 0.55
    search_throughput: float = 1.0e9

    def __post_init__(self) -> None:
        require(self.memory_bytes > 0, "memory_bytes must be positive")
        require(self.memory_bandwidth > 0, "memory_bandwidth must be positive")
        require(self.sm_count > 0, "sm_count must be positive")
        require(bool(self.peak_flops), "peak_flops must not be empty")

    def peak_for(self, dtype: str) -> float:
        """Peak FLOP/s for a dtype name (``fp16``/``fp32``/``tf32``)."""
        key = dtype.lower()
        require(key in self.peak_flops, f"device {self.name} has no peak entry for {dtype!r}")
        return self.peak_flops[key]

    @property
    def memory_gib(self) -> float:
        return self.memory_bytes / GIB


#: NVIDIA A100 SXM4 80 GB (Ampere) — the GPU used for Table II/III and Figs. 4-6.
A100_SXM4_80GB = DeviceSpec(
    name="NVIDIA A100 (SXM4 80GB)",
    memory_bytes=80 * GIB,
    memory_bandwidth=2.039e12,
    peak_flops={"fp16": 312e12, "tf32": 156e12, "fp32": 19.5e12},
    sm_count=108,
    # calibrated: the paper's local kernel sustains ~89 GFLOP/s and CSR ~80
    # GFLOP/s on the A100 across Table III's context lengths
    effective_throughput=8.7e10,
    dense_efficiency=0.56,
    search_throughput=1.0e9,
)

#: NVIDIA L40 48 GB (Ada) — newest GPU tested; fastest graph-kernel runtimes.
L40_48GB = DeviceSpec(
    name="NVIDIA L40 (48GB)",
    memory_bytes=48 * GIB,
    memory_bandwidth=8.64e11,
    peak_flops={"fp16": 181e12, "tf32": 90.5e12, "fp32": 90.5e12},
    sm_count=142,
    # calibrated: Fig. 3 shows substantially larger graph-kernel speedups on
    # the L40 (its naive-kernel clocks are higher, its SDP baseline slower)
    effective_throughput=1.6e11,
    dense_efficiency=0.35,
    search_throughput=1.4e9,
)

#: NVIDIA V100 SXM2 32 GB (Volta) — oldest GPU; lacks memory for L = 24,576 dense runs.
V100_SXM2_32GB = DeviceSpec(
    name="NVIDIA V100 (SXM2 32GB)",
    memory_bytes=32 * GIB,
    memory_bandwidth=9.0e11,
    peak_flops={"fp16": 112e12, "tf32": 15.7e12, "fp32": 15.7e12},
    sm_count=80,
    effective_throughput=6.0e10,
    dense_efficiency=0.45,
    search_throughput=7.0e8,
)

#: Registry of the paper's three systems keyed by short name.
DEVICES: Dict[str, DeviceSpec] = {
    "a100": A100_SXM4_80GB,
    "l40": L40_48GB,
    "v100": V100_SXM2_32GB,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by short name (``"a100"``, ``"l40"``, ``"v100"``) or full name."""
    key = name.strip().lower()
    if key in DEVICES:
        return DEVICES[key]
    for device in DEVICES.values():
        if device.name.lower() == key:
            return device
    raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
