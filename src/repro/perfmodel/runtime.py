"""Roofline-style GPU runtime model.

The wall-clock results of the paper (Fig. 3, 5, 6 and Table III) were measured
on physical GPUs that are not available here, so this module provides an
analytical substitute: a roofline estimate (compute vs. memory bound) extended
with the three effects the paper identifies as decisive for the graph kernels:

* **occupancy** — the naive kernels parallelise one query row per CUDA block,
  so small context lengths under-utilise the device (the reason SDP wins for
  short sequences, Section VI-A); modelled by a linear utilisation ramp up to
  ``saturation_rows``.
* **load imbalance** — a kernel is as slow as its slowest block (Section V-C's
  explanation of the Global kernel); modelled from the mask's per-block work
  distribution via :func:`repro.graph.stats.work_per_block`.
* **COO row search** — the linear scan for a row's bounds in the coordinate
  list; charged at ``DeviceSpec.search_throughput`` steps per second.

The per-device constants (``effective_throughput``, ``dense_efficiency``,
``saturation_rows``, relative per-kernel factors) are calibrated against the
runtimes the paper reports — e.g. FlashAttention's Table III entries imply a
sustained ~175 TFLOP/s on the A100 (56 % of fp16 peak) and the Local/CSR
entries imply ~80-90 GFLOP/s for the naive graph kernels — so the model
reproduces the paper's crossovers and speedup factors to well within an order
of magnitude.  EXPERIMENTS.md records modelled vs. reported numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.stats import work_per_block
from repro.perfmodel.devices import DeviceSpec
from repro.utils.dtypes import dtype_bytes
from repro.utils.validation import require

#: Relative sustained-throughput factor of each graph kernel w.r.t. the Local
#: kernel, calibrated from the speedups over SDP reported in Section V-C
#: (2-D dilation fastest, 1-D dilation slowest of the ordered kernels).
KERNEL_RELATIVE_THROUGHPUT: Dict[str, float] = {
    "local": 1.00,
    "dilated1d": 0.86,
    "dilated2d": 1.47,
    "csr": 0.95,
    "coo": 0.90,
    "global": 1.00,
}

#: Rows per device needed before the one-row-per-block kernels saturate the GPU.
SATURATION_ROWS: Dict[str, int] = {
    "NVIDIA A100 (SXM4 80GB)": 200_000,
    "NVIDIA L40 (48GB)": 120_000,
    "NVIDIA V100 (SXM2 32GB)": 250_000,
}

#: Per-row launch/scheduling overhead of the graph kernels (seconds per row).
ROW_OVERHEAD_S = 3.0e-8

#: Effective passes the masked-SDP baseline makes over its dense score buffer
#: (materialise scores, apply mask, softmax, re-read for the value product).
SDP_MEMORY_PASSES = 40

#: Exponent softening the contiguous-block imbalance penalty (an SM processes
#: many blocks, so the worst block only partially serialises execution).
IMBALANCE_EXPONENT = 0.5

GRAPH_ALGORITHMS = tuple(KERNEL_RELATIVE_THROUGHPUT)
DENSE_ALGORITHMS = ("sdp", "flash")


@dataclass(frozen=True)
class RuntimeEstimate:
    """Modelled runtime of one kernel invocation, with its component terms."""

    algorithm: str
    device: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    search_seconds: float
    imbalance_factor: float
    flops: float

    def speedup_over(self, other: "RuntimeEstimate") -> float:
        """``other.seconds / self.seconds`` — how much faster this estimate is."""
        return other.seconds / self.seconds if self.seconds > 0 else float("inf")


def combine_estimates(
    estimates: Sequence["RuntimeEstimate"], *, algorithm: str = "composed"
) -> "RuntimeEstimate":
    """Total runtime of kernels executed back-to-back (a composed mask's plan).

    Sequential execution adds the component times; the reported imbalance is
    the worst component's, since each kernel launch waits for its own slowest
    block.  All estimates must come from the same device.
    """
    estimates = list(estimates)
    require(len(estimates) >= 1, "need at least one estimate to combine")
    device = estimates[0].device
    require(
        all(e.device == device for e in estimates),
        "cannot combine estimates from different devices",
    )
    if len(estimates) == 1:
        single = estimates[0]
        if single.algorithm == algorithm:
            return single
        return dataclasses.replace(single, algorithm=algorithm)
    return RuntimeEstimate(
        algorithm=algorithm,
        device=device,
        seconds=sum(e.seconds for e in estimates),
        compute_seconds=sum(e.compute_seconds for e in estimates),
        memory_seconds=sum(e.memory_seconds for e in estimates),
        overhead_seconds=sum(e.overhead_seconds for e in estimates),
        search_seconds=sum(e.search_seconds for e in estimates),
        imbalance_factor=max(e.imbalance_factor for e in estimates),
        flops=sum(e.flops for e in estimates),
    )


@dataclass(frozen=True)
class RuntimeModel:
    """Analytical runtime estimator for one device."""

    device: DeviceSpec

    # ------------------------------------------------------------------ #
    def estimate(
        self,
        algorithm: str,
        length: int,
        head_dim: int,
        *,
        sparsity_factor: float = 1.0,
        dtype: str = "fp16",
        heads: int = 1,
        batch: int = 1,
        degrees: Optional[np.ndarray] = None,
        nnz: Optional[int] = None,
        kernel_calls: int = 1,
    ) -> RuntimeEstimate:
        """Estimate the runtime of ``algorithm`` for one attention invocation.

        ``heads`` and ``batch`` both multiply the work: one invocation on a
        ``(B, H, L, d)`` stack performs ``B·H`` slices' worth of flops and
        memory traffic (``batch`` is kept separate from ``heads`` so callers
        can report the two axes independently).  ``degrees`` (per-row non-zero
        counts) refines the load-imbalance term; when omitted, the mask is
        assumed balanced except for the Global kernel, whose characteristic
        skew is derived from ``sparsity_factor``.  ``nnz`` overrides the edge
        count implied by ``sparsity_factor``.
        """
        require(length > 0 and head_dim > 0 and heads > 0, "invalid dimensions")
        require(batch >= 1, "batch must be >= 1")
        require(0.0 <= sparsity_factor <= 1.0, "sparsity factor must lie in [0, 1]")
        require(kernel_calls >= 1, "kernel_calls must be >= 1")
        slices = heads * batch
        if algorithm in DENSE_ALGORITHMS:
            return self._estimate_dense(algorithm, length, head_dim, dtype, slices, kernel_calls)
        require(
            algorithm in GRAPH_ALGORITHMS,
            f"unknown algorithm {algorithm!r}; expected one of {GRAPH_ALGORITHMS + DENSE_ALGORITHMS}",
        )
        return self._estimate_graph(
            algorithm, length, head_dim, sparsity_factor, dtype, slices, degrees, nnz, kernel_calls
        )

    # ------------------------------------------------------------------ #
    def _estimate_dense(
        self, algorithm: str, length: int, head_dim: int, dtype: str, heads: int, kernel_calls: int
    ) -> RuntimeEstimate:
        element = dtype_bytes(dtype)
        flops = 4.0 * float(length) ** 2 * head_dim * heads
        if algorithm == "flash":
            peak = self.device.peak_for("fp16")
            compute = flops / (peak * self.device.dense_efficiency)
            # only the O(L) statistics and Q/K/V stream through memory
            memory = (4.0 * length * head_dim * heads * element) / self.device.memory_bandwidth
            imbalance = 1.0
        else:  # masked SDP: dense matmul plus repeated passes over the score buffer
            peak_key = "tf32" if element >= 4 else "fp16"
            compute = flops / (self.device.peak_for(peak_key) * 0.3)
            score_bytes = float(heads) * float(length) ** 2 * element
            memory = SDP_MEMORY_PASSES * score_bytes / self.device.memory_bandwidth
            imbalance = 1.0
        overhead = self.device.kernel_launch_overhead * kernel_calls
        seconds = max(compute, memory) + overhead
        return RuntimeEstimate(
            algorithm=algorithm,
            device=self.device.name,
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=overhead,
            search_seconds=0.0,
            imbalance_factor=imbalance,
            flops=flops,
        )

    def _estimate_graph(
        self,
        algorithm: str,
        length: int,
        head_dim: int,
        sparsity_factor: float,
        dtype: str,
        heads: int,
        degrees: Optional[np.ndarray],
        nnz: Optional[int],
        kernel_calls: int,
    ) -> RuntimeEstimate:
        element = dtype_bytes(dtype)
        if nnz is None:
            nnz = sparsity_factor * float(length) ** 2
        nnz = float(nnz) * heads
        flops = 4.0 * nnz * head_dim

        saturation = SATURATION_ROWS.get(self.device.name, 200_000)
        utilization = min(1.0, length / saturation)
        throughput = (
            self.device.effective_throughput
            * KERNEL_RELATIVE_THROUGHPUT[algorithm]
            * max(utilization, 1e-6)
        )
        imbalance = self._imbalance_factor(algorithm, length, sparsity_factor, degrees)
        compute = flops * imbalance / throughput

        # memory traffic: gathered K/V rows plus (for explicit formats) the mask
        kv_bytes = 2.0 * nnz * head_dim * element
        structure_bytes = 0.0
        if algorithm == "csr":
            structure_bytes = nnz * (4 + element) + (length + 1) * 4
        elif algorithm == "coo":
            structure_bytes = nnz * (8 + element)
        memory = (kv_bytes + structure_bytes) / self.device.memory_bandwidth

        search = 0.0
        if algorithm == "coo":
            # linear scan to each row's start: on average half the edge list per row
            search_steps = nnz * length / 2.0 / max(heads, 1)
            search = search_steps / self.device.search_throughput

        overhead = self.device.kernel_launch_overhead * kernel_calls + ROW_OVERHEAD_S * length
        seconds = max(compute, memory) + search + overhead
        return RuntimeEstimate(
            algorithm=algorithm,
            device=self.device.name,
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=overhead,
            search_seconds=search,
            imbalance_factor=imbalance,
            flops=flops,
        )

    # ------------------------------------------------------------------ #
    def _imbalance_factor(
        self,
        algorithm: str,
        length: int,
        sparsity_factor: float,
        degrees: Optional[np.ndarray],
    ) -> float:
        """Softened max/mean block-work ratio for one-row-per-block parallelism."""
        if degrees is None:
            if algorithm != "global":
                return 1.0
            # characteristic global-mask skew: g global rows of degree L, the rest ~2g
            g = max(1, int(round(sparsity_factor * length / 2.0)))
            degrees = np.full(length, 2 * g, dtype=np.int64)
            degrees[:g] = length
        blocks = work_per_block(np.asarray(degrees, dtype=np.int64), self.device.sm_count)
        mean = blocks.mean()
        if mean <= 0:
            return 1.0
        raw = float(blocks.max() / mean)
        return max(1.0, raw**IMBALANCE_EXPONENT)

    # ------------------------------------------------------------------ #
    def speedup(
        self,
        algorithm: str,
        baseline: str,
        length: int,
        head_dim: int,
        *,
        sparsity_factor: float,
        dtype: str = "fp16",
        heads: int = 1,
    ) -> float:
        """Modelled speedup of ``algorithm`` over ``baseline`` at one configuration."""
        target = self.estimate(
            algorithm, length, head_dim, sparsity_factor=sparsity_factor, dtype=dtype, heads=heads
        )
        base = self.estimate(
            baseline, length, head_dim, sparsity_factor=sparsity_factor, dtype=dtype, heads=heads
        )
        return target.speedup_over(base)
