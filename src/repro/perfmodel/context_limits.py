"""Theoretical context-length limit tables and sweeps (Fig. 4 and Table II).

Thin drivers over :mod:`repro.perfmodel.memory` that produce exactly the rows
the paper prints: Table II's maximum context length per (dtype, Sf, d_k,
heads, algorithm) on an 80 GB A100, and Fig. 4's limit-vs-sparsity curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.perfmodel.devices import A100_SXM4_80GB, DeviceSpec
from repro.perfmodel.memory import max_context_length

#: Column order of Table II.
TABLE2_ALGORITHMS = ("sdp", "csr", "coo", "flash", "local", "global", "dilated1d", "dilated2d")

#: The (dtype, Sf, d_k, heads) rows of Table II.  The 4,096 / 32-head rows use
#: the Llama-3-8B attention shape the paper cites.
TABLE2_CONFIGS = (
    {"dtype": "fp32", "sparsity_factor": 1e-4, "head_dim": 64, "heads": 1},
    {"dtype": "fp32", "sparsity_factor": 1e-4, "head_dim": 128, "heads": 1},
    {"dtype": "fp32", "sparsity_factor": 1e-4, "head_dim": 128, "heads": 32, "label": "dk=4096, 32 heads"},
    {"dtype": "fp16", "sparsity_factor": 1e-4, "head_dim": 64, "heads": 1},
    {"dtype": "fp16", "sparsity_factor": 1e-4, "head_dim": 128, "heads": 1},
    {"dtype": "fp16", "sparsity_factor": 1e-4, "head_dim": 128, "heads": 32, "label": "dk=4096, 32 heads"},
)


@dataclass(frozen=True)
class ContextLimitRow:
    """One row of Table II: the per-algorithm maximum context lengths."""

    dtype: str
    sparsity_factor: float
    head_dim: int
    heads: int
    limits: Dict[str, Optional[int]]
    label: str = ""

    @property
    def model_dim(self) -> int:
        return self.head_dim * self.heads

    def limit(self, algorithm: str) -> Optional[int]:
        return self.limits[algorithm]


def context_limit_table(
    device: DeviceSpec = A100_SXM4_80GB,
    *,
    configs: Sequence[dict] = TABLE2_CONFIGS,
    algorithms: Sequence[str] = TABLE2_ALGORITHMS,
    accounting: str = "paper",
) -> List[ContextLimitRow]:
    """Reproduce Table II: max context length per algorithm and configuration."""
    rows: List[ContextLimitRow] = []
    for config in configs:
        limits = {
            algorithm: max_context_length(
                algorithm,
                device,
                dtype=config["dtype"],
                head_dim=config["head_dim"],
                heads=config["heads"],
                sparsity_factor=config["sparsity_factor"],
                accounting=accounting,
            )
            for algorithm in algorithms
        }
        rows.append(
            ContextLimitRow(
                dtype=config["dtype"],
                sparsity_factor=config["sparsity_factor"],
                head_dim=config["head_dim"],
                heads=config["heads"],
                limits=limits,
                label=config.get("label", ""),
            )
        )
    return rows


def context_limit_sweep(
    algorithm: str,
    sparsity_factors: Sequence[float],
    *,
    device: DeviceSpec = A100_SXM4_80GB,
    dtype: str = "fp32",
    head_dim: int = 64,
    heads: int = 1,
    accounting: str = "paper",
) -> List[Optional[int]]:
    """Reproduce one curve of Fig. 4: max context length as sparsity varies."""
    return [
        max_context_length(
            algorithm,
            device,
            dtype=dtype,
            head_dim=head_dim,
            heads=heads,
            sparsity_factor=sf,
            accounting=accounting,
        )
        for sf in sparsity_factors
    ]
