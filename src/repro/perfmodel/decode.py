"""Decode-step runtime and KV-cache memory model.

One-shot serving is modelled by :mod:`repro.perfmodel.runtime` (all mask
edges per call) and :mod:`repro.perfmodel.memory` (resident tensors of one
full invocation).  Autoregressive decoding has a different cost structure:

* **memory** — the dominant resident tensor is the KV cache, which grows
  linearly with the decoded length: ``batch · heads · L · (d_k + d_v)``
  elements (:func:`kv_cache_bytes`).  Solving the capacity inequality for
  ``L`` gives the decode analogue of Table II's context limits
  (:func:`max_cached_tokens`).
* **runtime** — a step touches only the new token's mask row: ``2 d`` FLOPs
  per dot product plus ``2 d`` per value accumulation over the row's edges
  (:func:`decode_step_flops`), and streams the gathered K/V rows once.  A
  single query row cannot saturate a device, so the compute term is charged
  at a calibrated fraction of the graph kernels' sustained throughput and
  the kernel-launch overhead dominates small rows — which is exactly why the
  serving layer coalesces concurrent sessions' steps into one stacked pass.

:meth:`DecodeRuntimeModel.speedup_vs_recompute` compares an incremental step
against recomputing the whole prefix through the CSR kernel (what a stack
without a KV cache pays per token); the margin widens linearly with the
prefix's edge count, the effect ``benchmarks/bench_decode.py`` measures.

**Preemption** adds a third cost axis: a serving loop that must evict a live
stream under memory pressure either *swaps* its KV cache to host memory
(paying the copy out and back in) or *drops* it and recomputes the prefix
from the prompt on resume (paying the causal edges again).
:func:`preemption_cost` prices both and names the cheaper one — the policy
input the continuous-batching scheduler's ``preemption="auto"`` mode uses.

**Speculation** is the fourth axis: a draft-and-verify pass buys up to ``k``
tokens for one thinned draft pass plus one stacked verify pass, but only
when enough drafted tokens are accepted.  :func:`speculation_cost` prices
the pass against ``k`` one-token steps and solves for the break-even
acceptance rate — the threshold the serving loop uses to switch a stream
back to plain stepping when its observed accept rate collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perfmodel.devices import DeviceSpec
from repro.perfmodel.runtime import RuntimeEstimate, RuntimeModel
from repro.utils.dtypes import dtype_bytes
from repro.utils.validation import require

#: Fraction of the graph kernels' sustained throughput a single decode row
#: achieves (one query row occupies a sliver of the device; most of the step
#: is gather latency).  Calibrated to keep modelled per-token latencies in
#: the tens-of-microseconds range the continuous-batching literature reports
#: for un-batched single-stream decoding.
DECODE_ROW_EFFICIENCY = 0.05

#: Per-token byte overhead of int8 KV storage: float32 ``scale`` and ``zero``
#: for the key row and again for the value row, per head/batch slice.  Kept
#: in sync with :data:`repro.serve.quant.QUANT_PARAM_BYTES_PER_TOKEN`
#: (defined here independently so the analytical layer never imports the
#: serving stack).
QUANT_PARAM_BYTES_PER_TOKEN = 16


def _storage_param_bytes(storage: Optional[str]) -> int:
    """Quantization-parameter bytes per token row per slice for a storage."""
    return QUANT_PARAM_BYTES_PER_TOKEN if storage == "int8" else 0


def kv_cache_bytes(
    length: int,
    head_dim: int,
    *,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
) -> int:
    """Bytes of a KV cache holding ``length`` tokens.

    One token stores one key row (``d_k``) and one value row (``d_v``) per
    head per batch element.
    """
    require(length >= 0, "length must be non-negative")
    require(head_dim > 0 and heads > 0 and batch > 0, "invalid dimensions")
    value_dim = head_dim if value_dim is None else value_dim
    element = dtype_bytes(dtype)
    return int(batch * heads * length * (head_dim + value_dim) * element)


def blocks_for_tokens(length: int, block_size: int) -> int:
    """Physical blocks a ``length``-token stream occupies (last one partial)."""
    require(length >= 0, "length must be non-negative")
    require(block_size >= 1, "block size must be >= 1")
    return -(-length // block_size)  # ceil


def kv_block_bytes(
    block_size: int,
    head_dim: int,
    *,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
    storage: Optional[str] = None,
) -> int:
    """Physical bytes of one KV block at a given *storage* format.

    ``storage=None`` prices the block at the compute ``dtype`` (the
    pre-quantization behaviour); ``"int8"`` storage adds the per-row
    scale/zero-point parameter overhead the quantized
    :class:`~repro.serve.paging.BlockPool` carries alongside its arenas.
    Mirrors :attr:`BlockPool.block_bytes` with ``heads · batch`` slices.
    """
    require(block_size >= 1, "block size must be >= 1")
    require(head_dim > 0 and heads > 0 and batch > 0, "invalid dimensions")
    value_dim = head_dim if value_dim is None else value_dim
    element = dtype_bytes(storage if storage is not None else dtype)
    slices = heads * batch
    data = slices * block_size * (head_dim + value_dim) * element
    params = slices * block_size * _storage_param_bytes(storage)
    return int(data + params)


def paged_kv_cache_bytes(
    length: int,
    head_dim: int,
    *,
    block_size: int,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
    storage: Optional[str] = None,
) -> int:
    """Bytes a paged KV cache maps for ``length`` tokens.

    The block granularity rounds the footprint up to whole blocks — the
    *internal fragmentation* a paged allocator pays in exchange for zero
    external fragmentation and prefix sharing.  ``storage`` prices the
    blocks at a quantized storage dtype instead of the compute ``dtype``.
    """
    return blocks_for_tokens(length, block_size) * kv_block_bytes(
        block_size,
        head_dim,
        value_dim=value_dim,
        heads=heads,
        batch=batch,
        dtype=dtype,
        storage=storage,
    )


def paging_fragmentation_overhead(length: int, block_size: int) -> float:
    """Fractional byte overhead of paging vs. an exact dense buffer.

    ``0.0`` when ``length`` is block-aligned; at worst
    ``(block_size - 1) / length``.  The dense-buffer comparison point is the
    exact live-token footprint — a geometrically-doubled private buffer
    typically wastes far more (up to ~2x) in slack capacity.
    """
    require(length >= 1, "length must be positive")
    padded = blocks_for_tokens(length, block_size) * block_size
    return (padded - length) / length


def paged_sessions_supported(
    budget_bytes: int,
    *,
    prompt_tokens: int,
    shared_prefix_tokens: int,
    decode_tokens: int = 0,
    block_size: int,
    head_dim: int,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
    storage: Optional[str] = None,
) -> int:
    """Concurrent paged streams a KV byte budget holds with a shared prompt.

    The first ``shared_prefix_tokens`` of every prompt map the same physical
    blocks (paid once); only full blocks of the shared prefix share cleanly,
    so the remainder counts as private.  Each stream then owns its private
    prompt tail plus ``decode_tokens`` generated tokens, rounded up to
    blocks.  ``storage`` prices the blocks at a quantized storage format —
    the ≥2x sessions-per-GiB int8 capacity lever.  This is the capacity
    model ``benchmarks/bench_paging.py`` validates against the real
    :class:`~repro.serve.paging.BlockPool`.
    """
    require(budget_bytes >= 0, "budget must be non-negative")
    require(
        0 <= shared_prefix_tokens <= prompt_tokens,
        "shared prefix cannot exceed the prompt",
    )
    block_bytes = kv_block_bytes(
        block_size,
        head_dim,
        value_dim=value_dim,
        heads=heads,
        batch=batch,
        dtype=dtype,
        storage=storage,
    )
    total_blocks = budget_bytes // block_bytes
    shared_blocks = shared_prefix_tokens // block_size
    private_tokens = (
        prompt_tokens - shared_blocks * block_size + max(0, int(decode_tokens))
    )
    per_session = blocks_for_tokens(private_tokens, block_size)
    if per_session == 0:
        # fully-shared prompts and no generation: bounded only by the budget
        return int(total_blocks) if shared_blocks <= total_blocks else 0
    return max(0, int((total_blocks - shared_blocks) // per_session))


def decode_step_flops(
    row_edges: int,
    head_dim: int,
    *,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
) -> int:
    """FLOPs of one incremental decode step over ``row_edges`` mask edges.

    ``2 d_k`` per query-key dot product plus ``2 d_v`` per value
    accumulation, per batch/head slice — the O(row edges · d) work-optimal
    step cost.
    """
    require(row_edges >= 0, "row_edges must be non-negative")
    require(head_dim > 0 and heads > 0 and batch > 0, "invalid dimensions")
    value_dim = head_dim if value_dim is None else value_dim
    return int(2 * row_edges * (head_dim + value_dim) * heads * batch)


@dataclass(frozen=True)
class DecodeStepEstimate:
    """Modelled cost of one incremental decode step."""

    device: str
    row_edges: int
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    flops: float
    bytes_moved: float

    def tokens_per_second(self) -> float:
        """Single-stream decode throughput implied by this step cost."""
        return 1.0 / self.seconds if self.seconds > 0 else float("inf")


@dataclass(frozen=True)
class DecodeRuntimeModel:
    """Analytical decode-step estimator for one device."""

    device: DeviceSpec

    # ------------------------------------------------------------------ #
    def estimate_step(
        self,
        row_edges: int,
        head_dim: int,
        *,
        value_dim: Optional[int] = None,
        dtype: str = "fp16",
        heads: int = 1,
        batch: int = 1,
    ) -> DecodeStepEstimate:
        """Cost of attending one new token's mask row against the KV cache.

        ``batch`` covers both batched sessions within one stream and
        cross-session stacking (the server's coalesced step groups): the
        gathered edges and FLOPs scale with it while the launch overhead is
        paid once — the continuous-batching amortisation.
        """
        value_dim = head_dim if value_dim is None else value_dim
        slices = heads * batch
        element = dtype_bytes(dtype)
        flops = float(
            decode_step_flops(
                row_edges, head_dim, value_dim=value_dim, heads=heads, batch=batch
            )
        )
        compute = flops / (self.device.effective_throughput * DECODE_ROW_EFFICIENCY)
        # stream the gathered K/V edge rows once, write the new token's K/V
        # rows into the cache and the output row back out
        gather_bytes = float(row_edges) * (head_dim + value_dim) * element * slices
        token_bytes = (2.0 * head_dim + 2.0 * value_dim) * element * slices
        bytes_moved = gather_bytes + token_bytes
        memory = bytes_moved / self.device.memory_bandwidth
        overhead = self.device.kernel_launch_overhead
        return DecodeStepEstimate(
            device=self.device.name,
            row_edges=int(row_edges),
            seconds=max(compute, memory) + overhead,
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=overhead,
            flops=flops,
            bytes_moved=bytes_moved,
        )

    def estimate_recompute(
        self,
        nnz: int,
        length: int,
        head_dim: int,
        *,
        dtype: str = "fp16",
        heads: int = 1,
        batch: int = 1,
    ) -> RuntimeEstimate:
        """Cost of recomputing the whole ``length``-token prefix (no KV cache).

        This is what a serving stack without incremental decoding pays per
        generated token: one full CSR kernel invocation over all ``nnz``
        causal edges of the prefix.
        """
        sparsity = min(1.0, nnz / (float(length) * float(length)))
        return RuntimeModel(self.device).estimate(
            "csr",
            length,
            head_dim,
            sparsity_factor=sparsity,
            nnz=nnz,
            dtype=dtype,
            heads=heads,
            batch=batch,
        )

    def speedup_vs_recompute(
        self,
        row_edges: int,
        nnz: int,
        length: int,
        head_dim: int,
        *,
        dtype: str = "fp16",
        heads: int = 1,
        batch: int = 1,
    ) -> float:
        """Modelled advantage of one incremental step over a full recompute."""
        step = self.estimate_step(
            row_edges, head_dim, dtype=dtype, heads=heads, batch=batch
        )
        full = self.estimate_recompute(
            nnz, length, head_dim, dtype=dtype, heads=heads, batch=batch
        )
        return full.seconds / step.seconds if step.seconds > 0 else float("inf")


@dataclass(frozen=True)
class SloEstimate:
    """Smallest end-to-end latency SLO a request shape can possibly meet.

    The serving edge admits a request against a deadline; this object is the
    analytical floor of that deadline on an *unloaded* device — one chunked
    prefill over the prompt's causal edges plus ``decode_tokens`` incremental
    steps.  Any SLO below :attr:`min_latency_seconds` is infeasible no matter
    how the scheduler orders work; feasible SLOs still need queueing headroom
    on a contended loop.
    """

    device: str
    prompt_tokens: int
    decode_tokens: int
    prefill_seconds: float
    decode_step_seconds: float

    @property
    def decode_seconds(self) -> float:
        """Total modelled decode time: ``decode_tokens`` incremental steps."""
        return self.decode_tokens * self.decode_step_seconds

    @property
    def min_latency_seconds(self) -> float:
        """Unloaded-device floor: prefill plus every decode step, serialized."""
        return self.prefill_seconds + self.decode_seconds

    def feasible(self, slo_latency_seconds: float) -> bool:
        """Whether a deadline is achievable at all (ignoring queueing)."""
        require(slo_latency_seconds > 0, "SLO must be positive")
        return slo_latency_seconds >= self.min_latency_seconds

    def recommended_slo(self, headroom: float = 2.0) -> float:
        """A deadline with multiplicative queueing headroom over the floor."""
        require(headroom >= 1.0, "headroom must be >= 1")
        return self.min_latency_seconds * headroom


def min_feasible_slo(
    device: DeviceSpec,
    *,
    prompt_tokens: int,
    decode_tokens: int,
    prompt_nnz: Optional[int] = None,
    row_edges: Optional[int] = None,
    head_dim: int = 64,
    value_dim: Optional[int] = None,
    dtype: str = "fp16",
    heads: int = 1,
    batch: int = 1,
) -> SloEstimate:
    """Model the tightest latency SLO a ``prompt + decode`` request can meet.

    The prefill term prices one causal pass over the prompt
    (:meth:`DecodeRuntimeModel.estimate_recompute`; ``prompt_nnz`` defaults
    to the dense causal edge count).  The decode term charges
    ``decode_tokens`` incremental steps at the *final* row width
    (``row_edges`` defaults to the full ``prompt_tokens + decode_tokens``
    context) — a conservative per-step cost for sparse masks, exact for
    dense causal rows.  The edge and the bench use this to sanity-check
    scenario deadlines: an SLO below the returned floor is unattainable by
    construction, not a scheduling failure.
    """
    require(prompt_tokens >= 1, "prompt_tokens must be positive")
    require(decode_tokens >= 0, "decode_tokens must be non-negative")
    if prompt_nnz is None:
        prompt_nnz = prompt_tokens * (prompt_tokens + 1) // 2
    if row_edges is None:
        row_edges = prompt_tokens + decode_tokens
    model = DecodeRuntimeModel(device)
    prefill = model.estimate_recompute(
        prompt_nnz, prompt_tokens, head_dim, dtype=dtype, heads=heads, batch=batch
    )
    step = model.estimate_step(
        row_edges,
        head_dim,
        value_dim=value_dim,
        dtype=dtype,
        heads=heads,
        batch=batch,
    )
    return SloEstimate(
        device=device.name,
        prompt_tokens=int(prompt_tokens),
        decode_tokens=int(decode_tokens),
        prefill_seconds=prefill.seconds,
        decode_step_seconds=step.seconds,
    )


#: Fraction of DRAM bandwidth a host-side KV swap sustains.  Swap traffic
#: crosses the device boundary (PCIe / pinned-host staging), so it moves far
#: below the on-device rate the decode gathers enjoy; one quarter keeps the
#: swap-vs-recompute break-even at realistic prefix lengths.
SWAP_BANDWIDTH_FRACTION = 0.25


@dataclass(frozen=True)
class PreemptionCostEstimate:
    """Modelled cost of evicting (and later resuming) one decode stream."""

    device: str
    tokens: int
    swap_bytes: int
    swap_out_seconds: float
    swap_in_seconds: float
    recompute_flops: float
    recompute_seconds: float

    @property
    def swap_seconds(self) -> float:
        """Round-trip swap cost: serialize out at eviction, restore at resume."""
        return self.swap_out_seconds + self.swap_in_seconds

    @property
    def preferred(self) -> str:
        """``"swap"`` or ``"recompute"`` — whichever resumes the stream cheaper."""
        return "swap" if self.swap_seconds <= self.recompute_seconds else "recompute"


def preemption_cost(
    device: DeviceSpec,
    tokens: int,
    *,
    prefix_nnz: int,
    head_dim: int,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
    block_size: Optional[int] = None,
    storage: Optional[str] = None,
    swap_bandwidth_fraction: float = SWAP_BANDWIDTH_FRACTION,
) -> PreemptionCostEstimate:
    """Price evicting a ``tokens``-long stream: swap round-trip vs. recompute.

    *Swap* serializes the live KV rows to host memory and streams them back at
    resume — two copies of the cache footprint (block-padded when
    ``block_size`` is given) at ``swap_bandwidth_fraction`` of DRAM bandwidth,
    each paying one launch overhead.  A quantized ``storage`` shrinks the
    swap traffic to the encoded payload (bytes plus per-row parameters) —
    the serving loop's swaps ship quantized blocks, never an fp32 inflation.
    *Recompute* stores nothing and replays the prompt's causal prefill on
    resume: one CSR pass over the prefix's ``prefix_nnz`` causal edges
    (:meth:`DecodeRuntimeModel.estimate_recompute`).  Short prefixes over
    sparse rows recompute cheaper; long or dense prefixes amortise the copy
    and prefer the swap.
    """
    require(tokens >= 0, "tokens must be non-negative")
    require(prefix_nnz >= 0, "prefix_nnz must be non-negative")
    require(0.0 < swap_bandwidth_fraction <= 1.0, "swap bandwidth fraction in (0, 1]")
    if tokens == 0:
        # nothing cached: both paths are free (callers drop the cache either way)
        return PreemptionCostEstimate(
            device=device.name,
            tokens=0,
            swap_bytes=0,
            swap_out_seconds=0.0,
            swap_in_seconds=0.0,
            recompute_flops=0.0,
            recompute_seconds=0.0,
        )
    if block_size is not None:
        swap_bytes = paged_kv_cache_bytes(
            tokens,
            head_dim,
            block_size=block_size,
            value_dim=value_dim,
            heads=heads,
            batch=batch,
            dtype=dtype,
            storage=storage,
        )
    else:
        swap_bytes = kv_cache_bytes(
            tokens,
            head_dim,
            value_dim=value_dim,
            heads=heads,
            batch=batch,
            dtype=storage if storage is not None else dtype,
        ) + tokens * heads * batch * _storage_param_bytes(storage)
    bandwidth = device.memory_bandwidth * swap_bandwidth_fraction
    copy_seconds = swap_bytes / bandwidth + device.kernel_launch_overhead
    recompute = DecodeRuntimeModel(device).estimate_recompute(
        prefix_nnz, tokens, head_dim, dtype=dtype, heads=heads, batch=batch
    )
    return PreemptionCostEstimate(
        device=device.name,
        tokens=int(tokens),
        swap_bytes=int(swap_bytes),
        swap_out_seconds=copy_seconds,
        swap_in_seconds=copy_seconds,
        recompute_flops=recompute.flops,
        recompute_seconds=recompute.seconds,
    )


@dataclass(frozen=True)
class SpeculationCostEstimate:
    """Modelled economics of one draft-and-verify pass vs. ``k`` plain steps.

    A speculative pass pays a thinned draft pass plus one stacked verify pass
    over all ``k`` positions up front, then keeps only the accepted prefix; a
    zero-acceptance pass additionally falls back to one standard step.  With
    per-position acceptance probability ``a`` the accepted prefix length is
    geometric, so the pass emits ``a(1-a^k)/(1-a) + (1-a)`` tokens in
    expectation.  :attr:`break_even_accept_rate` is the acceptance rate at
    which expected tokens/second matches ``k`` one-token steps — the
    threshold the serving loop compares a stream's *observed* accept rate
    against before switching speculation off.
    """

    device: str
    k: int
    draft_seconds: float
    verify_seconds: float
    step_seconds: float
    break_even_accept_rate: float

    @property
    def pass_seconds(self) -> float:
        """Up-front cost of one speculative pass (draft plus verify)."""
        return self.draft_seconds + self.verify_seconds

    def expected_emitted(self, accept_rate: float) -> float:
        """Expected tokens emitted by one pass at a per-token accept rate."""
        require(0.0 <= accept_rate <= 1.0, "accept_rate must lie in [0, 1]")
        a, k = accept_rate, self.k
        if a >= 1.0:
            return float(k)
        return a * (1.0 - a**k) / (1.0 - a) + (1.0 - a)

    def expected_seconds(self, accept_rate: float) -> float:
        """Expected wall cost of one pass (fallback step charged at ``1-a``)."""
        require(0.0 <= accept_rate <= 1.0, "accept_rate must lie in [0, 1]")
        return self.pass_seconds + (1.0 - accept_rate) * self.step_seconds

    def expected_speedup(self, accept_rate: float) -> float:
        """Modelled tokens/second advantage over one-token stepping."""
        cost = self.expected_seconds(accept_rate)
        if cost <= 0.0:
            return float("inf")
        return self.expected_emitted(accept_rate) * self.step_seconds / cost

    def preferred(self, accept_rate: float) -> str:
        """``"speculate"`` or ``"stepwise"`` at an observed acceptance rate."""
        return "speculate" if accept_rate >= self.break_even_accept_rate else "stepwise"


def speculation_cost(
    device: DeviceSpec,
    k: int,
    *,
    row_edges: int,
    draft_row_edges: int,
    head_dim: int,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
) -> SpeculationCostEstimate:
    """Price a ``k``-token draft-and-verify pass against ``k`` plain steps.

    The draft pass attends ``k`` rows of the thinned draft mask
    (``draft_row_edges`` edges each); the verify pass attends ``k`` rows of
    the full mask (``row_edges`` each).  Both are one stacked kernel launch,
    so each pays the launch overhead once — the same amortisation the
    continuous-batching step groups enjoy.  The break-even acceptance rate is
    found by bisection on the monotone expected-speedup curve; ``1.0`` means
    the draft is too expensive for speculation to ever pay off at this shape.
    """
    require(k >= 1, "k must be >= 1")
    require(row_edges >= 0, "row_edges must be non-negative")
    require(0 <= draft_row_edges <= max(row_edges, 0), "draft rows cannot exceed full rows")
    model = DecodeRuntimeModel(device)
    kwargs = dict(value_dim=value_dim, dtype=dtype, heads=heads, batch=batch)
    step = model.estimate_step(row_edges, head_dim, **kwargs).seconds
    verify = model.estimate_step(k * row_edges, head_dim, **kwargs).seconds
    draft = model.estimate_step(k * draft_row_edges, head_dim, **kwargs).seconds
    estimate = SpeculationCostEstimate(
        device=device.name,
        k=int(k),
        draft_seconds=draft,
        verify_seconds=verify,
        step_seconds=step,
        break_even_accept_rate=0.0,
    )
    if estimate.expected_speedup(1.0) < 1.0:
        break_even = 1.0
    elif estimate.expected_speedup(0.0) >= 1.0:
        break_even = 0.0
    else:
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if estimate.expected_speedup(mid) >= 1.0:
                hi = mid
            else:
                lo = mid
        break_even = hi
    return SpeculationCostEstimate(
        device=estimate.device,
        k=estimate.k,
        draft_seconds=draft,
        verify_seconds=verify,
        step_seconds=step,
        break_even_accept_rate=break_even,
    )


def max_cached_tokens(
    device: DeviceSpec,
    *,
    head_dim: int = 64,
    value_dim: Optional[int] = None,
    heads: int = 1,
    batch: int = 1,
    dtype: str = "fp16",
    storage: Optional[str] = None,
    reserved_bytes: int = 0,
    block_size: Optional[int] = None,
) -> int:
    """Longest decode stream whose KV cache fits in device memory.

    ``reserved_bytes`` carves out space for weights and activations; the
    remainder divides by the per-token cache footprint (the decode analogue
    of the Table II context-length limits — linear in ``L`` instead of the
    quadratic score-matrix inequality).  ``storage`` prices the cache at a
    quantized storage format instead of the compute ``dtype``.

    With ``block_size`` the budget is spent at block granularity instead:
    the stream holds at most ``num_blocks · block_size`` tokens, where only
    whole blocks fit the budget — the paged allocator's accounting, slightly
    below the dense bound when the budget is not block-aligned but immune to
    the up-to-2x slack a geometrically-doubled private buffer reserves.
    """
    budget = device.memory_bytes - int(reserved_bytes)
    if budget <= 0:
        return 0
    if block_size is not None:
        block_bytes = kv_block_bytes(
            block_size,
            head_dim,
            value_dim=value_dim,
            heads=heads,
            batch=batch,
            dtype=dtype,
            storage=storage,
        )
        return int(budget // block_bytes) * int(block_size)
    per_token = kv_cache_bytes(
        1,
        head_dim,
        value_dim=value_dim,
        heads=heads,
        batch=batch,
        dtype=storage if storage is not None else dtype,
    ) + heads * batch * _storage_param_bytes(storage)
    return max(0, budget // per_token)
