"""Analytical GPU device, memory and runtime models.

This subpackage is the substitute for the paper's physical GPUs (A100, L40,
V100 — Table I).  It has two halves:

* :mod:`repro.perfmodel.memory` — exact byte accounting of every algorithm's
  resident tensors, from which the *theoretical maximum context length* of
  Fig. 4 and Table II is solved analytically (this part needs no hardware and
  reproduces the paper's numbers directly).
* :mod:`repro.perfmodel.runtime` — a roofline-style runtime estimator with
  per-algorithm efficiency constants calibrated against the runtimes the paper
  reports (Table III), plus the load-imbalance and COO-search penalties the
  paper describes qualitatively.  It reproduces the *shape* of Fig. 3, 5, 6
  and Table III at the paper's context lengths, which are far beyond what the
  CPU-measured benchmarks can reach.
* :mod:`repro.perfmodel.decode` — the incremental-decoding analogue:
  KV-cache byte accounting (linear in the decoded length) and a per-step
  runtime estimate over the new token's mask row, including the
  incremental-vs-full-recompute speedup the decode benchmark measures.
* :mod:`repro.perfmodel.router` — multi-replica placement economics:
  fingerprint-routing cost, rebalance makespan gain (priced by the same
  partitioner the router executes), and the replica throughput-scaling
  curve the router benchmark measures.
"""

from repro.perfmodel.devices import (
    A100_SXM4_80GB,
    DEVICES,
    L40_48GB,
    V100_SXM2_32GB,
    DeviceSpec,
    get_device,
)
from repro.perfmodel.memory import (
    ALGORITHMS_WITH_MEMORY_MODEL,
    AttentionMemoryModel,
    MemoryBreakdown,
    max_context_length,
)
from repro.perfmodel.runtime import RuntimeEstimate, RuntimeModel, combine_estimates
from repro.perfmodel.context_limits import (
    ContextLimitRow,
    context_limit_table,
    context_limit_sweep,
)
from repro.perfmodel.decode import (
    DecodeRuntimeModel,
    DecodeStepEstimate,
    PreemptionCostEstimate,
    SloEstimate,
    SpeculationCostEstimate,
    blocks_for_tokens,
    decode_step_flops,
    kv_block_bytes,
    kv_cache_bytes,
    max_cached_tokens,
    min_feasible_slo,
    paged_kv_cache_bytes,
    paged_sessions_supported,
    paging_fragmentation_overhead,
    preemption_cost,
    speculation_cost,
)
from repro.perfmodel.router import (
    RebalanceEstimate,
    RoutingCostEstimate,
    balanced_makespan,
    fingerprint_seconds,
    rebalance_gain,
    router_throughput_scaling,
    routing_cost,
)

__all__ = [
    "A100_SXM4_80GB",
    "ALGORITHMS_WITH_MEMORY_MODEL",
    "AttentionMemoryModel",
    "ContextLimitRow",
    "DEVICES",
    "DecodeRuntimeModel",
    "DecodeStepEstimate",
    "DeviceSpec",
    "L40_48GB",
    "MemoryBreakdown",
    "PreemptionCostEstimate",
    "RebalanceEstimate",
    "RoutingCostEstimate",
    "RuntimeEstimate",
    "SloEstimate",
    "SpeculationCostEstimate",
    "RuntimeModel",
    "V100_SXM2_32GB",
    "balanced_makespan",
    "blocks_for_tokens",
    "combine_estimates",
    "fingerprint_seconds",
    "context_limit_sweep",
    "context_limit_table",
    "decode_step_flops",
    "get_device",
    "kv_block_bytes",
    "kv_cache_bytes",
    "max_cached_tokens",
    "max_context_length",
    "min_feasible_slo",
    "paged_kv_cache_bytes",
    "paged_sessions_supported",
    "paging_fragmentation_overhead",
    "preemption_cost",
    "rebalance_gain",
    "router_throughput_scaling",
    "routing_cost",
    "speculation_cost",
]
