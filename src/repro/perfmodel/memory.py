"""Per-algorithm memory-footprint model and maximum-context-length solver.

Section V-D derives the theoretical context-length limit of each algorithm by
"solving inequalities that relate the total GPU memory to the amount of memory
occupied by tensors during runtime".  This module reproduces that accounting:

* every algorithm stores Q, K, V and O — ``4 · L · d_model`` elements;
* **SDP (masked)** additionally materialises the dense score matrix
  (``heads · L²`` elements);
* **CSR** stores the row-offset vector (``L + 1`` entries) plus, per head, the
  column-index and score vectors (``Sf · L²`` entries each);
* **COO** stores row-index, column-index and score vectors
  (``Sf · L²`` entries each, per head);
* **FlashAttention, Local, Dilated-1D, Dilated-2D** store only the two online
  softmax statistics vectors (``heads · L`` each) — their limits are
  independent of sparsity;
* **Global** adds the global-token index buffer.

Two accounting presets are provided.  ``"consistent"`` (default) prices all
index vectors at 4 bytes (int32) and all floating-point vectors at the data
dtype.  ``"paper"`` reproduces Table II's printed numbers exactly, which
requires pricing the CSR column indices at the *data* dtype width (2 bytes in
FP16) while COO keeps int32 indices — an inconsistency in the paper's
arithmetic that EXPERIMENTS.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor, sqrt
from typing import Dict, Optional

from repro.perfmodel.devices import DeviceSpec
from repro.utils.dtypes import dtype_bytes
from repro.utils.validation import require

#: Algorithms the memory model (and Table II) covers.
ALGORITHMS_WITH_MEMORY_MODEL = (
    "sdp",
    "csr",
    "coo",
    "flash",
    "local",
    "dilated1d",
    "dilated2d",
    "global",
)

#: Size of the global-token index buffer assumed by the Global kernel's
#: footprint (the paper reports its limit a hair below Local's, consistent
#: with a small fixed index buffer rather than a full-length one).
DEFAULT_GLOBAL_INDEX_ENTRIES = 16 * 1024

_ACCOUNTING_MODES = ("consistent", "paper")


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes resident per tensor family for one algorithm at one configuration."""

    qkvo: int
    score_matrix: int
    sparse_structure: int
    statistics: int
    extra: int

    @property
    def total(self) -> int:
        return self.qkvo + self.score_matrix + self.sparse_structure + self.statistics + self.extra


@dataclass(frozen=True)
class AttentionMemoryModel:
    """Byte accounting for one algorithm / dtype / head configuration.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS_WITH_MEMORY_MODEL`.
    dtype:
        Storage dtype of Q/K/V/O and the floating-point sparse vectors
        (``"fp16"``, ``"fp32"``...).
    head_dim:
        Per-head embedded dimension ``d_k``.
    heads:
        Number of attention heads (Q/K/V/O are ``L x heads*head_dim``).
    batch:
        Batch size ``B``: every per-sequence tensor family (Q/K/V/O, score
        matrix, per-head sparse score vectors, statistics) is resident once
        per batch element, so footprints scale by ``B`` and context limits
        shrink accordingly.
    index_bytes:
        Width of integer index vectors (int32 by default).
    accounting:
        ``"consistent"`` or ``"paper"`` (see module docstring).
    """

    algorithm: str
    dtype: str = "fp32"
    head_dim: int = 64
    heads: int = 1
    batch: int = 1
    index_bytes: int = 4
    accounting: str = "consistent"
    global_index_entries: int = DEFAULT_GLOBAL_INDEX_ENTRIES

    def __post_init__(self) -> None:
        require(
            self.algorithm in ALGORITHMS_WITH_MEMORY_MODEL,
            f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS_WITH_MEMORY_MODEL}",
        )
        require(self.head_dim > 0 and self.heads > 0, "head_dim and heads must be positive")
        require(self.batch > 0, "batch must be positive")
        require(self.index_bytes in (2, 4, 8), "index_bytes must be 2, 4 or 8")
        require(self.accounting in _ACCOUNTING_MODES, f"accounting must be one of {_ACCOUNTING_MODES}")
        if self.algorithm == "flash":
            require(
                dtype_bytes(self.dtype) <= 2,
                "FlashAttention does not operate on FP32 data (paper Table II)",
            )

    # ------------------------------------------------------------------ #
    @property
    def element_bytes(self) -> int:
        return dtype_bytes(self.dtype)

    @property
    def model_dim(self) -> int:
        return self.head_dim * self.heads

    def supports_sparsity(self) -> bool:
        """Whether the footprint depends on the sparsity factor (COO/CSR/SDP score matrix)."""
        return self.algorithm in ("csr", "coo")

    # ------------------------------------------------------------------ #
    def breakdown(self, length: int, sparsity_factor: float = 1.0) -> MemoryBreakdown:
        """Byte breakdown at context length ``length`` and mask sparsity ``Sf``."""
        require(length > 0, "length must be positive")
        require(0.0 <= sparsity_factor <= 1.0, "sparsity factor must lie in [0, 1]")
        e = self.element_bytes
        qkvo = 4 * self.batch * length * self.model_dim * e
        nnz_per_head = sparsity_factor * float(length) * float(length)
        score_matrix = 0
        sparse_structure = 0
        statistics = 0
        extra = 0
        slices = self.batch * self.heads

        if self.algorithm == "sdp":
            score_matrix = int(slices * float(length) * float(length) * e)
        elif self.algorithm == "csr":
            if self.accounting == "paper":
                per_edge = 2 * e  # column indices priced at the data dtype width
            else:
                per_edge = self.index_bytes + e
            sparse_structure = (length + 1) * self.index_bytes + int(
                slices * nnz_per_head * per_edge
            )
        elif self.algorithm == "coo":
            per_edge = 2 * self.index_bytes + e
            sparse_structure = int(slices * nnz_per_head * per_edge)
        else:  # flash, local, dilated1d, dilated2d, global
            statistics = 2 * slices * length * e
            if self.algorithm == "global":
                extra = self.global_index_entries * self.index_bytes

        return MemoryBreakdown(
            qkvo=qkvo,
            score_matrix=score_matrix,
            sparse_structure=sparse_structure,
            statistics=statistics,
            extra=extra,
        )

    def bytes_required(self, length: int, sparsity_factor: float = 1.0) -> int:
        return self.breakdown(length, sparsity_factor).total

    # ------------------------------------------------------------------ #
    def quadratic_coefficients(self, sparsity_factor: float = 1.0) -> Dict[str, float]:
        """Coefficients (a, b, c) of ``bytes(L) = a L² + b L + c``."""
        e = self.element_bytes
        slices = self.batch * self.heads
        a = 0.0
        b = 4.0 * self.batch * self.model_dim * e
        c = 0.0
        if self.algorithm == "sdp":
            a = float(slices) * e
        elif self.algorithm == "csr":
            per_edge = 2 * e if self.accounting == "paper" else self.index_bytes + e
            a = slices * sparsity_factor * per_edge
            b += self.index_bytes
            c += self.index_bytes
        elif self.algorithm == "coo":
            a = slices * sparsity_factor * (2 * self.index_bytes + e)
        else:
            b += 2.0 * slices * e
            if self.algorithm == "global":
                c += self.global_index_entries * self.index_bytes
        return {"a": a, "b": b, "c": c}

    def max_context_length(
        self, capacity_bytes: int, sparsity_factor: float = 1.0
    ) -> int:
        """Largest ``L`` whose footprint fits in ``capacity_bytes``.

        Solves the quadratic byte inequality in closed form, then adjusts by a
        few integer steps to undo floating-point slack.
        """
        require(capacity_bytes > 0, "capacity must be positive")
        coeffs = self.quadratic_coefficients(sparsity_factor)
        a, b, c = coeffs["a"], coeffs["b"], coeffs["c"]
        budget = capacity_bytes - c
        if budget <= 0:
            return 0
        if a == 0.0:
            guess = int(budget // b)
        else:
            guess = int(floor((-b + sqrt(b * b + 4.0 * a * budget)) / (2.0 * a)))
        guess = max(guess, 0)
        # integer refinement around the closed-form root
        while guess > 0 and self.bytes_required(guess, sparsity_factor) > capacity_bytes:
            guess -= 1
        while self.bytes_required(guess + 1, sparsity_factor) <= capacity_bytes:
            guess += 1
        return guess


def max_context_length(
    algorithm: str,
    device: DeviceSpec,
    *,
    dtype: str = "fp32",
    head_dim: int = 64,
    heads: int = 1,
    batch: int = 1,
    sparsity_factor: float = 1.0,
    accounting: str = "consistent",
    reserved_bytes: int = 0,
) -> Optional[int]:
    """Maximum context length of ``algorithm`` on ``device`` (``None`` if unsupported).

    FlashAttention returns ``None`` for FP32 (it "does not operate on FP32
    data", Table II).  ``reserved_bytes`` carves a serving-side budget (e.g.
    a paged KV arena, priced per storage dtype by
    :func:`repro.perfmodel.decode.kv_block_bytes`) out of device memory
    before solving for the context length.
    """
    require(reserved_bytes >= 0, "reserved_bytes must be non-negative")
    if algorithm == "flash" and dtype_bytes(dtype) > 2:
        return None
    capacity = device.memory_bytes - int(reserved_bytes)
    if capacity <= 0:
        return 0
    model = AttentionMemoryModel(
        algorithm=algorithm,
        dtype=dtype,
        head_dim=head_dim,
        heads=heads,
        batch=batch,
        accounting=accounting,
    )
    return model.max_context_length(capacity, sparsity_factor)
