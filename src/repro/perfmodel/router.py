"""Multi-replica routing and rebalancing cost model.

The serving layer's :class:`~repro.serve.router.ReplicaRouter` makes three
kinds of decisions this module prices analytically:

* **routing** — every submit hashes the prompt's full blocks into chained
  prefix fingerprints.  :func:`routing_cost` charges that hashing at a
  calibrated bandwidth plus a constant per-request lookup overhead; it is a
  per-request tax, so it must stay orders of magnitude below the prefill it
  saves (:attr:`RoutingCostEstimate.worthwhile_when_saved_seconds`).
* **rebalancing** — a rebalance pass withdraws waiting streams and re-places
  them along :func:`~repro.distributed.partition_balance.balanced_worker_bins`.
  :func:`rebalance_gain` runs the *same* partitioner over the same costs the
  router would see and reports the makespan before/after, so the analytical
  prediction and the router's telemetry (``RebalanceRecord``) are two views
  of one computation — the cross-module agreement the differential tests
  assert.
* **scaling** — :func:`router_throughput_scaling` models the aggregate
  tokens/second of N replicas relative to one.  Replicas add capacity
  linearly; what they *lose* is prefix reuse: a routed-away stream re-pays
  the shared prefill its warm replica would have skipped.  With route-hit
  rate ``h`` and a fraction ``s`` of each stream's tokens in the shared
  prefix, the per-stream work inflates by ``(1 - h) · s``, giving
  ``N / (1 + (1 - h) · s)`` — the curve ``benchmarks/bench_router.py``
  measures at ``h ≈ 0.9``.

Like the rest of :mod:`repro.perfmodel`, nothing here imports the serving
stack; shared constants are defined independently and kept in sync by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.distributed.partition_balance import balanced_worker_bins
from repro.utils.validation import require

#: Bytes/second one core sustains chaining SHA-1 over KV block payloads.
#: Calibrated conservatively (hashlib on a laptop-class core manages
#: ~0.5-2 GB/s); routing cost is dominated by this term for long prompts.
FINGERPRINT_BANDWIDTH = 500e6

#: Constant per-request routing overhead: the affinity-map probes, the
#: load scan of the fallback policy, and the placement bookkeeping.
ROUTE_LOOKUP_SECONDS = 2e-6

#: Per-stream cost of one withdraw + resubmit during a rebalance pass —
#: queue surgery and telemetry re-pointing, no tensor ever moves.
MOVE_STREAM_SECONDS = 5e-6


@dataclass(frozen=True)
class RoutingCostEstimate:
    """Modelled cost of routing one request by prefix fingerprint."""

    prompt_tokens: int
    hashed_bytes: int
    fingerprint_seconds: float
    lookup_seconds: float

    @property
    def seconds(self) -> float:
        return self.fingerprint_seconds + self.lookup_seconds

    @property
    def worthwhile_when_saved_seconds(self) -> float:
        """Prefill seconds a route hit must save to repay the routing tax.

        Any saving above this (one shared block's prefill dwarfs it) makes
        affinity routing strictly profitable.
        """
        return self.seconds


def fingerprint_seconds(hashed_bytes: int) -> float:
    """Seconds to chain-hash ``hashed_bytes`` of encoded block payload."""
    require(hashed_bytes >= 0, "hashed_bytes must be non-negative")
    return hashed_bytes / FINGERPRINT_BANDWIDTH


def routing_cost(
    prompt_tokens: int,
    key_dim: int,
    *,
    value_dim: Optional[int] = None,
    block_size: int = 16,
    storage_itemsize: int = 4,
    param_bytes_per_token: int = 0,
) -> RoutingCostEstimate:
    """Price routing one request: hash the full prompt blocks, probe the map.

    Only whole blocks enter the fingerprint chain (partial tails never
    match), so the hashed payload is the encoded K and V rows of
    ``floor(prompt / block_size)`` blocks at the pool's storage itemsize,
    plus any per-token quantization parameters (``16`` for int8 storage —
    the parameters feed the hash because they feed block identity).
    """
    require(prompt_tokens >= 0, "prompt_tokens must be non-negative")
    require(key_dim >= 1, "key_dim must be >= 1")
    require(block_size >= 1, "block_size must be >= 1")
    require(storage_itemsize >= 1, "storage_itemsize must be >= 1")
    value_dim = key_dim if value_dim is None else value_dim
    covered = (prompt_tokens // block_size) * block_size
    hashed = covered * (
        (key_dim + value_dim) * storage_itemsize + param_bytes_per_token
    )
    return RoutingCostEstimate(
        prompt_tokens=int(prompt_tokens),
        hashed_bytes=int(hashed),
        fingerprint_seconds=fingerprint_seconds(hashed),
        lookup_seconds=ROUTE_LOOKUP_SECONDS,
    )


@dataclass(frozen=True)
class RebalanceEstimate:
    """Before/after picture of one modelled rebalance pass."""

    num_replicas: int
    makespan_before: float
    makespan_after: float
    moved_streams: int
    move_seconds: float

    @property
    def makespan_gain(self) -> float:
        """Critical-replica load reduction (1.0 = no improvement)."""
        if self.makespan_after <= 0:
            return 1.0 if self.makespan_before <= 0 else float("inf")
        return self.makespan_before / self.makespan_after

    @property
    def worthwhile(self) -> bool:
        """Whether the pass reduced the critical path at all.

        The move cost is microseconds of bookkeeping against iterations of
        pending tokens, so any strict makespan reduction pays.
        """
        return self.makespan_after < self.makespan_before


def balanced_makespan(costs, num_replicas: int) -> float:
    """Critical-replica load after an LPT re-spread of ``costs``.

    Runs the exact :func:`~repro.distributed.partition_balance.balanced_worker_bins`
    partitioner the router's rebalance pass uses, so this *is* the router's
    post-move load picture, not an approximation of it.
    """
    require(num_replicas >= 1, "num_replicas must be >= 1")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    bins = balanced_worker_bins(costs, num_replicas)
    return float(max(costs[indices].sum() for indices in bins))


def rebalance_gain(
    replica_loads: Sequence[float],
    movable_costs: Sequence[float],
    movable_replicas: Sequence[int],
) -> RebalanceEstimate:
    """Model one rebalance pass over the router's own load signal.

    ``replica_loads[r]`` is replica ``r``'s pending tokens (movable
    included); ``movable_costs[i]`` / ``movable_replicas[i]`` describe the
    withdrawable streams.  The immovable base load stays where it is; the
    movable work is re-spread by the LPT partitioner and the heaviest bin
    lands on the lightest base — the router's pairing rule.  Streams are
    counted as moved when their bin's replica differs from where they sat.
    """
    loads = np.asarray(replica_loads, dtype=np.float64)
    costs = np.asarray(movable_costs, dtype=np.float64)
    origins = np.asarray(movable_replicas, dtype=np.int64)
    require(loads.ndim == 1 and loads.size >= 1, "need at least one replica load")
    require(costs.shape == origins.shape, "movable costs and replicas must align")
    num_replicas = loads.size
    require(
        costs.size == 0 or (origins.min() >= 0 and origins.max() < num_replicas),
        "movable_replicas must index into replica_loads",
    )
    base = loads - np.bincount(origins, weights=costs, minlength=num_replicas)
    makespan_before = float(loads.max())
    if costs.size == 0:
        return RebalanceEstimate(
            num_replicas=int(num_replicas),
            makespan_before=makespan_before,
            makespan_after=makespan_before,
            moved_streams=0,
            move_seconds=0.0,
        )
    bins = balanced_worker_bins(costs, num_replicas)
    bin_weights = np.array([costs[indices].sum() for indices in bins])
    heavy_first = np.argsort(-bin_weights, kind="stable")
    light_first = np.lexsort((np.arange(num_replicas), base))
    after = np.array(base, copy=True)
    moved = 0
    for bin_rank, target in zip(heavy_first, light_first):
        after[target] += bin_weights[bin_rank]
        moved += int(np.count_nonzero(origins[bins[bin_rank]] != target))
    return RebalanceEstimate(
        num_replicas=int(num_replicas),
        makespan_before=makespan_before,
        makespan_after=float(after.max()),
        moved_streams=moved,
        move_seconds=moved * MOVE_STREAM_SECONDS,
    )


def router_throughput_scaling(
    num_replicas: int,
    *,
    route_hit_rate: float,
    shared_prefill_fraction: float,
) -> float:
    """Modelled aggregate tokens/second of N replicas relative to one.

    Capacity scales linearly with ``num_replicas``; prefix reuse does not.
    A routed-away stream (probability ``1 - route_hit_rate`` for streams
    carrying a shared prefix) re-pays the ``shared_prefill_fraction`` of its
    tokens a warm replica would have served from shared blocks, inflating
    per-stream work by that amount:

    ``scaling = N / (1 + (1 - h) · s)``

    At ``h = 1`` (perfect affinity) or ``s = 0`` (nothing shared) the
    scaling is exactly ``N``; at ``h = 0, s = 0.9`` four replicas deliver
    only ``4 / 1.9 ≈ 2.1x`` — why the bench's 1.8x floor at four replicas
    requires the affinity router, not just the fan-out.
    """
    require(num_replicas >= 1, "num_replicas must be >= 1")
    require(0.0 <= route_hit_rate <= 1.0, "route_hit_rate must lie in [0, 1]")
    require(
        0.0 <= shared_prefill_fraction <= 1.0,
        "shared_prefill_fraction must lie in [0, 1]",
    )
    inflation = 1.0 + (1.0 - route_hit_rate) * shared_prefill_fraction
    return num_replicas / inflation


__all__ = [
    "FINGERPRINT_BANDWIDTH",
    "MOVE_STREAM_SECONDS",
    "ROUTE_LOOKUP_SECONDS",
    "RebalanceEstimate",
    "RoutingCostEstimate",
    "balanced_makespan",
    "fingerprint_seconds",
    "rebalance_gain",
    "router_throughput_scaling",
    "routing_cost",
]
