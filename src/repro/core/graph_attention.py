"""Unified namespace for the six graph-processing attention kernels.

The paper's Algorithm 1 is implemented by six kernels split across two
modules — explicit-mask kernels (:mod:`repro.core.explicit_kernels`) and
implicit ordered-sparsity kernels (:mod:`repro.core.implicit_kernels`).  This
module re-exports them under one roof and provides :data:`GRAPH_KERNELS`, a
name-to-callable registry the benchmark harness iterates over.
"""

from __future__ import annotations

from repro.core.explicit_kernels import coo_attention, coo_search_steps, csr_attention
from repro.core.implicit_kernels import (
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)

#: The six graph-processing kernels of the paper, keyed by the names used in
#: Fig. 3's legend.
GRAPH_KERNELS = {
    "coo": coo_attention,
    "csr": csr_attention,
    "local": local_attention,
    "dilated1d": dilated1d_attention,
    "dilated2d": dilated2d_attention,
    "global": global_attention,
}

__all__ = [
    "GRAPH_KERNELS",
    "coo_attention",
    "coo_search_steps",
    "csr_attention",
    "dilated1d_attention",
    "dilated2d_attention",
    "global_attention",
    "local_attention",
]
