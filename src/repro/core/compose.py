"""Composition of sequentially executed attention kernels.

Section V-F evaluates two ways of executing the popular composite masks:

* a **single CSR call** on the union mask, and
* a **sequence of specialised kernels** (Local then Global for Longformer;
  Local, Global, then CSR-random for BigBird) whose partial results are merged.

Merging is possible because every kernel returns its final online-softmax
statistics ``(m, l)`` alongside the (normalised) partial output; as long as
the component masks are edge-disjoint, combining the statistics reproduces the
softmax over the union mask exactly.  :func:`merge_results` implements that
combination and :func:`composed_attention` runs an arbitrary component list.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.explicit_kernels import csr_attention
from repro.core.implicit_kernels import global_attention, local_attention
from repro.core.online_softmax import rescale_factor
from repro.core.result import AttentionResult, OpCounts
from repro.masks.base import MaskSpec
from repro.masks.random_ import RandomMask
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require


def disjoint_union_components(
    components: Sequence[MaskSpec], length: int
) -> List[Tuple[MaskSpec, CSRMatrix, CSRMatrix]]:
    """Reduce union components to pairwise-disjoint edge sets.

    Online-softmax merging is only exact when no edge is processed twice, so
    each component is trimmed to the edges not already covered by the
    components before it.  Returns ``(component, component_csr, remainder)``
    triples where ``remainder`` is the component's CSR mask minus everything
    covered earlier; a component whose remainder equals its full mask can keep
    its specialised kernel, a trimmed one must fall back to CSR.

    This is the expensive half of composed dispatch (``to_csr`` plus CSR set
    algebra); the plan compiler calls it once per mask shape and caches the
    result inside the :class:`~repro.serve.plan.ExecutionPlan`.
    """
    covered: Optional[CSRMatrix] = None
    triples: List[Tuple[MaskSpec, CSRMatrix, CSRMatrix]] = []
    last = len(components) - 1
    for index, component in enumerate(components):
        component_csr = component.to_csr(length)
        remainder = component_csr if covered is None else component_csr.difference(covered)
        triples.append((component, component_csr, remainder))
        if index < last:  # the final component's covered set is never read
            covered = component_csr if covered is None else covered.union(component_csr)
    return triples


def merge_results(results: Sequence[AttentionResult], *, algorithm: str = "composed") -> AttentionResult:
    """Merge partial attention results computed over disjoint masks.

    Each result must cover the same rows (same leading batch axes, ``L`` and
    ``d_v``).  The merged output is the attention output of the union mask;
    operation counts are summed.  If the component masks overlap, the
    overlapped edges are counted twice — callers are responsible for passing
    disjoint components (the presets in :mod:`repro.masks.presets` are
    constructed to be disjoint).
    """
    results = list(results)
    require(len(results) >= 1, "need at least one result to merge")
    out_shape = results[0].output.shape
    for result in results[1:]:
        require(result.output.shape == out_shape, "results cover different shapes")

    row_max = np.full(out_shape[:-1], -np.inf, dtype=np.float64)
    row_sum = np.zeros(out_shape[:-1], dtype=np.float64)
    accumulator = np.zeros(out_shape, dtype=np.float64)
    ops = OpCounts()
    for result in results:
        r_max = np.asarray(result.row_max, dtype=np.float64)
        r_sum = np.asarray(result.row_sum, dtype=np.float64)
        r_out = np.asarray(result.output, dtype=np.float64)
        m_new = np.maximum(row_max, r_max)
        scale_old = rescale_factor(row_max, m_new)
        scale_new = rescale_factor(r_max, m_new)
        row_sum = row_sum * scale_old + r_sum * scale_new
        # result outputs are normalised; rescale back to unnormalised partials
        accumulator = accumulator * scale_old[..., None] + r_out * (r_sum * scale_new)[..., None]
        row_max = np.where(np.isfinite(m_new), m_new, -np.inf)
        ops = ops + result.ops

    empty = row_sum == 0
    safe = np.where(empty, 1.0, row_sum)
    output = accumulator / safe[..., None]
    output[empty] = 0.0
    return AttentionResult(
        output=output.astype(results[0].output.dtype),
        row_max=row_max,
        row_sum=row_sum,
        ops=ops,
        algorithm=algorithm,
        meta={"components": [r.algorithm for r in results]},
    )


def composed_attention(
    kernel_calls: Iterable[Callable[[], AttentionResult]],
    *,
    algorithm: str = "composed",
) -> AttentionResult:
    """Run a sequence of kernel thunks and merge their partial results."""
    results: List[AttentionResult] = [call() for call in kernel_calls]
    return merge_results(results, algorithm=algorithm)


# --------------------------------------------------------------------------- #
# Named compositions used by the Fig. 6 experiments
# --------------------------------------------------------------------------- #
def longformer_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    reach: int = 50,
    global_tokens: Sequence[int] = (0,),
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Longformer local+global attention as a double kernel call (Loc + Glo).

    ``reach`` is the per-direction window ("local size of 50 in each
    direction"); the global component excludes the window so the two edge sets
    are disjoint.
    """
    window = reach + 1
    return composed_attention(
        [
            lambda: local_attention(q, k, v, window, scale=scale, executor=executor),
            lambda: global_attention(q, k, v, global_tokens, window, scale=scale, executor=executor),
        ],
        algorithm="local+global",
    )


def bigbird_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    reach: int = 50,
    global_tokens: Sequence[int] = (0,),
    random_sparsity: float = 0.001,
    seed: int = 0,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """BigBird local+global+random attention as a triple kernel call (Loc + Glo + CSR).

    The random component is materialised as a CSR mask (it has no ordered
    structure an implicit kernel could exploit); edges already covered by the
    local window or global tokens are removed first so the components stay
    disjoint.
    """
    length = q.shape[-2]
    window = reach + 1
    from repro.masks.global_ import GlobalNonLocalMask
    from repro.masks.windowed import LocalMask

    random_mask = RandomMask(sparsity=random_sparsity, seed=seed).to_csr(length)
    covered = LocalMask(window=window).to_csr(length).union(
        GlobalNonLocalMask(global_tokens, window=window).to_csr(length)
    )
    random_only = random_mask.difference(covered)
    return composed_attention(
        [
            lambda: local_attention(q, k, v, window, scale=scale, executor=executor),
            lambda: global_attention(q, k, v, global_tokens, window, scale=scale, executor=executor),
            lambda: csr_attention(q, k, v, random_only, scale=scale, executor=executor),
        ],
        algorithm="local+global+csr",
    )
