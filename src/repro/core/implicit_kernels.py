"""Implicit-mask ("ordered sparsity") graph kernels: Local, Dilated-1D,
Dilated-2D and Global (paper Section IV-B).

These kernels receive only the pattern parameters ``Pa`` — window size,
dilation factor, block size, global token list — and compute each row's
neighbour indices on the fly, so no mask is ever stored.  That is what gives
them the FlashAttention-class memory footprint of Table II (Q/K/V/O plus two
``O(L)`` statistics vectors) while performing only ``O(Sf L^2 d)`` work.

Every kernel accepts ``(..., L, d)`` inputs: arbitrary leading batch/head
axes are executed in the same fused NumPy passes as the trailing ``(L, d)``
slice, so a ``(B, H)`` stack shares one pass over the mask structure instead
of paying the Python machinery ``B·H`` times.

Each kernel offers two executors:

* ``"streamed"`` — the literal Algorithm 1 loop (specification / verification).
* ``"vectorized"`` — a batched work-optimal evaluation.  Local and 1-D dilated
  kernels exploit translation invariance; wide stencils additionally switch to
  a banded-GEMM strategy (dense tiles over the band, BLAS matmuls, masked
  softmax) whose extra dot products are reported as ``wasted_dot_products``.
  The 2-D dilated kernel iterates blocks; the global kernel splits the work
  into the dense global rows and the thin global columns, which is also what
  makes its load imbalance visible to the runtime model.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.kernel_common import (
    batch_size,
    prepare_inputs,
    streamed_attention,
    validate_executor,
)
from repro.core.result import AttentionResult, OpCounts
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.utils.validation import require

#: Upper bound on the number of gathered score entries held at once by the
#: chunked stencil executors (rows-per-chunk is derived from it, including the
#: leading batch axes).  Keeps the working set cache-friendly regardless of
#: window size and batch width.
_CHUNK_ELEMENT_BUDGET = 1 << 22

#: Minimum stencil width before the banded-GEMM strategy pays off (below it,
#: the exact gather path has less overhead than dense band tiles).
_GEMM_MIN_OFFSETS = 32

#: Maximum band-span/offset-count ratio the GEMM strategy tolerates: beyond
#: it (strongly dilated stencils) the dense band wastes too much work.
_GEMM_MAX_SPAN_RATIO = 4


def _stencil_gather(q3, k3, v3, offsets, length, scale_value, row_chunk):
    """Exact gather executor: one einsum entry per stencil offset.

    Work per chunk is exactly ``rows x offsets`` score entries (boundary
    positions masked), so the only waste is the ``O(w^2)`` boundary padding.
    """
    slices, _, head_dim = q3.shape
    value_dim = v3.shape[-1]
    n_off = offsets.size
    if row_chunk is None:
        per_row = max(1, slices * n_off * max(head_dim, value_dim))
        row_chunk = max(1, min(length, _CHUNK_ELEMENT_BUDGET // per_row))

    outputs = np.zeros((slices, length, value_dim), dtype=q3.dtype)
    row_max = np.full((slices, length), -np.inf, dtype=q3.dtype)
    row_sum = np.zeros((slices, length), dtype=q3.dtype)
    computed = 0
    for start in range(0, length, row_chunk):
        stop = min(start + row_chunk, length)
        rows = np.arange(start, stop, dtype=np.int64)
        cols = rows[:, None] + offsets[None, :]
        valid = (cols >= 0) & (cols < length)
        safe_cols = np.clip(cols, 0, length - 1)
        scores = np.einsum("brd,brod->bro", q3[:, rows], k3[:, safe_cols]) * scale_value
        scores = np.where(valid, scores, -np.inf)
        chunk_max = scores.max(axis=-1)
        safe_max = np.where(np.isfinite(chunk_max), chunk_max, 0.0)
        weights = np.exp(np.where(valid, scores - safe_max[..., None], -np.inf))
        chunk_sum = weights.sum(axis=-1)
        chunk_out = np.einsum("bro,brod->brd", weights, v3[:, safe_cols])
        safe = np.where(chunk_sum == 0, 1.0, chunk_sum)
        outputs[:, rows] = chunk_out / safe[..., None]
        row_max[:, rows] = chunk_max
        row_sum[:, rows] = chunk_sum
        computed += int(valid.size)
    return outputs, row_max, row_sum, computed


def _stencil_gemm(q3, k3, v3, offsets, length, scale_value):
    """Banded-GEMM executor: dense score tiles over the stencil's band.

    For wide stencils the band ``[i + min_off, i + max_off]`` of a chunk of
    rows is computed as one dense BLAS matmul against a contiguous K slice,
    the off-stencil entries are masked to ``-inf``, and the value product is a
    second dense matmul.  The dense tiles perform up to ``(rows + span) /
    span`` times the stencil's true work — reported as wasted dot products —
    in exchange for BLAS throughput on every batch slice at once.
    """
    slices, _, _ = q3.shape
    value_dim = v3.shape[-1]
    min_off, max_off = int(offsets[0]), int(offsets[-1])
    span = max_off - min_off + 1

    # chunk rows R so the (B, R, R + span) score tile fits the element budget,
    # but no wider than the span itself (keeps dense work within 2x the band)
    budget = max(1, _CHUNK_ELEMENT_BUDGET // max(1, slices))
    budget_rows = int((math.sqrt(span * span + 4.0 * budget) - span) / 2.0)
    row_chunk = max(16, min(length, span, budget_rows))

    outputs = np.zeros((slices, length, value_dim), dtype=q3.dtype)
    row_max = np.full((slices, length), -np.inf, dtype=q3.dtype)
    row_sum = np.zeros((slices, length), dtype=q3.dtype)
    computed = 0
    local_rows = np.arange(row_chunk, dtype=np.int64)
    for start in range(0, length, row_chunk):
        stop = min(start + row_chunk, length)
        rows = local_rows[: stop - start]
        col_lo = max(0, start + min_off)
        col_hi = min(length, stop - 1 + max_off + 1)
        width = col_hi - col_lo

        scores = (
            q3[:, start:stop] @ k3[:, col_lo:col_hi].transpose(0, 2, 1)
        ) * scale_value
        band = (start + rows)[:, None] + offsets[None, :]
        valid = (band >= 0) & (band < length)
        dense_valid = np.zeros((rows.size, width), dtype=bool)
        row_idx = np.broadcast_to(rows[:, None], band.shape)
        dense_valid[row_idx[valid], band[valid] - col_lo] = True
        scores = np.where(dense_valid, scores, -np.inf)

        chunk_max = scores.max(axis=-1)
        safe_max = np.where(np.isfinite(chunk_max), chunk_max, 0.0)
        weights = np.exp(scores - safe_max[..., None])
        chunk_sum = weights.sum(axis=-1)
        chunk_out = weights @ v3[:, col_lo:col_hi]
        safe = np.where(chunk_sum == 0, 1.0, chunk_sum)
        outputs[:, start:stop] = chunk_out / safe[..., None]
        row_max[:, start:stop] = chunk_max
        row_sum[:, start:stop] = chunk_sum
        computed += int(rows.size * width)
    return outputs, row_max, row_sum, computed


def _stencil_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    offsets: np.ndarray,
    nnz: int,
    *,
    scale: Optional[float],
    algorithm: str,
    meta: dict,
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """Vectorised executor for translation-invariant (offset stencil) masks.

    Narrow stencils run the exact gather strategy (``row + offsets`` columns,
    out-of-range positions masked); wide, dense-enough stencils switch to the
    banded-GEMM strategy.  Both execute every leading batch axis in the same
    pass; extra score entries beyond the mask's nnz are reported per slice as
    ``wasted_dot_products``.  Passing ``row_chunk`` pins the gather strategy
    (and its chunk size) explicitly.
    """
    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    batch_shape = q.shape[:-2]
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    slices = batch_size(q)
    offsets = np.sort(np.asarray(offsets, dtype=np.int64))
    n_off = offsets.size

    q3 = q_acc.reshape(slices, length, head_dim)
    k3 = k_acc.reshape(slices, length, head_dim)
    v3 = v_acc.reshape(slices, length, value_dim)

    span = int(offsets[-1] - offsets[0]) + 1 if n_off else 0
    use_gemm = (
        row_chunk is None
        and n_off >= _GEMM_MIN_OFFSETS
        and span <= _GEMM_MAX_SPAN_RATIO * n_off
    )
    if use_gemm:
        outputs, row_max, row_sum, computed = _stencil_gemm(
            q3, k3, v3, offsets, length, scale_value
        )
    else:
        outputs, row_max, row_sum, computed = _stencil_gather(
            q3, k3, v3, offsets, length, scale_value, row_chunk
        )

    wasted = computed - nnz
    ops = OpCounts.for_edges(
        nnz, head_dim, value_dim, wasted_dot_products=wasted, batch=slices
    )
    return AttentionResult(
        output=outputs.reshape(batch_shape + (length, value_dim)).astype(q.dtype),
        row_max=np.where(np.isfinite(row_max), row_max, -np.inf)
        .reshape(batch_shape + (length,))
        .astype(np.float64),
        row_sum=row_sum.reshape(batch_shape + (length,)).astype(np.float64),
        ops=ops,
        algorithm=algorithm,
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Local and 1-D dilated kernels
# --------------------------------------------------------------------------- #
def local_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    window: int,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """Local (sliding window) attention: query ``i`` attends keys with ``|i-j| < window``."""
    validate_executor(executor)
    length = q.shape[-2]
    mask = LocalMask(window=window)
    meta = {"window": window, "nnz": mask.nnz(length), "sparsity_factor": mask.sparsity_factor(length)}
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="local", meta=meta
        )
    return _stencil_attention(
        q, k, v, mask.offsets(), mask.nnz(length),
        scale=scale, algorithm="local", meta=meta, row_chunk=row_chunk,
    )


def dilated1d_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    window: int,
    dilation: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """1-D dilated windowed attention (``|i-j| < window`` and ``|i-j| % (r+1) == 0``)."""
    validate_executor(executor)
    length = q.shape[-2]
    mask = Dilated1DMask(window=window, dilation=dilation)
    meta = {
        "window": window,
        "dilation": dilation,
        "nnz": mask.nnz(length),
        "sparsity_factor": mask.sparsity_factor(length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="dilated1d", meta=meta
        )
    return _stencil_attention(
        q, k, v, mask.offsets(), mask.nnz(length),
        scale=scale, algorithm="dilated1d", meta=meta, row_chunk=row_chunk,
    )


# --------------------------------------------------------------------------- #
# 2-D dilated kernel
# --------------------------------------------------------------------------- #
def dilated2d_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_size: int,
    dilation: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """2-D dilated (blocked) attention: dilation grid inside contiguous blocks."""
    validate_executor(executor)
    batch_shape = q.shape[:-2]
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    slices = batch_size(q)
    mask = Dilated2DMask(block_size=block_size, dilation=dilation)
    meta = {
        "block_size": block_size,
        "dilation": dilation,
        "nnz": mask.nnz(length),
        "sparsity_factor": mask.sparsity_factor(length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="dilated2d", meta=meta
        )

    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    q3 = q_acc.reshape(slices, length, head_dim)
    k3 = k_acc.reshape(slices, length, head_dim)
    v3 = v_acc.reshape(slices, length, value_dim)
    stride = dilation + 1
    outputs = np.zeros((slices, length, value_dim), dtype=acc_dtype)
    row_max = np.full((slices, length), -np.inf, dtype=acc_dtype)
    row_sum = np.zeros((slices, length), dtype=acc_dtype)
    for block_start in range(0, length, block_size):
        block_stop = min(block_start + block_size, length)
        idx = np.arange(block_start, block_stop, stride, dtype=np.int64)
        if idx.size == 0:
            continue
        scores = (q3[:, idx] @ k3[:, idx].transpose(0, 2, 1)) * scale_value
        block_max = scores.max(axis=-1)
        weights = np.exp(scores - block_max[..., None])
        block_sum = weights.sum(axis=-1)
        outputs[:, idx] = (weights @ v3[:, idx]) / block_sum[..., None]
        row_max[:, idx] = block_max
        row_sum[:, idx] = block_sum
    ops = OpCounts.for_edges(mask.nnz(length), head_dim, value_dim, batch=slices)
    return AttentionResult(
        output=outputs.reshape(batch_shape + (length, value_dim)).astype(q.dtype),
        row_max=row_max.reshape(batch_shape + (length,)).astype(np.float64),
        row_sum=row_sum.reshape(batch_shape + (length,)).astype(np.float64),
        ops=ops,
        algorithm="dilated2d",
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Global (non-local) kernel
# --------------------------------------------------------------------------- #
def global_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    global_tokens: Sequence[int],
    window: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Global attention for a designated token set.

    ``window >= 1`` mirrors the paper's *non-local* Global kernel: a local
    window of that reach is subtracted from the pattern, so composing this
    kernel with :func:`local_attention` of the same ``window`` covers the
    Longformer local+global mask with no edge processed twice.  ``window=0``
    disables the exclusion and executes the pure :class:`GlobalMask` pattern
    exactly — including the global rows' self-edges the non-local variant
    drops — which is what lets the engine dispatch a bare ``GlobalMask`` to
    this kernel instead of falling back to CSR.
    """
    validate_executor(executor)
    batch_shape = q.shape[:-2]
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    slices = batch_size(q)
    require(window >= 0, "window must be >= 0")
    mask = (
        GlobalMask(global_tokens)
        if window == 0
        else GlobalNonLocalMask(global_tokens, window=window)
    )
    mask.validate_length(length)
    nnz = mask.nnz(length)
    meta = {
        "global_tokens": list(mask.global_tokens),
        "window": window,
        "nnz": nnz,
        "sparsity_factor": nnz / float(length * length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="global", meta=meta
        )

    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    q3 = q_acc.reshape(slices, length, head_dim)
    k3 = k_acc.reshape(slices, length, head_dim)
    v3 = v_acc.reshape(slices, length, value_dim)
    globals_arr = np.asarray(mask.global_tokens, dtype=np.int64)
    g = globals_arr.size
    rows = np.arange(length, dtype=np.int64)

    outputs = np.zeros((slices, length, value_dim), dtype=acc_dtype)
    row_max = np.full((slices, length), -np.inf, dtype=acc_dtype)
    row_sum = np.zeros((slices, length), dtype=acc_dtype)
    computed = 0

    # (a) full rows of the global tokens, minus their own local window; the
    #     global rows and the non-global rows of part (b) are disjoint, so
    #     each part writes its rows directly — no state merging needed
    scores = (q3[:, globals_arr] @ k3.transpose(0, 2, 1)) * scale_value
    excluded = np.abs(rows[None, :] - globals_arr[:, None]) < window
    scores = np.where(excluded[None, :, :], -np.inf, scores)
    part_max = scores.max(axis=-1)
    safe_max = np.where(np.isfinite(part_max), part_max, 0.0)
    weights = np.exp(scores - safe_max[..., None])
    part_sum = weights.sum(axis=-1)
    part_out = weights @ v3
    safe = np.where(part_sum == 0, 1.0, part_sum)
    outputs[:, globals_arr] = part_out / safe[..., None]
    row_max[:, globals_arr] = part_max
    row_sum[:, globals_arr] = part_sum
    computed += g * length

    # (b) thin columns: every non-global row attends the global tokens outside
    #     its window
    non_global = np.setdiff1d(rows, globals_arr, assume_unique=False)
    if non_global.size and g:
        scores = (q3[:, non_global] @ k3[:, globals_arr].transpose(0, 2, 1)) * scale_value
        excluded = np.abs(non_global[:, None] - globals_arr[None, :]) < window
        scores = np.where(excluded[None, :, :], -np.inf, scores)
        part_max = scores.max(axis=-1)
        safe_max = np.where(np.isfinite(part_max), part_max, 0.0)
        weights = np.exp(scores - safe_max[..., None])
        part_sum = weights.sum(axis=-1)
        part_out = weights @ v3[:, globals_arr]
        safe = np.where(part_sum == 0, 1.0, part_sum)
        outputs[:, non_global] = part_out / safe[..., None]
        row_max[:, non_global] = part_max
        row_sum[:, non_global] = part_sum
        computed += int(non_global.size * g)

    wasted = max(0, computed - nnz)
    ops = OpCounts.for_edges(
        nnz, head_dim, value_dim, wasted_dot_products=wasted, batch=slices
    )
    return AttentionResult(
        output=outputs.reshape(batch_shape + (length, value_dim)).astype(q.dtype),
        row_max=np.where(np.isfinite(row_max), row_max, -np.inf)
        .reshape(batch_shape + (length,))
        .astype(np.float64),
        row_sum=row_sum.reshape(batch_shape + (length,)).astype(np.float64),
        ops=ops,
        algorithm="global",
        meta=meta,
    )
