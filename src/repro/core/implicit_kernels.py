"""Implicit-mask ("ordered sparsity") graph kernels: Local, Dilated-1D,
Dilated-2D and Global (paper Section IV-B).

These kernels receive only the pattern parameters ``Pa`` — window size,
dilation factor, block size, global token list — and compute each row's
neighbour indices on the fly, so no mask is ever stored.  That is what gives
them the FlashAttention-class memory footprint of Table II (Q/K/V/O plus two
``O(L)`` statistics vectors) while performing only ``O(Sf L^2 d)`` work.

Each kernel offers two executors:

* ``"streamed"`` — the literal Algorithm 1 loop (specification / verification).
* ``"vectorized"`` — a batched work-optimal evaluation.  Local and 1-D dilated
  kernels exploit translation invariance (a fixed offset stencil applied to a
  chunk of rows at a time); the 2-D dilated kernel iterates blocks; the global
  kernel splits the work into the dense global rows and the thin global
  columns, which is also what makes its load imbalance visible to the runtime
  model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.kernel_common import (
    finalize_result,
    prepare_inputs,
    streamed_attention,
    validate_executor,
)
from repro.core.online_softmax import OnlineSoftmaxState
from repro.core.result import AttentionResult, OpCounts
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.global_ import GlobalNonLocalMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.utils.validation import require

#: Upper bound on the number of gathered score entries held at once by the
#: chunked stencil executor (rows-per-chunk is derived from it).  Keeps the
#: working set cache-friendly regardless of window size.
_CHUNK_ELEMENT_BUDGET = 1 << 22


def _stencil_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    offsets: np.ndarray,
    nnz: int,
    *,
    scale: Optional[float],
    algorithm: str,
    meta: dict,
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """Vectorised executor for translation-invariant (offset stencil) masks.

    Rows are processed in chunks; for each chunk the neighbour columns are
    ``row + offsets`` with out-of-range positions masked to ``-inf`` before the
    softmax.  Only boundary rows carry masked positions, so the extra work is
    ``O(w^2)`` overall — asymptotically negligible and reported separately as
    ``wasted_dot_products``.
    """
    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    length, head_dim = q.shape
    value_dim = v.shape[1]
    offsets = np.asarray(offsets, dtype=np.int64)
    n_off = offsets.size

    if row_chunk is None:
        per_row = max(1, n_off * max(head_dim, value_dim))
        row_chunk = max(1, min(length, _CHUNK_ELEMENT_BUDGET // per_row))

    output = np.zeros((length, value_dim), dtype=acc_dtype)
    row_max = np.full(length, -np.inf, dtype=acc_dtype)
    row_sum = np.zeros(length, dtype=acc_dtype)
    computed = 0

    for start in range(0, length, row_chunk):
        stop = min(start + row_chunk, length)
        rows = np.arange(start, stop, dtype=np.int64)
        cols = rows[:, None] + offsets[None, :]
        valid = (cols >= 0) & (cols < length)
        safe_cols = np.clip(cols, 0, length - 1)
        scores = np.einsum("rd,rod->ro", q_acc[rows], k_acc[safe_cols]) * scale_value
        scores = np.where(valid, scores, -np.inf)
        chunk_max = scores.max(axis=1)
        weights = np.exp(scores - chunk_max[:, None])
        weights[~valid] = 0.0
        chunk_sum = weights.sum(axis=1)
        chunk_out = np.einsum("ro,rod->rd", weights, v_acc[safe_cols])
        safe = np.where(chunk_sum == 0, 1.0, chunk_sum)
        output[rows] = chunk_out / safe[:, None]
        row_max[rows] = chunk_max
        row_sum[rows] = chunk_sum
        computed += int(valid.size)

    wasted = computed - nnz
    ops = OpCounts.for_edges(nnz, head_dim, value_dim, wasted_dot_products=wasted)
    return AttentionResult(
        output=output.astype(q.dtype),
        row_max=np.where(np.isfinite(row_max), row_max, -np.inf).astype(np.float64),
        row_sum=row_sum.astype(np.float64),
        ops=ops,
        algorithm=algorithm,
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Local and 1-D dilated kernels
# --------------------------------------------------------------------------- #
def local_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    window: int,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """Local (sliding window) attention: query ``i`` attends keys with ``|i-j| < window``."""
    validate_executor(executor)
    length = q.shape[0]
    mask = LocalMask(window=window)
    meta = {"window": window, "nnz": mask.nnz(length), "sparsity_factor": mask.sparsity_factor(length)}
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="local", meta=meta
        )
    return _stencil_attention(
        q, k, v, mask.offsets(), mask.nnz(length),
        scale=scale, algorithm="local", meta=meta, row_chunk=row_chunk,
    )


def dilated1d_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    window: int,
    dilation: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
    row_chunk: Optional[int] = None,
) -> AttentionResult:
    """1-D dilated windowed attention (``|i-j| < window`` and ``|i-j| % (r+1) == 0``)."""
    validate_executor(executor)
    length = q.shape[0]
    mask = Dilated1DMask(window=window, dilation=dilation)
    meta = {
        "window": window,
        "dilation": dilation,
        "nnz": mask.nnz(length),
        "sparsity_factor": mask.sparsity_factor(length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="dilated1d", meta=meta
        )
    return _stencil_attention(
        q, k, v, mask.offsets(), mask.nnz(length),
        scale=scale, algorithm="dilated1d", meta=meta, row_chunk=row_chunk,
    )


# --------------------------------------------------------------------------- #
# 2-D dilated kernel
# --------------------------------------------------------------------------- #
def dilated2d_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_size: int,
    dilation: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """2-D dilated (blocked) attention: dilation grid inside contiguous blocks."""
    validate_executor(executor)
    length, head_dim = q.shape
    value_dim = v.shape[1]
    mask = Dilated2DMask(block_size=block_size, dilation=dilation)
    meta = {
        "block_size": block_size,
        "dilation": dilation,
        "nnz": mask.nnz(length),
        "sparsity_factor": mask.sparsity_factor(length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="dilated2d", meta=meta
        )

    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    stride = dilation + 1
    output = np.zeros((length, value_dim), dtype=acc_dtype)
    row_max = np.full(length, -np.inf, dtype=acc_dtype)
    row_sum = np.zeros(length, dtype=acc_dtype)
    for block_start in range(0, length, block_size):
        block_stop = min(block_start + block_size, length)
        idx = np.arange(block_start, block_stop, stride, dtype=np.int64)
        if idx.size == 0:
            continue
        scores = (q_acc[idx] @ k_acc[idx].T) * scale_value
        block_max = scores.max(axis=1)
        weights = np.exp(scores - block_max[:, None])
        block_sum = weights.sum(axis=1)
        output[idx] = (weights @ v_acc[idx]) / block_sum[:, None]
        row_max[idx] = block_max
        row_sum[idx] = block_sum
    ops = OpCounts.for_edges(mask.nnz(length), head_dim, value_dim)
    return AttentionResult(
        output=output.astype(q.dtype),
        row_max=row_max.astype(np.float64),
        row_sum=row_sum.astype(np.float64),
        ops=ops,
        algorithm="dilated2d",
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Global (non-local) kernel
# --------------------------------------------------------------------------- #
def global_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    global_tokens: Sequence[int],
    window: int = 1,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Global (non-local) attention for a designated token set.

    Mirrors the paper's Global kernel: attention indices are computed for the
    global pattern and the local-window entries are subtracted, so composing
    this kernel with :func:`local_attention` of the same ``window`` covers the
    Longformer local+global mask with no edge processed twice.
    """
    validate_executor(executor)
    length, head_dim = q.shape
    value_dim = v.shape[1]
    mask = GlobalNonLocalMask(global_tokens, window=window)
    mask.validate_length(length)
    nnz = mask.nnz(length)
    meta = {
        "global_tokens": list(mask.global_tokens),
        "window": window,
        "nnz": nnz,
        "sparsity_factor": nnz / float(length * length),
    }
    if executor == "streamed":
        return streamed_attention(
            q, k, v, lambda i: mask.neighbors(i, length), scale=scale, algorithm="global", meta=meta
        )

    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    globals_arr = np.asarray(mask.global_tokens, dtype=np.int64)
    g = globals_arr.size
    state = OnlineSoftmaxState.initialise(length, value_dim, acc_dtype)
    computed = 0

    # (a) full rows of the global tokens, excluding their own local window
    rows = np.arange(length, dtype=np.int64)
    for token in globals_arr:
        scores = (q_acc[token] @ k_acc.T) * scale_value
        excluded = np.abs(rows - token) < window
        scores = np.where(excluded, -np.inf, scores)
        finite = np.isfinite(scores)
        if finite.any():
            t_max = scores[finite].max()
            weights = np.where(finite, np.exp(scores - t_max), 0.0)
            t_sum = weights.sum()
            t_acc = weights @ v_acc
            state.update_block(
                np.array([token]),
                np.array([t_max], dtype=acc_dtype),
                np.array([t_sum], dtype=acc_dtype),
                t_acc[None, :],
            )
        computed += length

    # (b) thin columns: every non-global row attends the global tokens outside
    #     its window
    non_global = np.setdiff1d(rows, globals_arr, assume_unique=False)
    if non_global.size and g:
        scores = (q_acc[non_global] @ k_acc[globals_arr].T) * scale_value
        excluded = np.abs(non_global[:, None] - globals_arr[None, :]) < window
        scores = np.where(excluded, -np.inf, scores)
        part_max = scores.max(axis=1)
        finite = np.isfinite(part_max)
        safe_max = np.where(finite, part_max, 0.0)
        weights = np.exp(np.where(np.isfinite(scores), scores - safe_max[:, None], -np.inf))
        part_sum = weights.sum(axis=1)
        part_acc = weights @ v_acc[globals_arr]
        touched = finite
        state.update_block(
            non_global[touched],
            part_max[touched],
            part_sum[touched],
            part_acc[touched],
        )
        computed += int(non_global.size * g)

    wasted = max(0, computed - nnz)
    ops = OpCounts.for_edges(nnz, head_dim, value_dim, wasted_dot_products=wasted)
    return finalize_result(
        state, out_dtype=q.dtype, ops=ops, algorithm="global", meta=meta
    )
