"""Multi-head and batched wrappers around the single-head kernels.

The paper's kernels are single-batch and single-headed "to facilitate focus on
the experiments", noting that the multi-head extension is trivial: slice the
model dimension into heads, run the kernel per head, concatenate.  These
wrappers implement that extension (plus a batch dimension) so the library can
drop into a standard transformer layer, and they are what the Llama-3-shaped
rows of Table II (32 heads, d_model = 4096) exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.result import AttentionResult, OpCounts
from repro.utils.validation import require

#: A single-head kernel: ``(q, k, v) -> AttentionResult`` with Q/K/V of shape (L, d_head).
HeadKernel = Callable[[np.ndarray, np.ndarray, np.ndarray], AttentionResult]


@dataclass
class MultiHeadResult:
    """Concatenated multi-head output plus the per-head results."""

    output: np.ndarray
    head_results: List[AttentionResult]

    @property
    def num_heads(self) -> int:
        return len(self.head_results)

    @property
    def ops(self) -> OpCounts:
        total = OpCounts()
        for result in self.head_results:
            total = total + result.ops
        return total


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``(L, d_model)`` into ``(num_heads, L, d_model // num_heads)``."""
    require(x.ndim == 2, "expected a (L, d_model) matrix")
    length, d_model = x.shape
    require(d_model % num_heads == 0, "d_model must be divisible by num_heads")
    head_dim = d_model // num_heads
    return np.ascontiguousarray(x.reshape(length, num_heads, head_dim).transpose(1, 0, 2))


def merge_heads(heads: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`: ``(H, L, d_head)`` back to ``(L, H * d_head)``."""
    require(heads.ndim == 3, "expected a (H, L, d_head) array")
    num_heads, length, head_dim = heads.shape
    return np.ascontiguousarray(heads.transpose(1, 0, 2).reshape(length, num_heads * head_dim))


def multi_head_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    kernel: HeadKernel,
    *,
    num_heads: int,
) -> MultiHeadResult:
    """Run a single-head kernel independently on every head and concatenate.

    ``q``, ``k`` and ``v`` are ``(L, d_model)``; the same mask (implied by the
    kernel closure) is shared across heads, which matches how the sparse
    attention transformers of the paper apply their patterns.
    """
    q_heads = split_heads(q, num_heads)
    k_heads = split_heads(k, num_heads)
    v_heads = split_heads(v, num_heads)
    results = [
        kernel(q_heads[h], k_heads[h], v_heads[h]) for h in range(num_heads)
    ]
    stacked = np.stack([r.output for r in results], axis=0)
    return MultiHeadResult(output=merge_heads(stacked), head_results=results)


def batched_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    kernel: HeadKernel,
) -> np.ndarray:
    """Apply a single-head kernel independently over a leading batch dimension."""
    require(q.ndim == 3 and k.ndim == 3 and v.ndim == 3, "expected (B, L, d) inputs")
    require(q.shape[0] == k.shape[0] == v.shape[0], "batch sizes must match")
    outputs = [kernel(q[b], k[b], v[b]).output for b in range(q.shape[0])]
    return np.stack(outputs, axis=0)


@dataclass
class AttentionLayer:
    """A minimal transformer attention layer with learnable-shaped projections.

    Holds the ``W_Q``, ``W_K``, ``W_V`` and output projection matrices of
    Section II-A and applies a sparse attention kernel between them.  Weights
    are plain numpy arrays (this library does not train; the layer exists so
    the examples can demonstrate end-to-end integration of the kernels in a
    transformer block).
    """

    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    num_heads: int

    @classmethod
    def initialise(
        cls,
        d_model: int,
        num_heads: int,
        *,
        seed: int = 0,
        dtype=np.float32,
    ) -> "AttentionLayer":
        """Xavier-style random initialisation of the projection matrices."""
        require(d_model % num_heads == 0, "d_model must be divisible by num_heads")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(d_model)
        draw = lambda: (rng.standard_normal((d_model, d_model)) * scale).astype(dtype)  # noqa: E731
        return cls(w_q=draw(), w_k=draw(), w_v=draw(), w_o=draw(), num_heads=num_heads)

    @property
    def d_model(self) -> int:
        return int(self.w_q.shape[0])

    def __call__(self, x: np.ndarray, kernel: HeadKernel) -> np.ndarray:
        """Project ``x`` to Q/K/V, apply the kernel per head, project the output."""
        require(x.ndim == 2 and x.shape[1] == self.d_model, "input must be (L, d_model)")
        q = x @ self.w_q
        k = x @ self.w_k
        v = x @ self.w_v
        attended = multi_head_attention(q, k, v, kernel, num_heads=self.num_heads)
        return attended.output @ self.w_o
