"""Multi-head and batched wrappers around the batched kernels.

The paper's kernels are presented single-batch and single-headed "to
facilitate focus on the experiments", noting that the multi-head extension is
trivial.  Since every kernel in :mod:`repro.core` now executes arbitrary
leading ``(..., L, d)`` axes in fused vectorized passes, these wrappers are a
*thin reshape layer*: slice the model dimension into heads, hand the whole
``(..., H, L, d_head)`` stack to the kernel in **one** call, and merge the
head axis back — no per-head Python loop.  This is what the Llama-3-shaped
rows of Table II (32 heads, d_model = 4096) exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.result import AttentionResult, OpCounts
from repro.utils.validation import require

#: An attention kernel: ``(q, k, v) -> AttentionResult`` with Q/K/V of shape
#: ``(..., L, d_head)``.  Kernels built on :mod:`repro.core` execute all
#: leading axes in one call; single-head-only callables (accepting just
#: ``(L, d_head)``) are still supported via a per-head fallback loop.
HeadKernel = Callable[[np.ndarray, np.ndarray, np.ndarray], AttentionResult]


@dataclass
class MultiHeadResult:
    """Concatenated multi-head output plus the underlying batched result.

    ``result`` is the kernel's :class:`~repro.core.result.AttentionResult`
    over the ``(..., H, L, d_head)`` stack; ``head_results`` views it per
    head for callers that inspect individual heads.
    """

    output: np.ndarray
    result: AttentionResult

    @property
    def num_heads(self) -> int:
        return int(self.result.output.shape[-3])

    @property
    def ops(self) -> OpCounts:
        return self.result.ops

    @property
    def head_results(self) -> List[AttentionResult]:
        """Per-head slices of the batched result (ops split evenly)."""
        heads = self.num_heads
        per_head_ops = self.result.ops.per_slice(heads) if heads > 1 else self.result.ops
        return [
            AttentionResult(
                output=self.result.output[..., h, :, :],
                row_max=self.result.row_max[..., h, :],
                row_sum=self.result.row_sum[..., h, :],
                ops=per_head_ops,
                algorithm=self.result.algorithm,
                meta=dict(self.result.meta),
            )
            for h in range(heads)
        ]


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``(..., L, d_model)`` into ``(..., num_heads, L, d_model // num_heads)``.

    Head ``h`` is the contiguous feature block ``x[..., h*d_head:(h+1)*d_head]``.
    """
    require(x.ndim >= 2, "expected a (..., L, d_model) array")
    length, d_model = x.shape[-2], x.shape[-1]
    require(d_model % num_heads == 0, "d_model must be divisible by num_heads")
    head_dim = d_model // num_heads
    split = x.reshape(x.shape[:-1] + (num_heads, head_dim))
    return np.ascontiguousarray(np.swapaxes(split, -2, -3))


def merge_heads(heads: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`: ``(..., H, L, d_head)`` back to ``(..., L, H*d_head)``."""
    require(heads.ndim >= 3, "expected a (..., H, L, d_head) array")
    num_heads, length, head_dim = heads.shape[-3], heads.shape[-2], heads.shape[-1]
    merged = np.swapaxes(heads, -2, -3)
    return np.ascontiguousarray(merged.reshape(heads.shape[:-3] + (length, num_heads * head_dim)))


def _per_head_fallback(
    q_heads: np.ndarray, k_heads: np.ndarray, v_heads: np.ndarray, kernel: HeadKernel
) -> AttentionResult:
    """Execute a single-head-only kernel head by head and restack the results."""
    require(
        q_heads.ndim == 3,
        "per-head fallback kernels require 2-D (L, d_model) layer inputs",
    )
    results = [kernel(q_heads[h], k_heads[h], v_heads[h]) for h in range(q_heads.shape[0])]
    ops = OpCounts()
    for result in results:
        ops = ops + result.ops
    return AttentionResult(
        output=np.stack([r.output for r in results], axis=0),
        row_max=np.stack([r.row_max for r in results], axis=0),
        row_sum=np.stack([r.row_sum for r in results], axis=0),
        ops=ops,
        algorithm=results[0].algorithm,
        meta=dict(results[0].meta),
    )


def multi_head_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    kernel: HeadKernel,
    *,
    num_heads: int,
) -> MultiHeadResult:
    """Split the model dimension into heads and run the kernel once on the stack.

    ``q``, ``k`` and ``v`` are ``(..., L, d_model)``; the head axis is
    inserted by a reshape and the kernel executes the full
    ``(..., H, L, d_head)`` batch in a single vectorized call — the same mask
    (implied by the kernel closure) is shared across heads, matching how the
    sparse attention transformers of the paper apply their patterns.  Kernels
    that only accept ``(L, d_head)`` inputs fall back to a per-head loop.
    """
    q_heads = split_heads(q, num_heads)
    k_heads = split_heads(k, num_heads)
    v_heads = split_heads(v, num_heads)
    expected_shape = q_heads.shape[:-1] + (v_heads.shape[-1],)
    try:
        result = kernel(q_heads, k_heads, v_heads)
        batched_ok = (
            isinstance(result, AttentionResult) and result.output.shape == expected_shape
        )
    except ValueError:
        # a single-head-only kernel rejecting the (H, L, d_head) stack gets
        # the per-head loop; anything else (batched inputs, bad kernel
        # parameters) re-raises from the loop, surfacing the real error
        if q_heads.ndim != 3:
            raise
        batched_ok = False
    if not batched_ok:
        result = _per_head_fallback(q_heads, k_heads, v_heads, kernel)
    return MultiHeadResult(output=merge_heads(result.output), result=result)


def batched_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    kernel: HeadKernel,
) -> np.ndarray:
    """Apply a kernel over a leading batch dimension in one vectorized call."""
    require(q.ndim >= 3 and k.ndim >= 3 and v.ndim >= 3, "expected (B, ..., L, d) inputs")
    require(q.shape[0] == k.shape[0] == v.shape[0], "batch sizes must match")
    return kernel(q, k, v).output


@dataclass
class AttentionLayer:
    """A minimal transformer attention layer with learnable-shaped projections.

    Holds the ``W_Q``, ``W_K``, ``W_V`` and output projection matrices of
    Section II-A and applies a sparse attention kernel between them.  Weights
    are plain numpy arrays (this library does not train; the layer exists so
    the examples can demonstrate end-to-end integration of the kernels in a
    transformer block).
    """

    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    num_heads: int

    @classmethod
    def initialise(
        cls,
        d_model: int,
        num_heads: int,
        *,
        seed: int = 0,
        dtype=np.float32,
    ) -> "AttentionLayer":
        """Xavier-style random initialisation of the projection matrices."""
        require(d_model % num_heads == 0, "d_model must be divisible by num_heads")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(d_model)
        draw = lambda: (rng.standard_normal((d_model, d_model)) * scale).astype(dtype)  # noqa: E731
        return cls(w_q=draw(), w_k=draw(), w_v=draw(), w_o=draw(), num_heads=num_heads)

    @property
    def d_model(self) -> int:
        return int(self.w_q.shape[0])

    def __call__(self, x: np.ndarray, kernel: HeadKernel) -> np.ndarray:
        """Project ``x`` to Q/K/V, apply the kernel over all heads, project the output.

        ``x`` is ``(..., L, d_model)``: a single sequence or any batch stack;
        projections and attention both broadcast over the leading axes.
        """
        require(
            x.ndim >= 2 and x.shape[-1] == self.d_model, "input must be (..., L, d_model)"
        )
        q = x @ self.w_q
        k = x @ self.w_k
        v = x @ self.w_v
        attended = multi_head_attention(q, k, v, kernel, num_heads=self.num_heads)
        return attended.output @ self.w_o
