"""Result and operation-count containers shared by every attention kernel.

Each kernel returns an :class:`AttentionResult` carrying the output matrix,
the final online-softmax statistics (needed to merge sequentially executed
kernels, Section V-F) and an :class:`OpCounts` record used by the work model
to verify the work-optimality claim of Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class OpCounts:
    """Operation counts of one kernel invocation.

    Attributes
    ----------
    dot_products:
        Number of query-key dot products evaluated — for a truly sparse kernel
        this equals the mask's nnz; for dense kernels it is ``L^2`` regardless
        of the mask.
    flops:
        Floating point operations: ``2 d`` per dot product plus ``2 d`` per
        value accumulation plus softmax bookkeeping.
    exp_evaluations:
        Number of exponentials evaluated by the (online) softmax.
    search_steps:
        Binary-search probes used to locate row bounds (non-zero only for the
        COO kernel, whose in-kernel search the paper identifies as its
        bottleneck).
    wasted_dot_products:
        Dot products spent on mask zeros (non-zero for dense and block-sparse
        baselines; always 0 for the graph kernels).
    """

    dot_products: int = 0
    flops: int = 0
    exp_evaluations: int = 0
    search_steps: int = 0
    wasted_dot_products: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            dot_products=self.dot_products + other.dot_products,
            flops=self.flops + other.flops,
            exp_evaluations=self.exp_evaluations + other.exp_evaluations,
            search_steps=self.search_steps + other.search_steps,
            wasted_dot_products=self.wasted_dot_products + other.wasted_dot_products,
        )

    @classmethod
    def for_edges(
        cls,
        num_edges: int,
        head_dim: int,
        value_dim: Optional[int] = None,
        *,
        search_steps: int = 0,
        wasted_dot_products: int = 0,
    ) -> "OpCounts":
        """Op counts of a truly sparse kernel touching ``num_edges`` mask non-zeros."""
        value_dim = head_dim if value_dim is None else value_dim
        computed = num_edges + wasted_dot_products
        return cls(
            dot_products=computed,
            flops=2 * computed * head_dim + 2 * computed * value_dim,
            exp_evaluations=computed,
            search_steps=search_steps,
            wasted_dot_products=wasted_dot_products,
        )

    @classmethod
    def for_dense(cls, length: int, head_dim: int, nnz: Optional[int] = None) -> "OpCounts":
        """Op counts of a dense kernel on an ``L x L`` score matrix.

        ``nnz`` (if given) is the number of mask non-zeros, used to report how
        much of the dense work was wasted on masked-out entries.
        """
        total = length * length
        wasted = 0 if nnz is None else total - nnz
        return cls(
            dot_products=total,
            flops=2 * total * head_dim + 2 * total * head_dim,
            exp_evaluations=total,
            search_steps=0,
            wasted_dot_products=wasted,
        )


@dataclass
class AttentionResult:
    """Output of one attention kernel invocation.

    ``row_max`` / ``row_sum`` are the final online-softmax statistics (``m``
    and ``l`` of Algorithm 1); together with ``output`` they are sufficient to
    merge this result with another kernel's result over a disjoint mask.
    """

    output: np.ndarray
    row_max: np.ndarray
    row_sum: np.ndarray
    ops: OpCounts = field(default_factory=OpCounts)
    algorithm: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return int(self.output.shape[0])

    @property
    def value_dim(self) -> int:
        return int(self.output.shape[1])

    def empty_rows(self) -> np.ndarray:
        """Rows that received no attention mass (fully masked queries)."""
        return np.flatnonzero(self.row_sum == 0)

    def cast(self, dtype) -> "AttentionResult":
        """Return a copy with the output cast to ``dtype`` (stats keep full precision)."""
        return AttentionResult(
            output=self.output.astype(dtype),
            row_max=self.row_max,
            row_sum=self.row_sum,
            ops=self.ops,
            algorithm=self.algorithm,
            meta=dict(self.meta),
        )
