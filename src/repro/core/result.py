"""Result and operation-count containers shared by every attention kernel.

Each kernel returns an :class:`AttentionResult` carrying the output matrix,
the final online-softmax statistics (needed to merge sequentially executed
kernels, Section V-F) and an :class:`OpCounts` record used by the work model
to verify the work-optimality claim of Section IV-B.

Batch and head dimensions are first-class: a kernel invoked on
``(..., L, d)`` inputs returns an ``AttentionResult`` whose ``output`` keeps
the leading axes (``(..., L, d_v)``), whose statistics are ``(..., L)`` and
whose :class:`OpCounts` carry the total over every leading slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class OpCounts:
    """Operation counts of one kernel invocation.

    Counts are totals over every batch/head slice the invocation executed —
    a kernel run on ``(B, H, L, d)`` inputs reports ``B·H`` times the counts
    of one ``(L, d)`` slice.

    Attributes
    ----------
    dot_products:
        Number of query-key dot products evaluated — for a truly sparse kernel
        this equals the mask's nnz (times the batch size); for dense kernels
        it is ``L^2`` per slice regardless of the mask.
    flops:
        Floating point operations: ``2 d`` per dot product plus ``2 d`` per
        value accumulation plus softmax bookkeeping.
    exp_evaluations:
        Number of exponentials evaluated by the (online) softmax.
    search_steps:
        Binary-search probes used to locate row bounds (non-zero only for the
        COO kernel, whose in-kernel search the paper identifies as its
        bottleneck).
    wasted_dot_products:
        Dot products spent on mask zeros (non-zero for dense and block-sparse
        baselines; always 0 for the graph kernels).
    """

    dot_products: int = 0
    flops: int = 0
    exp_evaluations: int = 0
    search_steps: int = 0
    wasted_dot_products: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            dot_products=self.dot_products + other.dot_products,
            flops=self.flops + other.flops,
            exp_evaluations=self.exp_evaluations + other.exp_evaluations,
            search_steps=self.search_steps + other.search_steps,
            wasted_dot_products=self.wasted_dot_products + other.wasted_dot_products,
        )

    def scaled(self, factor: int) -> "OpCounts":
        """Counts of ``factor`` identical invocations (batch replication)."""
        return OpCounts(
            dot_products=self.dot_products * factor,
            flops=self.flops * factor,
            exp_evaluations=self.exp_evaluations * factor,
            search_steps=self.search_steps * factor,
            wasted_dot_products=self.wasted_dot_products * factor,
        )

    def per_slice(self, batch: int) -> "OpCounts":
        """Counts of one slice of a ``batch``-wide invocation (inverse of ``scaled``)."""
        return OpCounts(
            dot_products=self.dot_products // batch,
            flops=self.flops // batch,
            exp_evaluations=self.exp_evaluations // batch,
            search_steps=self.search_steps // batch,
            wasted_dot_products=self.wasted_dot_products // batch,
        )

    @classmethod
    def for_edges(
        cls,
        num_edges: int,
        head_dim: int,
        value_dim: Optional[int] = None,
        *,
        search_steps: int = 0,
        wasted_dot_products: int = 0,
        batch: int = 1,
    ) -> "OpCounts":
        """Op counts of a truly sparse kernel touching ``num_edges`` mask non-zeros.

        ``batch`` multiplies every counter — the counts of one slice replicated
        over the leading batch/head axes of a batched invocation.
        """
        value_dim = head_dim if value_dim is None else value_dim
        computed = num_edges + wasted_dot_products
        return cls(
            dot_products=computed,
            flops=2 * computed * head_dim + 2 * computed * value_dim,
            exp_evaluations=computed,
            search_steps=search_steps,
            wasted_dot_products=wasted_dot_products,
        ).scaled(batch)

    @classmethod
    def for_dense(
        cls, length: int, head_dim: int, nnz: Optional[int] = None, *, batch: int = 1
    ) -> "OpCounts":
        """Op counts of a dense kernel on an ``L x L`` score matrix.

        ``nnz`` (if given) is the number of mask non-zeros per slice, used to
        report how much of the dense work was wasted on masked-out entries;
        ``batch`` multiplies every counter.
        """
        total = length * length
        wasted = 0 if nnz is None else total - nnz
        return cls(
            dot_products=total,
            flops=2 * total * head_dim + 2 * total * head_dim,
            exp_evaluations=total,
            search_steps=0,
            wasted_dot_products=wasted,
        ).scaled(batch)


@dataclass
class AttentionResult:
    """Output of one attention kernel invocation.

    ``output`` is ``(..., L, d_v)`` with the same leading batch/head axes the
    inputs carried; ``row_max`` / ``row_sum`` are the final online-softmax
    statistics (``m`` and ``l`` of Algorithm 1) of shape ``(..., L)``.
    Together with ``output`` they are sufficient to merge this result with
    another kernel's result over a disjoint mask.
    """

    output: np.ndarray
    row_max: np.ndarray
    row_sum: np.ndarray
    ops: OpCounts = field(default_factory=OpCounts)
    algorithm: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return int(self.output.shape[-2])

    @property
    def value_dim(self) -> int:
        return int(self.output.shape[-1])

    @property
    def batch_shape(self) -> Tuple[int, ...]:
        """Leading batch/head axes of the output (empty for single-slice runs)."""
        return tuple(int(s) for s in self.output.shape[:-2])

    @property
    def batch_size(self) -> int:
        """Number of ``(L, d)`` slices this result covers."""
        size = 1
        for s in self.batch_shape:
            size *= s
        return size

    def empty_rows(self) -> np.ndarray:
        """Rows that received no attention mass (fully masked queries).

        For a single-slice result this is a flat index vector; for a batched
        result it is an ``(n, ndim)`` index array (one row per empty query,
        ``np.argwhere`` convention).
        """
        if self.row_sum.ndim == 1:
            return np.flatnonzero(self.row_sum == 0)
        return np.argwhere(self.row_sum == 0)

    def slice_batch(self, index) -> "AttentionResult":
        """Result of one slice along the leading batch axis.

        Op counts are split evenly over that axis (every slice of one batched
        kernel call executes the same mask, so the split is exact); any inner
        batch axes stay with the slice, as do their op counts.
        """
        leading = int(self.output.shape[0]) if self.output.ndim > 2 else 1
        return AttentionResult(
            output=self.output[index],
            row_max=self.row_max[index],
            row_sum=self.row_sum[index],
            ops=self.ops.per_slice(leading) if leading > 1 else self.ops,
            algorithm=self.algorithm,
            meta=dict(self.meta),
        )

    def cast(self, dtype) -> "AttentionResult":
        """Return a copy with the output cast to ``dtype`` (stats keep full precision)."""
        return AttentionResult(
            output=self.output.astype(dtype),
            row_max=self.row_max,
            row_sum=self.row_sum,
            ops=self.ops,
            algorithm=self.algorithm,
            meta=dict(self.meta),
        )
