"""Kernel dispatch engine.

:class:`GraphAttentionEngine` is the user-facing entry point: given Q/K/V and
a mask specification it picks the most specialised kernel available —
the implicit ordered-sparsity kernels when the spec advertises a
``kernel_hint``, a sequence of specialised kernels for disjoint composites, or
the explicit CSR/COO kernels for arbitrary masks — and returns the
:class:`~repro.core.result.AttentionResult` together with the op counts the
work model consumes.  The dense SDP and FlashAttention baselines are exposed
through the same interface so experiments can swap algorithms by name.

Dispatch itself is delegated to the execution-plan compiler in
:mod:`repro.serve.plan`: :meth:`GraphAttentionEngine.plan` compiles a mask and
length into an immutable :class:`~repro.serve.plan.ExecutionPlan` and
:meth:`GraphAttentionEngine.run` executes it, so the engine and the serving
layer (:class:`~repro.serve.scheduler.AttentionServer`) share one dispatch
brain.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs.recorder import NULL_OBS, Observability
from repro.core.dense import sdp_attention
from repro.core.explicit_kernels import coo_attention, csr_attention, materialize_explicit
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import (
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)
from repro.core.result import AttentionResult, OpCounts
from repro.masks.base import MaskSpec
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

#: Algorithms the engine can be asked for explicitly.
ALGORITHMS = (
    "auto",
    "sdp",
    "flash",
    "coo",
    "csr",
    "local",
    "dilated1d",
    "dilated2d",
    "global",
    "composed",
)

MaskInput = Union[MaskSpec, np.ndarray, COOMatrix, CSRMatrix, None]

#: Single dispatch table for the implicit (ordered-sparsity) kernels: spec
#: type -> runner extracting the spec's parameters.  The kernel *name* comes
#: from the spec's own ``kernel_hint``, so adding a specialised mask type
#: means adding one entry here and declaring the hint on the class.
SPECIALISED_KERNELS = {
    LocalMask: lambda q, k, v, s, scale, executor: local_attention(
        q, k, v, s.window, scale=scale, executor=executor
    ),
    Dilated1DMask: lambda q, k, v, s, scale, executor: dilated1d_attention(
        q, k, v, s.window, s.dilation, scale=scale, executor=executor
    ),
    Dilated2DMask: lambda q, k, v, s, scale, executor: dilated2d_attention(
        q, k, v, s.block_size, s.dilation, scale=scale, executor=executor
    ),
    GlobalNonLocalMask: lambda q, k, v, s, scale, executor: global_attention(
        q, k, v, s.global_tokens, s.window, scale=scale, executor=executor
    ),
    # window=0 disables the local-window exclusion, so the kernel executes the
    # pure global pattern exactly — self-edges on the global rows included
    GlobalMask: lambda q, k, v, s, scale, executor: global_attention(
        q, k, v, s.global_tokens, 0, scale=scale, executor=executor
    ),
}


#: Spec types the planner may execute implicitly with numerics identical to
#: the spec's own edge set.  GlobalMask dispatches to the global kernel with
#: ``window=0`` (no exclusion), which keeps the self-attention edges of the
#: global rows, so it is exactly plannable alongside the non-local variant.
PLANNABLE_SPECS = (LocalMask, Dilated1DMask, Dilated2DMask, GlobalNonLocalMask, GlobalMask)


def _kernel_runner(spec: MaskSpec):
    runner = SPECIALISED_KERNELS.get(type(spec))
    if runner is not None:
        return runner
    for spec_type, candidate in SPECIALISED_KERNELS.items():
        if isinstance(spec, spec_type):
            return candidate
    raise TypeError(f"no specialised kernel for {type(spec).__name__}")


def has_specialised_kernel(spec: MaskSpec) -> bool:
    """Whether the planner may run ``spec`` through an implicit ordered kernel."""
    return isinstance(spec, PLANNABLE_SPECS)


def composable_in_plan(spec: MaskSpec) -> bool:
    """Whether a union component may join an auto-composed plan.

    Since every specialised kernel now executes its spec's edge set exactly
    (the global kernel's ``window=0`` mode covers :class:`GlobalMask`'s
    self-edges), this coincides with :func:`has_specialised_kernel`.
    """
    return has_specialised_kernel(spec)


def spec_kernel_name(spec: MaskSpec) -> str:
    """Name of the implicit kernel that executes ``spec`` (its ``kernel_hint``)."""
    _kernel_runner(spec)  # raises TypeError for specs without a kernel
    return spec.kernel_hint


def run_spec_kernel(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    spec: MaskSpec,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Execute ``spec`` with its specialised implicit kernel."""
    return _kernel_runner(spec)(q, k, v, spec, scale, executor)


@dataclass
class GraphAttentionEngine:
    """Dispatches attention computations to the most appropriate kernel.

    Parameters
    ----------
    executor:
        ``"vectorized"`` (default) or ``"streamed"`` — forwarded to the graph
        kernels.
    scale:
        Attention scale; ``None`` means ``1/sqrt(d_k)``.
    prefer_composition:
        When dispatching a :class:`UnionMask` whose components all have
        specialised kernels, run them sequentially and merge (the paper's
        "Loc + Glo" strategy) instead of collapsing to a single CSR call.
    """

    executor: str = "vectorized"
    scale: Optional[float] = None
    prefer_composition: bool = True
    history: List[AttentionResult] = field(default_factory=list, repr=False)
    #: observability recorder; the shared no-op recorder unless one is injected
    obs: Observability = field(default=NULL_OBS, repr=False)

    # ------------------------------------------------------------------ #
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskInput = None,
        *,
        algorithm: str = "auto",
    ) -> AttentionResult:
        """Compute attention for ``mask`` using ``algorithm`` (or auto-dispatch).

        ``q``/``k``/``v`` are ``(..., L, d)``: a bare single-head slice or any
        stack of batch/head slices sharing one mask — both run through the
        same plan-compile-and-execute path.
        """
        require(algorithm in ALGORITHMS, f"unknown algorithm {algorithm!r}")
        started = time.perf_counter() if self.obs.enabled else 0.0
        if algorithm == "auto":
            # one-shot dispatch: the plan is executed and discarded, so skip
            # deriving a cache key (content-hashing an explicit mask is the
            # only per-call cost plans would add over the old direct dispatch)
            result = self.plan(mask, q.shape[-2], compute_key=False).execute(q, k, v)
        else:
            result = self._run_named(q, k, v, mask, algorithm)
        self.history.append(result)
        if self.obs.enabled:
            self.obs.engine_dispatches.labels(kind=algorithm).inc()
            self.obs.kernel_seconds.labels(plan=algorithm, phase="engine").observe(
                time.perf_counter() - started
            )
        return result

    def plan(
        self,
        mask: MaskInput,
        length: int,
        *,
        algorithm: str = "auto",
        device=None,
        head_dim: Optional[int] = None,
        batch: int = 1,
        mode: str = "full",
        compute_key: bool = True,
    ):
        """Compile ``mask`` at ``length`` into an immutable execution plan.

        The plan pins the kernel choice and precomputes any CSR remainders for
        composed unions, so it can be cached and re-executed for many Q/K/V
        batches without repeating the dispatch or mask-materialisation work
        (see :mod:`repro.serve`).  ``device`` (a
        :class:`~repro.perfmodel.devices.DeviceSpec`) enables the predicted
        runtime attached to the plan, with ``batch`` slices (``B·H``) scaling
        the estimate; ``compute_key=False`` skips cache-key derivation for
        plans that will never be cached.  ``mode="decode"`` compiles an
        incremental-decode plan instead (see :mod:`repro.serve.decode`).
        """
        from repro.serve.plan import compile_plan

        extra = {} if compute_key else {"key": None}
        return compile_plan(
            mask,
            length,
            executor=self.executor,
            scale=self.scale,
            prefer_composition=self.prefer_composition,
            algorithm=algorithm,
            device=device,
            head_dim=head_dim,
            batch=batch,
            mode=mode,
            **extra,
        )

    # ------------------------------------------------------------------ #
    # Incremental autoregressive decoding
    # ------------------------------------------------------------------ #
    def start_decode(
        self, mask: MaskInput, horizon: int, *, retain_outputs: bool = False
    ):
        """Open a :class:`~repro.serve.decode.DecodeSession` for ``mask``.

        The session holds a growing KV cache and compiles a decode-mode plan
        with this engine's execution knobs; feed it a prompt via
        ``session.prefill`` and new tokens via :meth:`decode_step`.
        ``horizon`` is the pattern length mask rows are evaluated at (the
        maximum number of tokens the session may hold).
        """
        from repro.serve.decode import DecodeSession

        plan = self.plan(mask, horizon, mode="decode", compute_key=False)
        return DecodeSession(plan, retain_outputs=retain_outputs)

    def decode_step(self, session, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> AttentionResult:
        """Append one token to ``session`` and return its attention row.

        Costs O(edges of the new token's mask row · d) — the work-optimality
        argument of Section IV-B applied per decode step.  The result is
        recorded in this engine's history like any other kernel call.
        """
        result = session.step(q, k, v)
        self.history.append(result)
        return result

    def op_counts(self) -> Dict[str, int]:
        """Aggregate op counts across every call made through this engine."""
        totals = {counter.name: 0 for counter in dataclasses.fields(OpCounts)}
        for result in self.history:
            for name in totals:
                totals[name] += getattr(result.ops, name)
        return totals

    # ------------------------------------------------------------------ #
    def _run_named(self, q, k, v, mask: MaskInput, algorithm: str) -> AttentionResult:
        length = q.shape[-2]
        if algorithm == "sdp":
            return sdp_attention(q, k, v, mask, scale=self.scale)
        if algorithm == "flash":
            require(mask is None, "the FlashAttention baseline is dense; pass mask=None")
            return flash_attention(q, k, v, scale=self.scale)
        if algorithm in ("coo", "csr"):
            require(mask is not None, f"{algorithm} kernel requires an explicit mask")
            kernel = coo_attention if algorithm == "coo" else csr_attention
            return kernel(
                q,
                k,
                v,
                materialize_explicit(mask, length, fmt=algorithm),
                scale=self.scale,
                executor=self.executor,
            )
        if algorithm == "composed":
            return self.plan(
                mask, length, algorithm="composed", compute_key=False
            ).execute(q, k, v)
        # implicit kernels: the mask must be (convertible to) the right spec type
        require(isinstance(mask, MaskSpec), f"{algorithm} kernel requires a MaskSpec input")
        return run_spec_kernel(q, k, v, mask, scale=self.scale, executor=self.executor)
