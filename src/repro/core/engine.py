"""Kernel dispatch engine.

:class:`GraphAttentionEngine` is the user-facing entry point: given Q/K/V and
a mask specification it picks the most specialised kernel available —
the implicit ordered-sparsity kernels when the spec advertises a
``kernel_hint``, a sequence of specialised kernels for disjoint composites, or
the explicit CSR/COO kernels for arbitrary masks — and returns the
:class:`~repro.core.result.AttentionResult` together with the op counts the
work model consumes.  The dense SDP and FlashAttention baselines are exposed
through the same interface so experiments can swap algorithms by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.compose import merge_results
from repro.core.dense import sdp_attention
from repro.core.explicit_kernels import coo_attention, csr_attention
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import (
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)
from repro.core.result import AttentionResult
from repro.masks.base import MaskSpec, as_mask_spec
from repro.masks.composite import UnionMask
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

#: Algorithms the engine can be asked for explicitly.
ALGORITHMS = (
    "auto",
    "sdp",
    "flash",
    "coo",
    "csr",
    "local",
    "dilated1d",
    "dilated2d",
    "global",
    "composed",
)

MaskInput = Union[MaskSpec, np.ndarray, COOMatrix, CSRMatrix, None]


@dataclass
class GraphAttentionEngine:
    """Dispatches attention computations to the most appropriate kernel.

    Parameters
    ----------
    executor:
        ``"vectorized"`` (default) or ``"streamed"`` — forwarded to the graph
        kernels.
    scale:
        Attention scale; ``None`` means ``1/sqrt(d_k)``.
    prefer_composition:
        When dispatching a :class:`UnionMask` whose components all have
        specialised kernels, run them sequentially and merge (the paper's
        "Loc + Glo" strategy) instead of collapsing to a single CSR call.
    """

    executor: str = "vectorized"
    scale: Optional[float] = None
    prefer_composition: bool = True
    history: List[AttentionResult] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ #
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskInput = None,
        *,
        algorithm: str = "auto",
    ) -> AttentionResult:
        """Compute attention for ``mask`` using ``algorithm`` (or auto-dispatch)."""
        require(algorithm in ALGORITHMS, f"unknown algorithm {algorithm!r}")
        if algorithm == "auto":
            result = self._dispatch(q, k, v, mask)
        else:
            result = self._run_named(q, k, v, mask, algorithm)
        self.history.append(result)
        return result

    def op_counts(self) -> Dict[str, int]:
        """Aggregate op counts across every call made through this engine."""
        totals = {"dot_products": 0, "flops": 0, "exp_evaluations": 0, "search_steps": 0, "wasted_dot_products": 0}
        for result in self.history:
            totals["dot_products"] += result.ops.dot_products
            totals["flops"] += result.ops.flops
            totals["exp_evaluations"] += result.ops.exp_evaluations
            totals["search_steps"] += result.ops.search_steps
            totals["wasted_dot_products"] += result.ops.wasted_dot_products
        return totals

    # ------------------------------------------------------------------ #
    def _dispatch(self, q, k, v, mask: MaskInput) -> AttentionResult:
        if mask is None:
            return flash_attention(q, k, v, scale=self.scale)
        if isinstance(mask, (np.ndarray, COOMatrix, CSRMatrix)):
            mask = as_mask_spec(mask)

        if isinstance(mask, UnionMask) and self.prefer_composition:
            if all(self._has_specialised_kernel(c) for c in mask.components):
                return self._run_union_composed(q, k, v, mask)

        if self._has_specialised_kernel(mask):
            return self._run_spec(q, k, v, mask)
        return csr_attention(
            q, k, v, mask.to_csr(q.shape[0]), scale=self.scale, executor=self.executor
        )

    @staticmethod
    def _has_specialised_kernel(spec: MaskSpec) -> bool:
        return isinstance(
            spec, (LocalMask, Dilated1DMask, Dilated2DMask, GlobalMask, GlobalNonLocalMask)
        )

    def _run_spec(self, q, k, v, spec: MaskSpec) -> AttentionResult:
        if isinstance(spec, LocalMask):
            return local_attention(q, k, v, spec.window, scale=self.scale, executor=self.executor)
        if isinstance(spec, Dilated1DMask):
            return dilated1d_attention(
                q, k, v, spec.window, spec.dilation, scale=self.scale, executor=self.executor
            )
        if isinstance(spec, Dilated2DMask):
            return dilated2d_attention(
                q, k, v, spec.block_size, spec.dilation, scale=self.scale, executor=self.executor
            )
        if isinstance(spec, GlobalNonLocalMask):
            return global_attention(
                q, k, v, spec.global_tokens, spec.window, scale=self.scale, executor=self.executor
            )
        if isinstance(spec, GlobalMask):
            return global_attention(
                q, k, v, spec.global_tokens, 1, scale=self.scale, executor=self.executor
            )
        raise TypeError(f"no specialised kernel for {type(spec).__name__}")

    def _run_named(self, q, k, v, mask: MaskInput, algorithm: str) -> AttentionResult:
        length = q.shape[0]
        if algorithm == "sdp":
            return sdp_attention(q, k, v, mask, scale=self.scale)
        if algorithm == "flash":
            require(mask is None, "the FlashAttention baseline is dense; pass mask=None")
            return flash_attention(q, k, v, scale=self.scale)
        if algorithm in ("coo", "csr"):
            require(mask is not None, f"{algorithm} kernel requires an explicit mask")
            spec = mask if isinstance(mask, (COOMatrix, CSRMatrix)) else as_mask_spec(mask) if not isinstance(mask, MaskSpec) else mask
            kernel = coo_attention if algorithm == "coo" else csr_attention
            return kernel(q, k, v, spec if not isinstance(spec, MaskSpec) else spec.to_csr(length), scale=self.scale, executor=self.executor)
        if algorithm == "composed":
            require(isinstance(mask, UnionMask), "composed execution requires a UnionMask")
            return self._run_union_composed(q, k, v, mask)
        # implicit kernels: the mask must be (convertible to) the right spec type
        require(isinstance(mask, MaskSpec), f"{algorithm} kernel requires a MaskSpec input")
        return self._run_spec(q, k, v, mask)

    def _run_union_composed(self, q, k, v, mask: UnionMask) -> AttentionResult:
        """Execute a union mask as sequential kernel calls over disjoint edge sets.

        Online-softmax merging is only exact when no edge is processed twice,
        so every component is reduced to the edges not already covered by the
        components before it; a component left intact keeps its specialised
        kernel, a trimmed component falls back to the CSR kernel on the
        remaining edges.
        """
        length = q.shape[0]
        covered = None
        results = []
        for component in mask.components:
            component_csr = component.to_csr(length)
            remainder = component_csr if covered is None else component_csr.difference(covered)
            if remainder.nnz == component_csr.nnz and self._has_specialised_kernel(component):
                results.append(self._run_spec(q, k, v, component))
            elif remainder.nnz:
                results.append(
                    csr_attention(q, k, v, remainder, scale=self.scale, executor=self.executor)
                )
            covered = component_csr if covered is None else covered.union(component_csr)
        if not results:
            return csr_attention(q, k, v, mask.to_csr(length), scale=self.scale, executor=self.executor)
        return merge_results(results)
