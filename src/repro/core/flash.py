"""FlashAttention-style tiled dense attention.

FlashAttention performs the full ``O(L^2 d)`` dense computation but never
materialises the score matrix: queries and keys are processed in tiles and a
running online softmax keeps only two ``O(L)`` statistics vectors.  That is
why its *memory* limit in Table II matches the implicit-mask graph kernels
even though its *work* stays quadratic — the exact trade-off Table III and
Fig. 5 explore.

:func:`flash_attention` reproduces the tiled algorithm; the optional
``block_mask`` argument reproduces the block-sparse FlashAttention variants of
the related work (Section III), which skip tiles with no mask non-zero but
still pay dense work inside every touched tile.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dense import batch_size, resolve_scale, validate_qkv
from repro.core.online_softmax import OnlineSoftmaxState, accumulator_dtype
from repro.core.result import AttentionResult, OpCounts
from repro.sparse.block import BlockSparseMatrix
from repro.utils.validation import require


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    block_q: int = 128,
    block_k: int = 128,
    scale: Optional[float] = None,
    block_mask: Optional[BlockSparseMatrix] = None,
) -> AttentionResult:
    """Tiled dense attention with online softmax.

    Parameters
    ----------
    q, k, v:
        ``(..., L, d)`` inputs; leading batch/head axes are processed inside
        each tile, so the tile loop runs once regardless of the batch width.
    block_q, block_k:
        Tile sizes along the query and key dimensions.  Any positive values
        are accepted; they only change the evaluation order, not the result.
    block_mask:
        When given, only tiles listed in the block-sparse structure are
        computed (the related-work "block sparse FlashAttention"); tiles are
        computed densely, so work within a touched tile is not reduced.
    """
    validate_qkv(q, k, v)
    require(block_q >= 1 and block_k >= 1, "tile sizes must be positive")
    batch_shape = q.shape[:-2]
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    batch = batch_size(q)
    scale_value = resolve_scale(scale, head_dim)
    acc_dtype = accumulator_dtype(q.dtype)

    q_acc = np.asarray(q, dtype=acc_dtype)
    k_acc = np.asarray(k, dtype=acc_dtype)
    v_acc = np.asarray(v, dtype=acc_dtype)

    state = OnlineSoftmaxState.initialise(
        length, value_dim, acc_dtype, batch_shape=batch_shape
    )

    active_tiles = None
    if block_mask is not None:
        require(
            block_mask.block_size == block_q == block_k,
            "block_mask tile size must equal block_q and block_k",
        )
        active_tiles = {
            (int(r), int(c)) for r, c in zip(block_mask.block_rows, block_mask.block_cols)
        }

    computed_tiles = 0
    for q_start in range(0, length, block_q):
        q_stop = min(q_start + block_q, length)
        q_tile = q_acc[..., q_start:q_stop, :]
        rows = np.arange(q_start, q_stop)
        tile_row = q_start // block_q
        for k_start in range(0, length, block_k):
            if active_tiles is not None and (tile_row, k_start // block_k) not in active_tiles:
                continue
            k_stop = min(k_start + block_k, length)
            k_tile = k_acc[..., k_start:k_stop, :]
            scores = (q_tile @ np.swapaxes(k_tile, -1, -2)) * scale_value
            tile_max = scores.max(axis=-1)
            weights = np.exp(scores - tile_max[..., None])
            tile_sum = weights.sum(axis=-1)
            tile_acc = weights @ v_acc[..., k_start:k_stop, :]
            state.update_block(rows, tile_max, tile_sum, tile_acc)
            computed_tiles += 1

    output = state.finalize(dtype=q.dtype)
    if active_tiles is None:
        ops = OpCounts.for_dense(length, head_dim, batch=batch)
        algorithm = "flash"
    else:
        computed = block_mask.computed_elements
        ops = OpCounts(
            dot_products=computed,
            flops=4 * computed * head_dim,
            exp_evaluations=computed,
            wasted_dot_products=block_mask.wasted_elements,
        ).scaled(batch)
        algorithm = "flash-block-sparse"
    return AttentionResult(
        output=output,
        row_max=state.row_max.copy(),
        row_sum=state.row_sum.copy(),
        ops=ops,
        algorithm=algorithm,
        meta={
            "scale": scale_value,
            "block_q": block_q,
            "block_k": block_k,
            "computed_tiles": computed_tiles,
        },
    )
