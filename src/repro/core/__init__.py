"""Core attention kernels: the paper's contribution plus the dense baselines.

Public surface:

* graph-processing kernels (Algorithm 1): :func:`coo_attention`,
  :func:`csr_attention`, :func:`local_attention`, :func:`dilated1d_attention`,
  :func:`dilated2d_attention`, :func:`global_attention`;
* baselines: :func:`sdp_attention` (dense masked SDP) and
  :func:`flash_attention` (tiled dense attention with online softmax);
* composition of sequential kernel calls (:func:`merge_results`,
  :func:`longformer_attention`, :func:`bigbird_attention`);
* multi-head / batched wrappers and a minimal :class:`AttentionLayer`;
* the :class:`GraphAttentionEngine` dispatcher.
"""

from repro.core.compose import (
    bigbird_attention,
    composed_attention,
    longformer_attention,
    merge_results,
)
from repro.core.dense import reference_attention, sdp_attention
from repro.core.engine import ALGORITHMS, GraphAttentionEngine
from repro.core.flash import flash_attention
from repro.core.graph_attention import (
    GRAPH_KERNELS,
    coo_attention,
    csr_attention,
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)
from repro.core.multihead import (
    AttentionLayer,
    MultiHeadResult,
    batched_attention,
    merge_heads,
    multi_head_attention,
    split_heads,
)
from repro.core.online_softmax import OnlineSoftmaxState, stable_softmax
from repro.core.result import AttentionResult, OpCounts

__all__ = [
    "ALGORITHMS",
    "AttentionLayer",
    "AttentionResult",
    "GRAPH_KERNELS",
    "GraphAttentionEngine",
    "MultiHeadResult",
    "OnlineSoftmaxState",
    "OpCounts",
    "batched_attention",
    "bigbird_attention",
    "composed_attention",
    "coo_attention",
    "csr_attention",
    "dilated1d_attention",
    "dilated2d_attention",
    "flash_attention",
    "global_attention",
    "local_attention",
    "longformer_attention",
    "merge_heads",
    "merge_results",
    "multi_head_attention",
    "reference_attention",
    "sdp_attention",
    "split_heads",
    "stable_softmax",
]
