"""Optional compiled fast paths for the paged-KV gather/dequant hot loops.

The serving stack's per-token inner loops are short, gather-shaped kernels:
fancy-index K/V rows out of the block arena (dequantizing int8 storage on the
way) and segment-reduce the weighted value rows.  Pure NumPy evaluates each
as a chain of whole-array passes with temporaries; this module offers a fused
single-pass implementation behind an auto-detected backend:

* **numba** — ``@njit`` kernels, used when :mod:`numba` is importable;
* **cext** — a tiny C file compiled at first use with the system C compiler
  and loaded through :mod:`ctypes` (no build step, no install);
* **numpy** — the pure-NumPy fallback, always available.

The gather/dequant kernels are **bit-identical** to the NumPy fallback: they
perform the same float32 operations per element in the same order (a gather
is a copy; int8 dequant is ``(float(q) - zp) * scale``), so switching
backends never changes a single output bit at fp32 or int8 storage.  The
fused segment-reduce accumulates *sequentially* where ``np.add.reduceat``
reduces pairwise, so it agrees with the fallback only to accumulator-dtype
round-off (~1e-12 relative at float64); every decode path shares one
implementation per process, which keeps the stack's internal bit-exactness
invariants (paged == private, stacked == individual) intact either way.

Backend selection honours ``REPRO_COMPILED``:

* unset / ``auto`` / ``1`` — numba if importable, else cext, else numpy;
* ``0`` / ``off`` / ``numpy`` — force the pure-NumPy fallback;
* ``numba`` / ``cext`` — force one compiled backend (falls back to numpy,
  recording the reason in :func:`backend_error`, when it cannot be built).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>

void gather_rows_f32(const float *arena, const int64_t *rows,
                     int64_t batch, int64_t arena_rows, int64_t count,
                     int64_t dim, float *out)
{
    for (int64_t b = 0; b < batch; b++) {
        const float *src_base = arena + b * arena_rows * dim;
        float *dst = out + b * count * dim;
        for (int64_t e = 0; e < count; e++) {
            const float *src = src_base + rows[e] * dim;
            for (int64_t j = 0; j < dim; j++)
                dst[e * dim + j] = src[j];
        }
    }
}

void gather_dequant_i8(const int8_t *arena, const float *scale,
                       const float *zero, const int64_t *rows,
                       int64_t batch, int64_t arena_rows, int64_t count,
                       int64_t dim, float *out)
{
    for (int64_t b = 0; b < batch; b++) {
        const int8_t *src_base = arena + b * arena_rows * dim;
        const float *s_base = scale + b * arena_rows;
        const float *z_base = zero + b * arena_rows;
        float *dst = out + b * count * dim;
        for (int64_t e = 0; e < count; e++) {
            const int8_t *src = src_base + rows[e] * dim;
            const float s = s_base[rows[e]];
            const float z = z_base[rows[e]];
            for (int64_t j = 0; j < dim; j++)
                dst[e * dim + j] = ((float)src[j] - z) * s;
        }
    }
}

void segment_weighted_sum_f64(const double *weights, const double *values,
                              const int64_t *indptr, int64_t batch,
                              int64_t num_rows, int64_t num_edges,
                              int64_t dim, double *out)
{
    for (int64_t b = 0; b < batch; b++) {
        const double *w = weights + b * num_edges;
        const double *v = values + b * num_edges * dim;
        double *dst = out + b * num_rows * dim;
        for (int64_t i = 0; i < num_rows; i++) {
            double *acc = dst + i * dim;
            for (int64_t j = 0; j < dim; j++)
                acc[j] = 0.0;
            for (int64_t e = indptr[i]; e < indptr[i + 1]; e++) {
                const double we = w[e];
                const double *ve = v + e * dim;
                for (int64_t j = 0; j < dim; j++)
                    acc[j] += we * ve[j];
            }
        }
    }
}
"""

_I64 = ctypes.c_int64
_lock = threading.Lock()
_backend: Optional[str] = None  # resolved lazily: "numba" | "cext" | "numpy"
_backend_error: Optional[str] = None
_cext = None  # loaded ctypes library
_numba_kernels = None  # dict of jitted functions


# --------------------------------------------------------------------------- #
# Backend detection
# --------------------------------------------------------------------------- #
def _try_numba() -> bool:
    global _numba_kernels
    try:  # pragma: no cover - exercised only where numba is installed
        import numba
    except ImportError:
        return False

    @numba.njit(cache=False)  # pragma: no cover
    def gather_rows(arena, rows, out):
        batch, count, dim = out.shape
        for b in range(batch):
            for e in range(count):
                src = rows[e]
                for j in range(dim):
                    out[b, e, j] = arena[b, src, j]

    @numba.njit(cache=False)  # pragma: no cover
    def gather_dequant(arena, scale, zero, rows, out):
        batch, count, dim = out.shape
        for b in range(batch):
            for e in range(count):
                src = rows[e]
                s = scale[b, src]
                z = zero[b, src]
                for j in range(dim):
                    out[b, e, j] = (np.float32(arena[b, src, j]) - z) * s

    @numba.njit(cache=False)  # pragma: no cover
    def segment_sum(weights, values, indptr, out):
        batch, num_rows, dim = out.shape
        for b in range(batch):
            for i in range(num_rows):
                for j in range(dim):
                    out[b, i, j] = 0.0
                for e in range(indptr[i], indptr[i + 1]):
                    we = weights[b, e]
                    for j in range(dim):
                        out[b, i, j] += we * values[b, e, j]

    _numba_kernels = {
        "gather_rows": gather_rows,
        "gather_dequant": gather_dequant,
        "segment_sum": segment_sum,
    }
    return True


def _find_cc() -> Optional[str]:
    import shutil

    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _try_cext() -> bool:
    """Compile and load the C kernels; False (with the reason recorded) on failure."""
    global _cext, _backend_error
    cc = _find_cc()
    if cc is None:
        _backend_error = "no C compiler on PATH"
        return False
    try:
        build_dir = tempfile.mkdtemp(prefix="repro-compiled-")
        src = os.path.join(build_dir, "repro_compiled.c")
        lib_path = os.path.join(build_dir, "repro_compiled.so")
        with open(src, "w", encoding="utf-8") as handle:
            handle.write(_C_SOURCE)
        # -O2 without -ffast-math: the dequant path must keep IEEE float32
        # semantics so results stay bit-identical to the NumPy fallback
        result = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-o", lib_path, src],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if result.returncode != 0:
            _backend_error = f"{cc} failed: {result.stderr.strip()[:500]}"
            return False
        lib = ctypes.CDLL(lib_path)
        for name in ("gather_rows_f32", "gather_dequant_i8", "segment_weighted_sum_f64"):
            getattr(lib, name).restype = None
        _cext = lib
        return True
    except (OSError, subprocess.SubprocessError) as exc:
        _backend_error = f"cext build failed: {exc}"
        return False


def _resolve_backend() -> str:
    global _backend_error
    raw = os.environ.get("REPRO_COMPILED", "auto").strip().lower()
    if raw in {"0", "off", "false", "no", "numpy"}:
        return "numpy"
    if raw == "numba":
        if _try_numba():
            return "numba"
        _backend_error = _backend_error or "numba is not importable"
        return "numpy"
    if raw == "cext":
        return "cext" if _try_cext() else "numpy"
    # auto: prefer numba (no toolchain dependency), then the C extension
    if _try_numba():
        return "numba"
    if _try_cext():
        return "cext"
    return "numpy"


def _ensure_backend() -> str:
    global _backend
    if _backend is None:
        with _lock:
            if _backend is None:
                _backend = _resolve_backend()
    return _backend


def backend() -> str:
    """The active backend name: ``"numba"``, ``"cext"`` or ``"numpy"``."""
    return _ensure_backend()


def backend_error() -> Optional[str]:
    """Why a requested compiled backend fell back to numpy, if it did."""
    _ensure_backend()
    return _backend_error


def reset_backend() -> None:
    """Forget the resolved backend (tests re-read ``REPRO_COMPILED`` after this)."""
    global _backend, _backend_error
    with _lock:
        _backend = None
        _backend_error = None


class force_backend:
    """Context manager pinning the backend (benchmarks compare paths with it)."""

    def __init__(self, name: str) -> None:
        if name not in {"numba", "cext", "numpy"}:
            raise ValueError(f"unknown backend {name!r}")
        self.name = name
        self._saved: Optional[str] = None

    def __enter__(self) -> "force_backend":
        global _backend
        _ensure_backend()
        with _lock:
            self._saved = _backend
            if self.name == "numba" and _numba_kernels is None and not _try_numba():
                raise RuntimeError("numba backend is not available")
            if self.name == "cext" and _cext is None and not _try_cext():
                raise RuntimeError(f"cext backend is not available: {_backend_error}")
            _backend = self.name
        return self

    def __exit__(self, *exc) -> None:
        global _backend
        with _lock:
            _backend = self._saved


# --------------------------------------------------------------------------- #
# Shape plumbing
# --------------------------------------------------------------------------- #
def _flat3(array: np.ndarray) -> np.ndarray:
    """View ``(..., R, d)`` as contiguous ``(B, R, d)`` (copying only if needed)."""
    rows, dim = array.shape[-2], array.shape[-1]
    return np.ascontiguousarray(array).reshape(-1, rows, dim)


def _ptr(array: np.ndarray, ctype):
    return array.ctypes.data_as(ctypes.POINTER(ctype))


# --------------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------------- #
def gather_rows(arena: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Fancy-index ``arena[..., rows, :]`` — a fused copy on compiled backends.

    ``arena`` is ``(..., R, d)`` float32; ``rows`` is a 1-D int64 index
    vector.  All backends return bit-identical results (a gather moves
    bytes), so this is safe on every decode path.
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    which = _ensure_backend()
    if which == "numpy" or arena.dtype != np.float32:
        return arena[..., rows, :]
    flat = _flat3(arena)
    batch, arena_rows, dim = flat.shape
    out = np.empty((batch, rows.size, dim), dtype=np.float32)
    if rows.size:
        if which == "numba":  # pragma: no cover - requires numba
            _numba_kernels["gather_rows"](flat, rows, out)
        else:
            _cext.gather_rows_f32(
                _ptr(flat, ctypes.c_float),
                _ptr(rows, _I64),
                _I64(batch),
                _I64(arena_rows),
                _I64(rows.size),
                _I64(dim),
                _ptr(out, ctypes.c_float),
            )
    return out.reshape(arena.shape[:-2] + (rows.size, dim))


def gather_dequant_int8(
    arena: np.ndarray,
    scale: np.ndarray,
    zero: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Gather int8 rows and dequantize to float32: ``(float(q) - zp) * scale``.

    ``arena`` is ``(..., R, d)`` int8; ``scale``/``zero`` are ``(..., R)``
    float32 per-row affine parameters sharing the arena's row indexing;
    ``rows`` is 1-D int64.  Compiled backends fuse the gather and the two
    float32 ops into one pass and are bit-identical to the NumPy fallback
    (same operations, same order, per element).
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    which = _ensure_backend()
    if which == "numpy":
        gathered = arena[..., rows, :].astype(np.float32)
        z = zero[..., rows]
        s = scale[..., rows]
        return (gathered - z[..., None]) * s[..., None]
    flat = _flat3(arena)
    batch, arena_rows, dim = flat.shape
    scale2 = np.ascontiguousarray(scale, dtype=np.float32).reshape(batch, arena_rows)
    zero2 = np.ascontiguousarray(zero, dtype=np.float32).reshape(batch, arena_rows)
    out = np.empty((batch, rows.size, dim), dtype=np.float32)
    if rows.size:
        if which == "numba":  # pragma: no cover - requires numba
            _numba_kernels["gather_dequant"](flat, scale2, zero2, rows, out)
        else:
            _cext.gather_dequant_i8(
                _ptr(flat, ctypes.c_int8),
                _ptr(scale2, ctypes.c_float),
                _ptr(zero2, ctypes.c_float),
                _ptr(rows, _I64),
                _I64(batch),
                _I64(arena_rows),
                _I64(rows.size),
                _I64(dim),
                _ptr(out, ctypes.c_float),
            )
    return out.reshape(arena.shape[:-2] + (rows.size, dim))


def try_segment_weighted_sum(
    weights: np.ndarray, values: np.ndarray, indptr: np.ndarray, value_dim: int
) -> Optional[np.ndarray]:
    """Fused per-row ``sum(weights * values)`` over CSR segments, or ``None``.

    Returns ``None`` when no compiled backend is active or the dtypes are not
    the float64 accumulator layout the decode paths use — the caller then
    falls through to the ``np.add.reduceat`` implementation.  The compiled
    reduction is sequential per segment (reduceat is pairwise), so results
    agree to float64 round-off rather than bit-for-bit; all serving paths
    share whichever implementation is active, preserving cross-path
    bit-exactness within a process.
    """
    which = _ensure_backend()
    if which == "numpy":
        return None
    if weights.dtype != np.float64 or values.dtype != np.float64:
        return None
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    num_rows = indptr.size - 1
    num_edges = weights.shape[-1]
    if num_rows <= 0 or num_edges == 0 or value_dim == 0:
        return None  # degenerate shapes: the reduceat fallback handles them
    if values.shape[-2] != num_edges or values.shape[-1] != value_dim:
        return None
    batch_shape = weights.shape[:-1]
    if values.shape[:-2] != batch_shape:
        return None
    w2 = np.ascontiguousarray(weights).reshape(-1, num_edges)
    v3 = _flat3(values)
    batch = w2.shape[0]
    out = np.zeros((batch, num_rows, value_dim), dtype=np.float64)
    if num_edges and num_rows:
        if which == "numba":  # pragma: no cover - requires numba
            _numba_kernels["segment_sum"](w2, v3, indptr, out)
        else:
            _cext.segment_weighted_sum_f64(
                _ptr(w2, ctypes.c_double),
                _ptr(v3, ctypes.c_double),
                _ptr(indptr, _I64),
                _I64(batch),
                _I64(num_rows),
                _I64(num_edges),
                _I64(value_dim),
                _ptr(out, ctypes.c_double),
            )
    return out.reshape(batch_shape + (num_rows, value_dim))


__all__ = [
    "backend",
    "backend_error",
    "force_backend",
    "gather_dequant_int8",
    "gather_rows",
    "reset_backend",
    "try_segment_weighted_sum",
]
