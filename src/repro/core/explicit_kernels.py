"""Explicit-mask graph kernels: COO and CSR (paper Section IV-B).

These kernels accept an *arbitrary* attention mask as a sparse matrix.  CSR is
the format the paper recommends (O(1) row bounds via the offset vector); COO
must locate each row's extent inside the coordinate list, and the paper
attributes COO's poor runtime to exactly that in-kernel search ("the search
cost grows as the algorithm strays farther from row zero").  The op counters
reproduce that cost model: the COO kernel reports one search step per edge
scanned before a row's start, which the runtime model turns into the observed
slowdown (Fig. 3).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.kernel_common import (
    csr_ordered_attention,
    streamed_attention,
    validate_executor,
)
from repro.core.result import AttentionResult
from repro.masks.base import MaskSpec
from repro.sparse.conversions import coerce_mask
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

MaskInput = Union[np.ndarray, COOMatrix, CSRMatrix, MaskSpec]


def _as_csr(mask: MaskInput, length: int) -> CSRMatrix:
    if isinstance(mask, CSRMatrix):
        csr = mask
    elif isinstance(mask, COOMatrix):
        csr = mask.to_csr()
    elif isinstance(mask, MaskSpec):
        csr = mask.to_csr(length)
    else:
        csr = coerce_mask(np.asarray(mask), fmt="csr")
    require(csr.shape == (length, length), f"mask shape {csr.shape} != ({length}, {length})")
    return csr


def _as_coo(mask: MaskInput, length: int) -> COOMatrix:
    if isinstance(mask, COOMatrix):
        coo = mask
    elif isinstance(mask, CSRMatrix):
        coo = mask.to_coo()
    elif isinstance(mask, MaskSpec):
        coo = mask.to_coo(length)
    else:
        coo = coerce_mask(np.asarray(mask), fmt="coo")
    require(coo.shape == (length, length), f"mask shape {coo.shape} != ({length}, {length})")
    return coo


def materialize_explicit(
    mask: MaskInput, length: int, fmt: str = "csr"
) -> Union[CSRMatrix, COOMatrix]:
    """Coerce any mask input into the sparse container an explicit kernel wants.

    Accepts a :class:`~repro.masks.base.MaskSpec`, a dense array, or an
    already-materialised COO/CSR container, and returns a
    ``(length, length)`` matrix in ``fmt`` (``"csr"`` or ``"coo"``).  This is
    the single coercion path shared by the kernels themselves, the engine's
    named coo/csr dispatch, and the plan compiler's CSR fallback.
    """
    require(fmt in ("csr", "coo"), f"unknown explicit format {fmt!r}")
    return _as_csr(mask, length) if fmt == "csr" else _as_coo(mask, length)


def coo_search_steps(coo: COOMatrix) -> int:
    """Search cost of the naive COO kernel.

    Each query row scans the coordinate list from the beginning until it finds
    its own row's first entry, so the cost for row ``i`` is the number of
    edges stored before it; the total is the sum of row start offsets.  This
    is the quantity the runtime model charges the COO kernel for (and what the
    CSR offset vector eliminates).
    """
    if coo.nnz == 0:
        return 0
    counts = np.bincount(coo.rows, minlength=coo.shape[0])
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return int(starts.sum())


def csr_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: MaskInput,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Graph-processing attention with an explicit CSR mask.

    Handles any attention pattern; performs exactly one dot product per mask
    non-zero per batch slice (work optimal, Section IV-B).  Q/K/V may carry
    arbitrary leading batch/head axes.
    """
    validate_executor(executor)
    length = q.shape[-2]
    csr = _as_csr(mask, length)
    meta = {"nnz": csr.nnz, "sparsity_factor": csr.sparsity_factor, "format": "csr"}
    if executor == "streamed":
        return streamed_attention(
            q, k, v, csr.row_neighbors, scale=scale, algorithm="csr", meta=meta
        )
    return csr_ordered_attention(
        q, k, v, csr.indptr, csr.indices, scale=scale, algorithm="csr", meta=meta
    )


def coo_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: MaskInput,
    *,
    scale: Optional[float] = None,
    executor: str = "vectorized",
) -> AttentionResult:
    """Graph-processing attention with an explicit COO mask.

    Numerically identical to :func:`csr_attention`; differs only in the row
    lookup, whose linear-scan cost is reported in ``ops.search_steps`` so the
    performance models can reproduce COO's measured slowdown.
    """
    validate_executor(executor)
    length = q.shape[-2]
    coo = _as_coo(mask, length)
    search = coo_search_steps(coo)
    meta = {"nnz": coo.nnz, "sparsity_factor": coo.sparsity_factor, "format": "coo"}
    if executor == "streamed":
        return streamed_attention(
            q,
            k,
            v,
            coo.row_neighbors,
            scale=scale,
            algorithm="coo",
            search_steps=search,
            meta=meta,
        )
    counts = np.bincount(coo.rows, minlength=length) if coo.nnz else np.zeros(length, dtype=np.int64)
    indptr = np.zeros(length + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(counts)
    return csr_ordered_attention(
        q,
        k,
        v,
        indptr,
        coo.cols,
        scale=scale,
        algorithm="coo",
        search_steps=search,
        meta=meta,
    )
