"""Dense (masked) scaled-dot-product attention — the paper's SDP baseline.

PyTorch's ``scaled_dot_product_attention`` with an arbitrary binary mask
computes the full dense ``QK^T`` product, sets masked entries to ``-inf``,
applies a row softmax and multiplies by ``V`` — its cost is independent of the
mask's sparsity (Section III, Section V-C).  :func:`sdp_attention` reproduces
those semantics and serves both as the performance baseline and as the
correctness reference that every graph kernel is verified against
(Section V-A).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.online_softmax import accumulator_dtype, stable_softmax
from repro.core.result import AttentionResult, OpCounts
from repro.masks.base import MaskSpec
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require

MaskLike = Union[None, np.ndarray, MaskSpec, COOMatrix, CSRMatrix]


def _mask_to_dense_bool(mask: MaskLike, length: int) -> Optional[np.ndarray]:
    """Materialise any supported mask representation as a dense boolean array."""
    if mask is None:
        return None
    if isinstance(mask, MaskSpec):
        dense = mask.to_dense(length)
    elif isinstance(mask, (COOMatrix, CSRMatrix)):
        dense = mask.to_dense()
    else:
        dense = np.asarray(mask)
    require(dense.shape == (length, length), f"mask must be ({length}, {length}), got {dense.shape}")
    return dense.astype(bool) if dense.dtype != bool else dense


def validate_qkv(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> None:
    """Check the Q/K/V shape contract shared by every kernel.

    Inputs are ``(..., L, d)`` — a bare ``(L, d)`` single-head slice or any
    stack of them (``(B, L, d)``, ``(B, H, L, d)``, ...).  All three must share
    their leading batch axes and context length; Q and K must share ``d_k``.
    """
    require(
        q.ndim >= 2 and k.ndim >= 2 and v.ndim >= 2,
        "Q, K, V must be at least 2-D (..., L, d)",
    )
    require(
        q.shape[:-1] == k.shape[:-1] == v.shape[:-1],
        "Q, K, V must share their batch axes and context length L",
    )
    require(q.shape[-1] == k.shape[-1], "Q and K must share the head dimension d_k")


def resolve_scale(scale: Optional[float], head_dim: int) -> float:
    """Default attention scale ``1/sqrt(d_k)`` (Eq. 1 of the paper)."""
    return float(scale) if scale is not None else 1.0 / float(np.sqrt(head_dim))


def batch_size(q: np.ndarray) -> int:
    """Number of ``(L, d)`` slices in a ``(..., L, d)`` stack."""
    return int(np.prod(q.shape[:-2], dtype=np.int64)) if q.ndim > 2 else 1


def sdp_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: MaskLike = None,
    *,
    scale: Optional[float] = None,
    zero_fully_masked: bool = True,
) -> AttentionResult:
    """Masked scaled-dot-product attention via dense matrices.

    Parameters
    ----------
    q, k, v:
        ``(..., L, d_k)`` / ``(..., L, d_k)`` / ``(..., L, d_v)`` matrices;
        leading axes are independent batch/head slices sharing one mask.
    mask:
        ``None`` for dense attention, otherwise any mask representation; zero
        entries are excluded by setting their scores to ``-inf`` *after* the
        dense multiplication (which is exactly the wasted work the paper's
        kernels avoid).  The mask is ``(L, L)`` and broadcast over every
        leading axis.
    zero_fully_masked:
        Rows with no unmasked entry produce NaN in the PyTorch baseline; the
        graph kernels leave them at 0.  The default maps them to 0 so that both
        behaviours compare equal under the paper's ``equal_nan`` allclose; pass
        ``False`` to reproduce the NaN behaviour.
    """
    validate_qkv(q, k, v)
    length, head_dim = q.shape[-2], q.shape[-1]
    batch = batch_size(q)
    acc_dtype = accumulator_dtype(q.dtype)
    scale_value = resolve_scale(scale, head_dim)

    q_acc = np.asarray(q, dtype=acc_dtype)
    k_acc = np.asarray(k, dtype=acc_dtype)
    v_acc = np.asarray(v, dtype=acc_dtype)

    scores = (q_acc @ np.swapaxes(k_acc, -1, -2)) * scale_value
    dense_mask = _mask_to_dense_bool(mask, length)
    if dense_mask is not None:
        scores = np.where(dense_mask, scores, -np.inf)

    if zero_fully_masked:
        probabilities = stable_softmax(scores, axis=-1)
        row_max = np.max(scores, axis=-1)
        safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
        row_sum = np.sum(
            np.exp(np.where(np.isfinite(scores), scores - safe_max[..., None], -np.inf)),
            axis=-1,
        )
    else:
        with np.errstate(invalid="ignore"):
            shifted = scores - np.max(scores, axis=-1, keepdims=True)
            weights = np.exp(shifted)
            probabilities = weights / np.sum(weights, axis=-1, keepdims=True)
        row_max = np.max(scores, axis=-1)
        row_sum = np.sum(weights, axis=-1)

    output = probabilities @ v_acc
    nnz = int(dense_mask.sum()) if dense_mask is not None else length * length
    ops = OpCounts.for_dense(length, head_dim, nnz=nnz, batch=batch)
    return AttentionResult(
        output=output.astype(q.dtype),
        row_max=np.where(np.isfinite(row_max), row_max, -np.inf),
        row_sum=row_sum,
        ops=ops,
        algorithm="sdp",
        meta={"scale": scale_value, "masked": dense_mask is not None},
    )


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: MaskLike = None,
    *,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Convenience wrapper returning only the output matrix (verification helper)."""
    return sdp_attention(q, k, v, mask, scale=scale).output
