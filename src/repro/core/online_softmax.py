"""Online (streaming) softmax primitives.

Every kernel in the paper — the FlashAttention baseline and all six graph
kernels — relies on the online softmax of Milakov & Gimelshein: a row's
softmax can be accumulated one neighbour (or one tile) at a time by carrying
two statistics, the running maximum ``m`` and the running normaliser ``l``,
and rescaling the partial output whenever ``m`` grows.  This module provides:

* :class:`OnlineSoftmaxState` — the ``(m, l, acc)`` triple for a set of rows,
  with single-score updates (Algorithm 1's inner loop), vectorised batch
  updates (one tile / neighbour-set at a time) and state merging (used to
  combine the partial results of sequentially executed kernels, e.g.
  Local + Global for Longformer).
* segment-reduction helpers used by the vectorised executors to evaluate a
  numerically stable softmax over CSR-ordered edge scores without ever
  materialising the dense score matrix.

Accumulation happens in float64 (float32 for half-precision inputs) so the
kernels agree with the dense reference within the paper's verification
tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core import compiled
from repro.utils.validation import require


def accumulator_dtype(input_dtype) -> np.dtype:
    """Accumulator precision for a given storage dtype.

    float16 inputs accumulate in float32 (as the CUDA kernels do); float32 and
    float64 inputs accumulate in float64 so that the streaming and dense
    evaluation orders agree to within the paper's 1e-8 absolute tolerance.
    """
    dtype = np.dtype(input_dtype)
    if dtype == np.float16:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def rescale_factor(old_max: np.ndarray, new_max: np.ndarray) -> np.ndarray:
    """``exp(old_max - new_max)`` with ``-inf`` maxima treated as "no contribution".

    Avoids the ``inf - inf`` NaN path entirely (important both for silence —
    no spurious warnings — and because rows that never received a score must
    contribute factor 0, not NaN).
    """
    old_max = np.asarray(old_max)
    new_max = np.asarray(new_max)
    diff = np.full(np.broadcast(old_max, new_max).shape, -np.inf, dtype=np.result_type(old_max, new_max, np.float64))
    finite = np.isfinite(old_max) & np.isfinite(new_max)
    np.subtract(old_max, new_max, out=diff, where=finite)
    return np.exp(diff)


@dataclass
class OnlineSoftmaxState:
    """Running softmax statistics for ``num_rows`` output rows.

    The state may carry leading batch axes: ``row_max`` / ``row_sum`` are
    ``(..., num_rows)`` and ``accumulator`` is ``(..., num_rows, value_dim)``.
    Every update indexes rows on the *last* row axis, so one state folds a
    whole ``(B, H)`` batch of tiles at once.

    Attributes
    ----------
    row_max:
        Running maximum ``m`` per row; ``-inf`` for rows that saw no score yet.
    row_sum:
        Running normaliser ``l`` per row, relative to ``row_max``.
    accumulator:
        Unnormalised output accumulator ``sum_j exp(s_j - m) * V_j`` per row.
    """

    row_max: np.ndarray
    row_sum: np.ndarray
    accumulator: np.ndarray

    # ------------------------------------------------------------------ #
    @classmethod
    def initialise(
        cls,
        num_rows: int,
        value_dim: int,
        dtype=np.float64,
        *,
        batch_shape: Tuple[int, ...] = (),
    ) -> "OnlineSoftmaxState":
        """Fresh state: ``m = -inf``, ``l = 0``, ``acc = 0`` (Algorithm 1's init)."""
        require(num_rows >= 0 and value_dim >= 0, "dimensions must be non-negative")
        dtype = np.dtype(dtype)
        batch_shape = tuple(int(s) for s in batch_shape)
        return cls(
            row_max=np.full(batch_shape + (num_rows,), -np.inf, dtype=dtype),
            row_sum=np.zeros(batch_shape + (num_rows,), dtype=dtype),
            accumulator=np.zeros(batch_shape + (num_rows, value_dim), dtype=dtype),
        )

    @property
    def num_rows(self) -> int:
        return int(self.row_max.shape[-1])

    @property
    def value_dim(self) -> int:
        return int(self.accumulator.shape[-1])

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update_single(self, row: int, score: float, value: np.ndarray) -> None:
        """Algorithm 1 inner loop: fold one neighbour's score/value into one row."""
        m_old = self.row_max[row]
        m_new = max(m_old, score)
        correction = np.exp(m_old - m_new) if np.isfinite(m_old) else 0.0
        weight = np.exp(score - m_new)
        self.row_sum[row] = self.row_sum[row] * correction + weight
        self.accumulator[row] = self.accumulator[row] * correction + weight * value
        self.row_max[row] = m_new

    def update_rows(self, rows: np.ndarray, scores: np.ndarray, values: np.ndarray) -> None:
        """Fold a batch of (row, score, value-row) triples where rows are unique.

        Used by the tiled executors: for a tile, each target row receives a
        *set* of scores already reduced to (tile_max, tile_sum, tile_acc); this
        method handles the single-score-per-row case.  ``rows`` must not repeat.
        """
        rows = np.asarray(rows)
        scores = np.asarray(scores, dtype=self.row_max.dtype)
        values = np.asarray(values, dtype=self.accumulator.dtype)
        m_old = self.row_max[..., rows]
        m_new = np.maximum(m_old, scores)
        correction = rescale_factor(m_old, m_new)
        weight = np.exp(scores - m_new)
        self.row_sum[..., rows] = self.row_sum[..., rows] * correction + weight
        self.accumulator[..., rows, :] = (
            self.accumulator[..., rows, :] * correction[..., None] + weight[..., None] * values
        )
        self.row_max[..., rows] = m_new

    def update_block(
        self,
        rows: np.ndarray,
        block_max: np.ndarray,
        block_sum: np.ndarray,
        block_acc: np.ndarray,
    ) -> None:
        """Merge pre-reduced per-row partials (max, sum, acc) into the state.

        This is the FlashAttention tile-merge: ``block_*`` are the softmax
        statistics of the scores a tile contributed to each row in ``rows``
        (``(..., R)`` / ``(..., R, d_v)`` for a batched state).  Rows must be
        unique within one call.
        """
        rows = np.asarray(rows)
        m_old = self.row_max[..., rows]
        m_new = np.maximum(m_old, block_max)
        # rows never touched before have m_old = -inf -> correction 0;
        # a tile can contribute "no finite score" (fully masked) -> block_max -inf
        old_scale = rescale_factor(m_old, m_new)
        new_scale = rescale_factor(block_max, m_new)
        self.row_sum[..., rows] = self.row_sum[..., rows] * old_scale + block_sum * new_scale
        self.accumulator[..., rows, :] = (
            self.accumulator[..., rows, :] * old_scale[..., None]
            + block_acc * new_scale[..., None]
        )
        self.row_max[..., rows] = np.where(np.isfinite(m_new), m_new, -np.inf)

    def merge(self, other: "OnlineSoftmaxState") -> "OnlineSoftmaxState":
        """Combine two states covering the same rows (disjoint neighbour sets).

        Sequentially executed kernels (Local then Global, as in Fig. 6's
        "Loc + Glo" curves) each produce a state over all L rows; merging them
        yields the state of the union mask, provided the masks are disjoint.
        """
        require(self.num_rows == other.num_rows, "state row counts differ")
        require(self.value_dim == other.value_dim, "state value dims differ")
        merged = OnlineSoftmaxState.initialise(
            self.num_rows,
            self.value_dim,
            self.row_max.dtype,
            batch_shape=self.row_max.shape[:-1],
        )
        m_new = np.maximum(self.row_max, other.row_max)
        scale_self = rescale_factor(self.row_max, m_new)
        scale_other = rescale_factor(other.row_max, m_new)
        merged.row_max = np.where(np.isfinite(m_new), m_new, -np.inf)
        merged.row_sum = self.row_sum * scale_self + other.row_sum * scale_other
        merged.accumulator = (
            self.accumulator * scale_self[..., None] + other.accumulator * scale_other[..., None]
        )
        return merged

    # ------------------------------------------------------------------ #
    def finalize(self, *, dtype=None, fill_empty: float = 0.0) -> np.ndarray:
        """Normalise the accumulator into the attention output.

        Rows that never received a score (fully masked queries) are filled with
        ``fill_empty`` (0 by default, matching the graph kernels' behaviour of
        leaving ``O`` at its initialisation).
        """
        out = np.empty_like(self.accumulator)
        empty = self.row_sum == 0
        safe_sum = np.where(empty, 1.0, self.row_sum)
        np.divide(self.accumulator, safe_sum[..., None], out=out)
        out[empty] = fill_empty
        if dtype is not None:
            out = out.astype(dtype)
        return out


# --------------------------------------------------------------------------- #
# Segment softmax over CSR-ordered edge scores
# --------------------------------------------------------------------------- #
def segment_softmax_stats(
    scores: np.ndarray, indptr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row (max, sum, weights) of edge scores laid out in CSR order.

    ``scores[..., indptr[i]:indptr[i+1]]`` are row ``i``'s edge scores; any
    leading axes are independent batch slices sharing the one CSR structure.
    Returns the per-row maximum (``-inf`` for empty rows), the per-row sum of
    ``exp(score - max)`` (0 for empty rows) and the per-edge weights
    ``exp(score - row_max)``, all keeping the leading axes.  Implemented with
    ``ufunc.reduceat`` over the non-empty segments so no dense ``L x L``
    buffer is ever created.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    num_rows = indptr.size - 1
    scores = np.asarray(scores)
    batch_shape = scores.shape[:-1]
    row_max = np.full(batch_shape + (num_rows,), -np.inf, dtype=scores.dtype)
    row_sum = np.zeros(batch_shape + (num_rows,), dtype=scores.dtype)
    if scores.shape[-1] == 0:
        return row_max, row_sum, np.zeros(batch_shape + (0,), dtype=scores.dtype)
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths > 0)
    starts = indptr[nonempty]
    row_max[..., nonempty] = np.maximum.reduceat(scores, starts, axis=-1)
    edge_rows = np.repeat(np.arange(num_rows), lengths)
    weights = np.exp(scores - row_max[..., edge_rows])
    row_sum[..., nonempty] = np.add.reduceat(weights, starts, axis=-1)
    return row_max, row_sum, weights


def segment_weighted_sum(
    weights: np.ndarray, values: np.ndarray, indptr: np.ndarray, value_dim: int
) -> np.ndarray:
    """Per-row sum of ``weights[..., None] * values`` for CSR-ordered edges.

    ``values`` holds one value-row per edge (already gathered via the column
    indices, ``(..., nnz, d_v)``); the result has shape
    ``(..., num_rows, value_dim)`` with zero rows for empty segments.

    When a compiled backend is active (:mod:`repro.core.compiled`), the
    float64 path runs a fused single-pass reduction instead of materializing
    the ``weights * values`` temporary; every caller in the process shares
    whichever implementation is active, so cross-path bit-exactness
    invariants hold within a backend.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    fused = compiled.try_segment_weighted_sum(weights, values, indptr, value_dim)
    if fused is not None:
        return fused
    num_rows = indptr.size - 1
    batch_shape = weights.shape[:-1]
    acc = np.zeros(batch_shape + (num_rows, value_dim), dtype=values.dtype)
    if weights.shape[-1] == 0:
        return acc
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths > 0)
    starts = indptr[nonempty]
    weighted = weights[..., None] * values
    acc[..., nonempty, :] = np.add.reduceat(weighted, starts, axis=-2)
    return acc


def stable_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dense numerically-stable softmax with fully-masked (-inf) rows mapped to 0."""
    scores = np.asarray(scores)
    row_max = np.max(scores, axis=axis, keepdims=True)
    finite = np.isfinite(row_max)
    shifted = np.where(finite, scores - np.where(finite, row_max, 0.0), -np.inf)
    with np.errstate(invalid="ignore"):
        weights = np.exp(shifted)
    weights = np.nan_to_num(weights, nan=0.0, posinf=0.0)
    denom = np.sum(weights, axis=axis, keepdims=True)
    return np.divide(weights, denom, out=np.zeros_like(weights), where=denom > 0)
