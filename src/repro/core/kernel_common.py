"""Shared machinery for the graph-processing attention kernels.

All six kernels follow Algorithm 1: parallel over query rows, pull each
neighbour's key/value, maintain online-softmax statistics.  They differ only
in how neighbours are obtained (explicit COO/CSR input vs. implicit pattern
parameters) and in how the work is batched.  This module hosts the two
executor cores they share:

* :func:`streamed_attention` — the literal Algorithm 1 loop: one neighbour at
  a time, one online-softmax update per edge.  It is the executable
  specification used for verification and op accounting, not a fast path.
* :func:`csr_ordered_attention` — the vectorised work-optimal core: edge
  scores are evaluated in one fused pass over the CSR-ordered edge list and
  reduced per row with segment operations.  Exactly ``nnz`` dot products and
  ``nnz`` value accumulations are performed.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.dense import resolve_scale, validate_qkv
from repro.core.online_softmax import (
    OnlineSoftmaxState,
    accumulator_dtype,
    segment_softmax_stats,
    segment_weighted_sum,
)
from repro.core.result import AttentionResult, OpCounts
from repro.utils.validation import require

#: Executor names accepted by every graph kernel.
EXECUTORS = ("vectorized", "streamed")


def validate_executor(executor: str) -> str:
    require(executor in EXECUTORS, f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    return executor


def prepare_inputs(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: Optional[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, np.dtype]:
    """Validate shapes and upcast Q/K/V to the accumulation dtype."""
    validate_qkv(q, k, v)
    acc_dtype = accumulator_dtype(q.dtype)
    scale_value = resolve_scale(scale, q.shape[1])
    return (
        np.asarray(q, dtype=acc_dtype),
        np.asarray(k, dtype=acc_dtype),
        np.asarray(v, dtype=acc_dtype),
        scale_value,
        acc_dtype,
    )


def finalize_result(
    state: OnlineSoftmaxState,
    *,
    out_dtype,
    ops: OpCounts,
    algorithm: str,
    meta: Optional[dict] = None,
) -> AttentionResult:
    """Normalise a state into an :class:`AttentionResult`."""
    return AttentionResult(
        output=state.finalize(dtype=out_dtype),
        row_max=state.row_max.copy(),
        row_sum=state.row_sum.copy(),
        ops=ops,
        algorithm=algorithm,
        meta=dict(meta or {}),
    )


def streamed_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    neighbor_fn: Callable[[int], np.ndarray],
    *,
    scale: Optional[float] = None,
    algorithm: str = "streamed",
    search_steps: int = 0,
    meta: Optional[dict] = None,
) -> AttentionResult:
    """Literal Algorithm 1: per row, pull neighbours one at a time.

    ``neighbor_fn(i)`` plays the role of ``Get_Neighbors(G, i, Pa)``.  The
    executor performs exactly one dot product, one exponential and one
    rescaled accumulation per edge — the work-optimal operation count — but
    pays Python-level loop overhead, so it is intended for verification and
    small problem sizes.
    """
    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    length, head_dim = q.shape
    value_dim = v.shape[1]
    state = OnlineSoftmaxState.initialise(length, value_dim, acc_dtype)
    edges = 0
    for i in range(length):
        neighbors = np.asarray(neighbor_fn(i))
        for j in neighbors:
            score = float(q_acc[i] @ k_acc[j]) * scale_value
            state.update_single(i, score, v_acc[j])
        edges += int(neighbors.size)
    ops = OpCounts.for_edges(edges, head_dim, value_dim, search_steps=search_steps)
    return finalize_result(
        state, out_dtype=q.dtype, ops=ops, algorithm=algorithm, meta=meta
    )


def csr_ordered_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    indptr: np.ndarray,
    cols: np.ndarray,
    *,
    scale: Optional[float] = None,
    algorithm: str = "csr",
    search_steps: int = 0,
    meta: Optional[dict] = None,
) -> AttentionResult:
    """Vectorised work-optimal core over CSR-ordered edges.

    ``indptr`` delimits each query row's edges inside ``cols``.  One fused
    pass computes the ``nnz`` edge scores, a segment softmax reduces them per
    row and a segment weighted sum accumulates the value rows — no dense
    ``L x L`` intermediate is ever formed.
    """
    q_acc, k_acc, v_acc, scale_value, _ = prepare_inputs(q, k, v, scale)
    length, head_dim = q.shape
    value_dim = v.shape[1]
    indptr = np.asarray(indptr, dtype=np.int64)
    cols = np.asarray(cols)
    require(indptr.size == length + 1, "indptr must have length L + 1")
    require(int(indptr[-1]) == cols.size, "indptr[-1] must equal the edge count")

    lengths = np.diff(indptr)
    edge_rows = np.repeat(np.arange(length), lengths)
    scores = np.einsum("ed,ed->e", q_acc[edge_rows], k_acc[cols]) * scale_value
    row_max, row_sum, weights = segment_softmax_stats(scores, indptr)
    acc = segment_weighted_sum(weights, v_acc[cols], indptr, value_dim)

    empty = row_sum == 0
    safe = np.where(empty, 1.0, row_sum)
    output = acc / safe[:, None]
    output[empty] = 0.0

    ops = OpCounts.for_edges(int(cols.size), head_dim, value_dim, search_steps=search_steps)
    return AttentionResult(
        output=output.astype(q.dtype),
        row_max=row_max.astype(np.float64),
        row_sum=row_sum.astype(np.float64),
        ops=ops,
        algorithm=algorithm,
        meta=dict(meta or {}),
    )
