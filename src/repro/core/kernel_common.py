"""Shared machinery for the graph-processing attention kernels.

All six kernels follow Algorithm 1: parallel over query rows, pull each
neighbour's key/value, maintain online-softmax statistics.  They differ only
in how neighbours are obtained (explicit COO/CSR input vs. implicit pattern
parameters) and in how the work is batched.  This module hosts the two
executor cores they share:

* :func:`streamed_attention` — the literal Algorithm 1 loop: one neighbour at
  a time, one online-softmax update per edge.  It is the executable
  specification used for verification and op accounting, not a fast path.
* :func:`csr_ordered_attention` — the vectorised work-optimal core: edge
  scores are evaluated in one fused pass over the CSR-ordered edge list and
  reduced per row with segment operations.  Exactly ``nnz`` dot products and
  ``nnz`` value accumulations are performed per batch slice.

Both cores accept ``(..., L, d)`` inputs: any leading axes (batch, heads) are
independent slices sharing one mask.  The vectorised core executes the whole
stack in fused NumPy passes — one gather, one einsum, one segment reduction —
so a ``(B, H)`` batch costs one kernel's worth of Python overhead, not
``B·H``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.dense import batch_size, resolve_scale, validate_qkv
from repro.core.online_softmax import (
    OnlineSoftmaxState,
    accumulator_dtype,
    segment_softmax_stats,
    segment_weighted_sum,
)
from repro.core.result import AttentionResult, OpCounts
from repro.utils.validation import require

#: Executor names accepted by every graph kernel.
EXECUTORS = ("vectorized", "streamed")


def validate_executor(executor: str) -> str:
    require(executor in EXECUTORS, f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    return executor


def prepare_inputs(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: Optional[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, np.dtype]:
    """Validate shapes and upcast Q/K/V to the accumulation dtype."""
    validate_qkv(q, k, v)
    acc_dtype = accumulator_dtype(q.dtype)
    scale_value = resolve_scale(scale, q.shape[-1])
    return (
        np.asarray(q, dtype=acc_dtype),
        np.asarray(k, dtype=acc_dtype),
        np.asarray(v, dtype=acc_dtype),
        scale_value,
        acc_dtype,
    )


def streamed_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    neighbor_fn: Callable[[int], np.ndarray],
    *,
    scale: Optional[float] = None,
    algorithm: str = "streamed",
    search_steps: int = 0,
    meta: Optional[dict] = None,
) -> AttentionResult:
    """Literal Algorithm 1: per row, pull neighbours one at a time.

    ``neighbor_fn(i)`` plays the role of ``Get_Neighbors(G, i, Pa)``.  The
    executor performs exactly one dot product, one exponential and one
    rescaled accumulation per edge — the work-optimal operation count — but
    pays Python-level loop overhead, so it is intended for verification and
    small problem sizes.  Batched inputs are executed slice by slice (this is
    the specification path; the vectorised executors are the fast path).
    """
    q_acc, k_acc, v_acc, scale_value, acc_dtype = prepare_inputs(q, k, v, scale)
    batch_shape = q.shape[:-2]
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    slices = batch_size(q)

    q3 = q_acc.reshape(slices, length, head_dim)
    k3 = k_acc.reshape(slices, length, head_dim)
    v3 = v_acc.reshape(slices, length, value_dim)

    outputs = np.zeros((slices, length, value_dim), dtype=acc_dtype)
    row_max = np.full((slices, length), -np.inf, dtype=np.float64)
    row_sum = np.zeros((slices, length), dtype=np.float64)
    edges = 0
    neighbor_lists = None
    for b in range(slices):
        state = OnlineSoftmaxState.initialise(length, value_dim, acc_dtype)
        if neighbor_lists is None:  # the mask is shared across slices
            neighbor_lists = []
            for i in range(length):
                neighbor_lists.append(np.asarray(neighbor_fn(i)))
                edges += int(neighbor_lists[i].size)
        for i in range(length):
            for j in neighbor_lists[i]:
                score = float(q3[b, i] @ k3[b, j]) * scale_value
                state.update_single(i, score, v3[b, j])
        outputs[b] = state.finalize()
        row_max[b] = state.row_max
        row_sum[b] = state.row_sum

    ops = OpCounts.for_edges(
        edges, head_dim, value_dim, search_steps=search_steps, batch=slices
    )
    return AttentionResult(
        output=outputs.reshape(batch_shape + (length, value_dim)).astype(q.dtype),
        row_max=row_max.reshape(batch_shape + (length,)),
        row_sum=row_sum.reshape(batch_shape + (length,)),
        ops=ops,
        algorithm=algorithm,
        meta=dict(meta or {}),
    )


def csr_ordered_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    indptr: np.ndarray,
    cols: np.ndarray,
    *,
    scale: Optional[float] = None,
    algorithm: str = "csr",
    search_steps: int = 0,
    meta: Optional[dict] = None,
) -> AttentionResult:
    """Vectorised work-optimal core over CSR-ordered edges.

    ``indptr`` delimits each query row's edges inside ``cols``.  One fused
    pass computes the ``nnz`` edge scores for every batch slice at once, a
    segment softmax reduces them per row and a segment weighted sum
    accumulates the value rows — no dense ``L x L`` intermediate is ever
    formed and the leading batch axes never touch a Python loop.
    """
    q_acc, k_acc, v_acc, scale_value, _ = prepare_inputs(q, k, v, scale)
    length, head_dim = q.shape[-2], q.shape[-1]
    value_dim = v.shape[-1]
    slices = batch_size(q)
    indptr = np.asarray(indptr, dtype=np.int64)
    cols = np.asarray(cols)
    require(indptr.size == length + 1, "indptr must have length L + 1")
    require(int(indptr[-1]) == cols.size, "indptr[-1] must equal the edge count")

    lengths = np.diff(indptr)
    edge_rows = np.repeat(np.arange(length), lengths)
    scores = (
        np.einsum("...ed,...ed->...e", q_acc[..., edge_rows, :], k_acc[..., cols, :])
        * scale_value
    )
    row_max, row_sum, weights = segment_softmax_stats(scores, indptr)
    acc = segment_weighted_sum(weights, v_acc[..., cols, :], indptr, value_dim)

    empty = row_sum == 0
    safe = np.where(empty, 1.0, row_sum)
    output = acc / safe[..., None]
    output[empty] = 0.0

    ops = OpCounts.for_edges(
        int(cols.size), head_dim, value_dim, search_steps=search_steps, batch=slices
    )
    return AttentionResult(
        output=output.astype(q.dtype),
        row_max=row_max.astype(np.float64),
        row_sum=row_sum.astype(np.float64),
        ops=ops,
        algorithm=algorithm,
        meta=dict(meta or {}),
    )
