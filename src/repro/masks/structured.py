"""Additional structured masks: causal, block-diagonal, dense and strided.

These patterns are not benchmarked directly in the paper but appear throughout
the sparse-attention literature the paper builds on (Sparse Transformers,
BigBird's block formulation) and are useful both as test fixtures and as
building blocks for composite masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.masks.base import MaskSpec
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


@dataclass(frozen=True, repr=False)
class CausalMask(MaskSpec):
    """Autoregressive mask: query ``i`` attends keys ``j <= i``."""

    kernel_hint = None

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        return np.arange(i + 1, dtype=INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        return np.arange(1, length + 1, dtype=np.int64)

    def nnz(self, length: int) -> int:
        self.validate_length(length)
        return length * (length + 1) // 2

    def draft_variant(self, fraction: float = 0.5) -> MaskSpec:
        """Strided thinning: keep every ``round(1/fraction)``-th previous token."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        stride = max(1, int(round(1.0 / fraction)))
        return self if stride == 1 else StridedMask(stride=stride)

    def describe(self) -> str:
        return "causal"


@dataclass(frozen=True, repr=False)
class DenseMask(MaskSpec):
    """The fully dense mask (every pair attends); Sf = 1."""

    kernel_hint = None

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        return np.arange(length, dtype=INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        return np.full(length, length, dtype=np.int64)

    def nnz(self, length: int) -> int:
        self.validate_length(length)
        return length * length

    def draft_variant(self, fraction: float = 0.5) -> MaskSpec:
        """Strided thinning, as for :class:`CausalMask` (decode rows are causal)."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        stride = max(1, int(round(1.0 / fraction)))
        return self if stride == 1 else StridedMask(stride=stride)

    def describe(self) -> str:
        return "dense"


@dataclass(frozen=True, repr=False)
class BlockDiagonalMask(MaskSpec):
    """Tokens attend all tokens in their own contiguous block (BigBird blocks)."""

    block_size: int

    kernel_hint = None

    def __post_init__(self) -> None:
        require(self.block_size >= 1, "block_size must be >= 1")

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        start = (i // self.block_size) * self.block_size
        stop = min(start + self.block_size, length)
        return np.arange(start, stop, dtype=INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        rows = np.arange(length, dtype=np.int64)
        start = (rows // self.block_size) * self.block_size
        stop = np.minimum(start + self.block_size, length)
        return stop - start

    def nnz(self, length: int) -> int:
        self.validate_length(length)
        full, rem = divmod(length, self.block_size)
        return full * self.block_size * self.block_size + rem * rem

    def draft_variant(self, fraction: float = 0.5) -> MaskSpec:
        """Same blocks, strided within them (intersection with a strided comb)."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        stride = max(1, int(round(1.0 / fraction)))
        return self if stride == 1 else self & StridedMask(stride=stride)

    def describe(self) -> str:
        return f"block_size={self.block_size}"


@dataclass(frozen=True, repr=False)
class StridedMask(MaskSpec):
    """Sparse Transformer's strided pattern: attend every ``stride``-th previous token.

    Query ``i`` attends keys ``j <= i`` with ``(i - j) % stride == 0``.
    """

    stride: int

    kernel_hint = None

    def __post_init__(self) -> None:
        require(self.stride >= 1, "stride must be >= 1")

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        cols = np.arange(i, -1, -self.stride, dtype=np.int64)[::-1]
        return cols.astype(INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        rows = np.arange(length, dtype=np.int64)
        return rows // self.stride + 1

    def nnz(self, length: int) -> int:
        self.validate_length(length)
        return int(self.row_degrees(length).sum())

    def draft_variant(self, fraction: float = 0.5) -> "StridedMask":
        """A coarser stride (every ``round(1/fraction)``-th attended offset kept)."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        factor = max(1, int(round(1.0 / fraction)))
        return self if factor == 1 else StridedMask(stride=self.stride * factor)

    def describe(self) -> str:
        return f"stride={self.stride}"
