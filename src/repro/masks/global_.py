"""Global attention masks.

Global attention (Fig. 2, blue cells) designates a small set of tokens that
attend to every token and are attended by every token — Longformer's and
BigBird's global component.

The paper's *global (non-local)* kernel additionally subtracts a local window
from the global pattern so that, when composed sequentially with the local
kernel, no edge is processed twice (Section IV-B).  Both the pure pattern and
the non-local variant are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.masks.base import MaskSpec
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


def _normalise_tokens(tokens: Sequence[int]) -> tuple:
    arr = np.unique(np.asarray(list(tokens), dtype=np.int64))
    return tuple(int(t) for t in arr)


@dataclass(frozen=True, repr=False)
class GlobalMask(MaskSpec):
    """Pure global attention for a designated token set.

    Query ``i`` attends key ``j`` iff ``i`` is a global token (full row) or
    ``j`` is a global token (full column).
    """

    global_tokens: tuple
    kernel_hint = "global"

    def __init__(self, global_tokens: Sequence[int]):
        object.__setattr__(self, "global_tokens", _normalise_tokens(global_tokens))
        require(len(self.global_tokens) > 0, "need at least one global token")
        require(min(self.global_tokens) >= 0, "global token indices must be non-negative")

    def validate_length(self, length: int) -> None:
        super().validate_length(length)
        require(max(self.global_tokens) < length, "global token index exceeds context length")

    @property
    def num_global(self) -> int:
        return len(self.global_tokens)

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        if i in self.global_tokens:
            return np.arange(length, dtype=INDEX_DTYPE)
        return np.asarray(self.global_tokens, dtype=INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        degrees = np.full(length, self.num_global, dtype=np.int64)
        degrees[list(self.global_tokens)] = length
        return degrees

    def nnz(self, length: int) -> int:
        """``g·L`` full rows plus ``g·(L-g)`` extra column entries."""
        self.validate_length(length)
        g = self.num_global
        return int(g * length + g * (length - g))

    def draft_variant(self, fraction: float = 0.5) -> "GlobalMask":
        """Keep only the leading ``ceil(g·fraction)`` global tokens."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        keep = max(1, int(np.ceil(self.num_global * fraction)))
        return GlobalMask(self.global_tokens[:keep])

    def describe(self) -> str:
        return f"global_tokens={list(self.global_tokens)}"


@dataclass(frozen=True, repr=False)
class GlobalNonLocalMask(MaskSpec):
    """Global attention minus a local window — the paper's ``Global`` kernel input.

    Designed to be composed with :class:`~repro.masks.windowed.LocalMask` of
    the same ``window``: their union is Longformer's local+global pattern and
    the two edge sets are disjoint, so a sequential two-kernel execution does
    not double count any edge.
    """

    global_tokens: tuple
    window: int = 1
    kernel_hint = "global"

    def __init__(self, global_tokens: Sequence[int], window: int = 1):
        object.__setattr__(self, "global_tokens", _normalise_tokens(global_tokens))
        object.__setattr__(self, "window", int(window))
        require(len(self.global_tokens) > 0, "need at least one global token")
        require(min(self.global_tokens) >= 0, "global token indices must be non-negative")
        require(self.window >= 1, "window must be >= 1")

    def validate_length(self, length: int) -> None:
        super().validate_length(length)
        require(max(self.global_tokens) < length, "global token index exceeds context length")

    @property
    def num_global(self) -> int:
        return len(self.global_tokens)

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        if i in self.global_tokens:
            cols = np.arange(length, dtype=np.int64)
        else:
            cols = np.asarray(self.global_tokens, dtype=np.int64)
        keep = np.abs(cols - i) >= self.window
        return cols[keep].astype(INDEX_DTYPE)

    def nnz(self, length: int) -> int:
        return int(self.row_degrees(length).sum())

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        globals_arr = np.asarray(self.global_tokens, dtype=np.int64)
        rows = np.arange(length, dtype=np.int64)
        # non-global rows: global columns outside the window
        dist = np.abs(rows[:, None] - globals_arr[None, :])
        degrees = (dist >= self.window).sum(axis=1)
        # global rows: whole row outside the window
        for g in self.global_tokens:
            lo = max(0, g - self.window + 1)
            hi = min(length, g + self.window)
            degrees[g] = length - (hi - lo)
        return degrees

    def draft_variant(self, fraction: float = 0.5) -> "GlobalNonLocalMask":
        """Keep only the leading ``ceil(g·fraction)`` global tokens, same window."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        keep = max(1, int(np.ceil(self.num_global * fraction)))
        return GlobalNonLocalMask(self.global_tokens[:keep], window=self.window)

    def describe(self) -> str:
        return f"global_tokens={list(self.global_tokens)}, window={self.window}"
