"""Preset attention patterns used by well-known sparse transformers.

Fig. 2 and the Section V-F experiments use three named patterns:

* **Longformer (local + global)** — sliding window plus a few global tokens.
* **Longformer (dilated local + global)** — dilated sliding window plus globals.
* **BigBird (local + global + random)** — sliding window, globals and uniform
  random connections.

Each preset returns a :class:`~repro.masks.composite.UnionMask` whose
components are kept separate so the engine can run them as a sequence of
specialised kernels (the "Loc + Glo" / "Loc + Glo + CSR" curves of Fig. 6) or
collapse them into a single CSR mask (the "CSR" curves).

The LongNet helpers expose the geometric segment/dilation schedule the paper
uses to justify its sparsity-factor analysis (Section II-D) and the Table III
long-context configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.masks.composite import UnionMask
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.masks.random_ import RandomMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.utils.validation import require


def default_global_tokens(length: int, count: int = 3) -> Tuple[int, ...]:
    """Evenly spaced global token indices (first token always included)."""
    require(count >= 1, "need at least one global token")
    require(length >= count, "context length must be at least the global token count")
    step = max(1, length // count)
    return tuple(min(i * step, length - 1) for i in range(count))


def longformer_mask(
    reach: int = 50,
    global_tokens: Sequence[int] = (0,),
    *,
    dilation: int = 0,
) -> UnionMask:
    """Longformer pattern: (possibly dilated) sliding window plus global tokens.

    ``reach`` is the number of tokens visible in each direction, matching the
    Fig. 6 setup ("the local size was set to 50 in each direction").  The
    global component excludes edges already covered by the window so a
    sequential local+global kernel execution touches each edge exactly once.
    """
    window = reach + 1
    if dilation > 0:
        local = Dilated1DMask(window=reach * dilation + reach + 1, dilation=dilation)
        # with dilation d and reach n, Longformer keeps n attended positions per
        # side spaced (d+1) apart, widening the effective view to n*(d+1)
    else:
        local = LocalMask(window=window)
    global_part = GlobalNonLocalMask(global_tokens, window=window)
    return UnionMask([local, global_part], name="longformer")


def longformer_dilated_mask(
    reach: int = 50,
    global_tokens: Sequence[int] = (0,),
    *,
    dilation: int = 2,
) -> UnionMask:
    """Longformer with a dilated sliding window (the central mask of Fig. 2).

    The Fig. 6 middle panel uses "a dilation factor of two giving an effective
    local size of 100": each side keeps ``reach`` attended tokens spaced
    ``dilation`` apart, doubling the span covered.
    """
    require(dilation >= 1, "dilated Longformer needs dilation >= 1")
    return longformer_mask(reach=reach, global_tokens=global_tokens, dilation=dilation)


def bigbird_mask(
    reach: int = 50,
    global_tokens: Sequence[int] = (0,),
    *,
    random_sparsity: float = 0.001,
    seed: int = 0,
) -> UnionMask:
    """BigBird pattern: sliding window + global tokens + uniform random edges."""
    window = reach + 1
    local = LocalMask(window=window)
    global_part = GlobalNonLocalMask(global_tokens, window=window)
    random_part = RandomMask(sparsity=random_sparsity, seed=seed)
    return UnionMask([local, global_part, random_part], name="bigbird")


def bigbird_block_mask(
    block_size: int = 64,
    global_tokens: Sequence[int] = (0,),
    *,
    random_sparsity: float = 0.001,
    seed: int = 0,
    dilation: int = 1,
) -> UnionMask:
    """Block-structured BigBird variant built on the 2-D dilated component."""
    blocks = Dilated2DMask(block_size=block_size, dilation=dilation)
    global_part = GlobalMask(global_tokens)
    random_part = RandomMask(sparsity=random_sparsity, seed=seed)
    return UnionMask([blocks, global_part, random_part], name="bigbird-block")


# --------------------------------------------------------------------------- #
# LongNet schedule (Section II-D)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LongNetSchedule:
    """Geometric segment-length / dilation schedule from LongNet.

    Segment lengths are ``w0 * alpha^k`` and dilations ``alpha^k`` for
    ``k = 0 .. levels-1``; the paper plugs ``alpha = 2`` and ``w0 = 2048`` into
    this schedule to derive the ``2730 L`` dot-product budget of Section II-D.
    """

    w0: int = 2048
    alpha: float = 2.0
    levels: int = 4

    def __post_init__(self) -> None:
        require(self.w0 >= 1, "w0 must be >= 1")
        require(self.alpha > 1.0, "alpha must exceed 1")
        require(self.levels >= 1, "levels must be >= 1")

    def segment_lengths(self) -> List[int]:
        return [int(self.w0 * self.alpha**k) for k in range(self.levels)]

    def dilations(self) -> List[int]:
        return [int(self.alpha**k) for k in range(self.levels)]

    def dot_product_budget(self, length: int) -> float:
        """Dot products LongNet needs at context length ``L`` (paper Section II-D).

        Evaluates to the paper's ``2730 L`` for ``alpha = 2``, ``w0 = 2048``
        (see :func:`repro.masks.solvers.longnet_sparsity_factor` for the note
        on the paper's formula-vs-value discrepancy).
        """
        return self.alpha**2 / (self.alpha**2 - 1.0) * self.w0 * length

    def sparsity_factor(self, length: int) -> float:
        """Dot-product budget expressed as a sparsity factor, clamped to 1."""
        return min(1.0, self.dot_product_budget(length) / float(length * length))

    def masks(self, length: int) -> UnionMask:
        """Union of the per-level dilated segment masks at context length ``L``."""
        components = []
        for segment, dilation in zip(self.segment_lengths(), self.dilations()):
            block = min(segment, length)
            components.append(Dilated2DMask(block_size=block, dilation=max(dilation - 1, 0)))
        return UnionMask(components, name="longnet")
