"""Composite masks: union, intersection and difference of mask specs.

The popular attention patterns of Fig. 2 are compositions — Longformer is
local ∪ global, BigBird is local ∪ global ∪ random.  Composites keep their
component structure so the engine can either (a) materialise the union for a
single CSR kernel call, or (b) execute each component with its specialised
implicit kernel and merge the partial results with online-softmax statistics
(Section V-F compares exactly these two strategies).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.masks.base import MaskSpec, merge_neighbor_sets
from repro.sparse.csr import CSRMatrix
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


class UnionMask(MaskSpec):
    """Logical OR of several mask specs."""

    kernel_hint = None

    def __init__(self, components: Sequence[MaskSpec], name: str = "union"):
        comps: List[MaskSpec] = []
        for comp in components:
            # flatten nested unions so Longformer | random stays a flat 3-way union
            if isinstance(comp, UnionMask):
                comps.extend(comp.components)
            else:
                comps.append(comp)
        require(len(comps) >= 1, "union needs at least one component")
        self.components = tuple(comps)
        self._name = name

    def neighbors(self, i: int, length: int) -> np.ndarray:
        return merge_neighbor_sets(c.neighbors(i, length) for c in self.components)

    def to_csr(self, length: int, *, dtype=np.float32) -> CSRMatrix:
        result = self.components[0].to_csr(length, dtype=dtype)
        for comp in self.components[1:]:
            result = result.union(comp.to_csr(length, dtype=dtype))
        return result

    def nnz(self, length: int) -> int:
        if len(self.components) == 1:
            return self.components[0].nnz(length)
        return self.to_csr(length).nnz

    def row_degrees(self, length: int) -> np.ndarray:
        if len(self.components) == 1:
            return self.components[0].row_degrees(length)
        return self.to_csr(length).row_degrees()

    def upper_bound_nnz(self, length: int) -> int:
        """Sum of component edge counts — the work a sequential multi-kernel run does."""
        return int(sum(c.nnz(length) for c in self.components))

    def draft_variant(self, fraction: float = 0.5) -> "UnionMask":
        """Union of the component drafts (each family thins itself)."""
        return UnionMask(
            [c.draft_variant(fraction) for c in self.components],
            name=f"{self._name}-draft",
        )

    def describe(self) -> str:
        inner = " | ".join(c.describe() for c in self.components)
        return f"{self._name}({inner})"


class IntersectionMask(MaskSpec):
    """Logical AND of several mask specs."""

    kernel_hint = None

    def __init__(self, components: Sequence[MaskSpec]):
        require(len(components) >= 1, "intersection needs at least one component")
        self.components = tuple(components)

    def neighbors(self, i: int, length: int) -> np.ndarray:
        result = self.components[0].neighbors(i, length)
        for comp in self.components[1:]:
            result = np.intersect1d(result, comp.neighbors(i, length), assume_unique=False)
        return result.astype(INDEX_DTYPE)

    def draft_variant(self, fraction: float = 0.5) -> "IntersectionMask":
        """Thin the first component only: stays a subset of the intersection's superset."""
        return IntersectionMask(
            [self.components[0].draft_variant(fraction), *self.components[1:]]
        )

    def describe(self) -> str:
        inner = " & ".join(c.describe() for c in self.components)
        return f"intersection({inner})"


class DifferenceMask(MaskSpec):
    """Edges of ``left`` that are not edges of ``right`` (set difference)."""

    kernel_hint = None

    def __init__(self, left: MaskSpec, right: MaskSpec):
        self.left = left
        self.right = right

    def neighbors(self, i: int, length: int) -> np.ndarray:
        keep = np.setdiff1d(
            self.left.neighbors(i, length), self.right.neighbors(i, length), assume_unique=False
        )
        return keep.astype(INDEX_DTYPE)

    def draft_variant(self, fraction: float = 0.5) -> "DifferenceMask":
        """Thin the left side; the subtracted set stays exact."""
        return DifferenceMask(self.left.draft_variant(fraction), self.right)

    def describe(self) -> str:
        return f"difference({self.left.describe()} - {self.right.describe()})"
