"""Uniform random attention masks (BigBird's random component).

Random attention (Fig. 2, orange cells) connects each query to a handful of
uniformly chosen keys.  Two parameterisations are supported, matching how the
paper's experiments specify randomness:

* a target **sparsity factor** ``Sf`` (Fig. 6 uses ``Sf = 0.001`` for BigBird's
  random component), or
* a fixed number of **random keys per row** (the original BigBird recipe).

Sampling is deterministic given the seed and the context length so benchmark
cells are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.masks.base import MaskSpec
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


@dataclass(frozen=True, repr=False)
class RandomMask(MaskSpec):
    """Uniform random token-token connections.

    Exactly one of ``sparsity`` (target sparsity factor) or ``keys_per_row``
    must be given.  ``include_diagonal`` forces self-attention edges, which
    BigBird always keeps.
    """

    sparsity: Optional[float] = None
    keys_per_row: Optional[int] = None
    seed: int = 0
    include_diagonal: bool = False

    kernel_hint = None  # only explicit kernels can execute an arbitrary random mask

    def __post_init__(self) -> None:
        require(
            (self.sparsity is None) != (self.keys_per_row is None),
            "specify exactly one of sparsity or keys_per_row",
        )
        if self.sparsity is not None:
            require(0.0 < self.sparsity <= 1.0, "sparsity must be in (0, 1]")
        if self.keys_per_row is not None:
            require(self.keys_per_row >= 1, "keys_per_row must be >= 1")

    # ------------------------------------------------------------------ #
    def _keys_per_row(self, length: int) -> int:
        if self.keys_per_row is not None:
            return min(self.keys_per_row, length)
        per_row = int(round(self.sparsity * length))
        return max(1, min(per_row, length))

    def expected_nnz(self, length: int) -> int:
        """Edge count before adding the optional diagonal."""
        return self._keys_per_row(length) * length

    def _row_rng(self, i: int, length: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(length, i))
        )

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        k = self._keys_per_row(length)
        rng = self._row_rng(i, length)
        cols = rng.choice(length, size=k, replace=False)
        if self.include_diagonal and i not in cols:
            cols = np.concatenate([cols, [i]])
        return np.sort(cols).astype(INDEX_DTYPE)

    def to_csr(self, length: int, *, dtype=np.float32) -> CSRMatrix:
        """Vectorised materialisation (avoids the per-row Python loop)."""
        self.validate_length(length)
        lists = [self.neighbors(i, length) for i in range(length)]
        return CSRMatrix.from_row_lists((length, length), lists, dtype=dtype)

    def to_coo(self, length: int, *, dtype=np.float32) -> COOMatrix:
        return self.to_csr(length, dtype=dtype).to_coo()

    def nnz(self, length: int) -> int:
        if not self.include_diagonal:
            return self.expected_nnz(length)
        return int(self.row_degrees(length).sum())

    def sparsity_factor(self, length: int) -> float:
        return self.nnz(length) / float(length * length)

    def draft_variant(self, fraction: float = 0.5) -> "RandomMask":
        """Same seed, roughly ``fraction`` of the random keys per row."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        if self.keys_per_row is not None:
            keep = max(1, int(np.ceil(self.keys_per_row * fraction)))
            return RandomMask(
                keys_per_row=keep, seed=self.seed, include_diagonal=self.include_diagonal
            )
        return RandomMask(
            sparsity=max(self.sparsity * fraction, np.finfo(float).tiny),
            seed=self.seed,
            include_diagonal=self.include_diagonal,
        )

    def describe(self) -> str:
        if self.sparsity is not None:
            return f"sparsity={self.sparsity}, seed={self.seed}"
        return f"keys_per_row={self.keys_per_row}, seed={self.seed}"
