"""Mask specification base classes.

A :class:`MaskSpec` describes an attention mask *pattern* independent of a
particular context length ``L``.  It plays two roles, mirroring the paper's two
families of kernels:

* **Explicit masks** — any spec can be materialised into a dense array, a
  :class:`~repro.sparse.coo.COOMatrix` or a :class:`~repro.sparse.csr.CSRMatrix`
  for the COO/CSR graph kernels (and for the dense SDP baseline).
* **Implicit masks** — specs whose ``kernel_hint`` names one of the paper's
  ordered-sparsity kernels (``local``, ``dilated1d``, ``dilated2d``,
  ``global``) expose ``neighbors(i, L)``: the ``Get_Neighbors`` function of
  Algorithm 1, computing a row's neighbour set on the fly from the pattern
  parameters with no stored mask.

Mask algebra (``|`` for union, ``-`` for difference, ``&`` for intersection)
builds the composite Longformer / BigBird patterns of Fig. 2.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


class MaskSpec(abc.ABC):
    """Abstract attention-mask pattern, parameterised by context length later."""

    #: Name of the implicit graph kernel able to execute this pattern without
    #: materialising the mask, or ``None`` if only explicit kernels apply.
    kernel_hint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Required interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def neighbors(self, i: int, length: int) -> np.ndarray:
        """Sorted column indices attended by query row ``i`` (Get_Neighbors)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable description used in benchmark reports."""

    # ------------------------------------------------------------------ #
    # Derived interface (subclasses override when a cheaper form exists)
    # ------------------------------------------------------------------ #
    def row(self, i: int, length: int) -> np.ndarray:
        """Row ``i`` of the materialised mask at context length ``length``.

        Identical to ``to_csr(length).row_neighbors(i)`` for every spec, but
        computed from the pattern parameters in O(row edges) without
        materialising the full graph — the extractor the incremental decode
        path (:mod:`repro.serve.decode`) calls once per generated token, so a
        decode step costs O(edges of its own row), not O(all edges).
        """
        return self.neighbors(i, length)

    def causal_row(self, i: int, length: int) -> np.ndarray:
        """Neighbours of row ``i`` restricted to already-generated keys (``j <= i``).

        Autoregressive decoding at position ``i`` only has keys ``0..i`` in
        its KV cache; this is :meth:`row` clipped to that prefix.
        """
        cols = self.row(i, length)
        return cols[cols <= i]

    def validate_length(self, length: int) -> None:
        require(length > 0, "context length must be positive")

    def row_degrees(self, length: int) -> np.ndarray:
        """Number of attended keys per query row."""
        self.validate_length(length)
        return np.array([self.neighbors(i, length).size for i in range(length)], dtype=np.int64)

    def nnz(self, length: int) -> int:
        """Number of mask non-zeros (graph edges) at context length ``length``."""
        return int(self.row_degrees(length).sum())

    def sparsity_factor(self, length: int) -> float:
        """``Sf = NNZ / L^2`` — Eq. (2) of the paper."""
        self.validate_length(length)
        return self.nnz(length) / float(length * length)

    def neighbor_lists(self, length: int) -> List[np.ndarray]:
        """Neighbour arrays for every row (used to build CSR explicitly)."""
        self.validate_length(length)
        return [self.neighbors(i, length) for i in range(length)]

    def to_csr(self, length: int, *, dtype=np.float32) -> CSRMatrix:
        """Materialise as a CSR mask."""
        return CSRMatrix.from_row_lists(
            (length, length), self.neighbor_lists(length), dtype=dtype
        )

    def to_coo(self, length: int, *, dtype=np.float32) -> COOMatrix:
        """Materialise as a COO mask."""
        return self.to_csr(length, dtype=dtype).to_coo()

    def to_dense(self, length: int, *, dtype=np.float32) -> np.ndarray:
        """Materialise as a dense 0/1 array (small ``L`` only)."""
        return self.to_csr(length, dtype=dtype).to_dense()

    def contains(self, i: int, j: int, length: int) -> bool:
        """Whether query ``i`` attends to key ``j`` under this pattern."""
        return bool(np.isin(j, self.neighbors(i, length)))

    def draft_variant(self, fraction: float = 0.5) -> "MaskSpec":
        """A cheaper variant of this pattern for speculative draft passes.

        Speculative decoding (:mod:`repro.serve.speculate`) proposes tokens
        with a *draft* pass over a narrowed mask and verifies them against
        the full one; ``fraction`` is the rough share of each row's edges
        the draft should keep (families round to their natural parameter
        granularity).  Subclasses override with a structurally thinner
        member of their own family; the base fallback returns ``self`` —
        a draft identical to the target always agrees, so speculation
        degenerates to pure multi-token batching (safe, never wrong).
        """
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        return self

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __or__(self, other: "MaskSpec") -> "MaskSpec":
        from repro.masks.composite import UnionMask

        return UnionMask([self, other])

    def __and__(self, other: "MaskSpec") -> "MaskSpec":
        from repro.masks.composite import IntersectionMask

        return IntersectionMask([self, other])

    def __sub__(self, other: "MaskSpec") -> "MaskSpec":
        from repro.masks.composite import DifferenceMask

        return DifferenceMask(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"


class TranslationInvariantMask(MaskSpec):
    """Mask whose row-``i`` neighbours are ``i + offsets`` clipped to range.

    Local and 1-D dilated windows fall in this class; the fixed offset vector
    is what the vectorised kernels exploit.
    """

    @abc.abstractmethod
    def offsets(self) -> np.ndarray:
        """Sorted relative offsets ``j - i`` attended by every row (pre-clipping)."""

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        cols = i + self.offsets()
        cols = cols[(cols >= 0) & (cols < length)]
        return cols.astype(INDEX_DTYPE)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        offsets = self.offsets()
        rows = np.arange(length, dtype=np.int64)[:, None]
        cols = rows + offsets[None, :]
        valid = (cols >= 0) & (cols < length)
        return valid.sum(axis=1)

    def nnz(self, length: int) -> int:
        """Exact edge count: each offset ``d`` contributes ``L - |d|`` pairs."""
        self.validate_length(length)
        offsets = np.abs(self.offsets().astype(np.int64))
        contributions = np.maximum(length - offsets, 0)
        return int(contributions.sum())


def as_mask_spec(mask) -> MaskSpec:
    """Coerce dense arrays / sparse containers into an explicit mask spec."""
    from repro.masks.explicit import ExplicitMask

    if isinstance(mask, MaskSpec):
        return mask
    return ExplicitMask.from_any(mask)


def merge_neighbor_sets(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """Sorted union of several neighbour index arrays."""
    arrays = [np.asarray(a, dtype=INDEX_DTYPE) for a in arrays if np.asarray(a).size]
    if not arrays:
        return np.empty(0, dtype=INDEX_DTYPE)
    return np.unique(np.concatenate(arrays)).astype(INDEX_DTYPE)
