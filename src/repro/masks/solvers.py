"""Solvers mapping a target sparsity factor to mask parameters (and back).

The microbenchmarks of Section V-C sweep the *sparsity factor* and derive the
window / block size that realises it ("The local, 1D dilation, and 2D dilation
masks calculated window/block size to fit the associated sparsity factor"),
and Table III / Fig. 5 derive window sizes from the LongNet sparsity schedule
of Section II-D.  These helpers perform those conversions exactly.
"""

from __future__ import annotations

import math

from repro.masks.dilated2d import Dilated2DMask
from repro.masks.windowed import Dilated1DMask, LocalMask
from repro.utils.validation import require


def _check_target(length: int, sparsity: float) -> None:
    require(length > 0, "context length must be positive")
    require(0.0 < sparsity <= 1.0, "sparsity factor must lie in (0, 1]")


def local_window_for_sparsity(length: int, sparsity: float) -> int:
    """Smallest window ``w`` whose :class:`LocalMask` reaches ``Sf >= sparsity``.

    Uses the closed-form edge count ``L(2w-1) - (w-1)w`` and a final exact
    adjustment, so the returned mask's true sparsity factor is the tightest
    value at or above the target.
    """
    _check_target(length, sparsity)
    target_nnz = sparsity * length * length
    # closed-form first guess ignoring boundary effects: L(2w-1) ~= target
    guess = max(1, int(math.ceil((target_nnz / length + 1.0) / 2.0)))
    w = min(guess, length)
    while w < length and LocalMask(window=w).nnz(length) < target_nnz:
        w += 1
    while w > 1 and LocalMask(window=w - 1).nnz(length) >= target_nnz:
        w -= 1
    return w


def dilated1d_window_for_sparsity(length: int, sparsity: float, dilation: int = 1) -> int:
    """Window for :class:`Dilated1DMask` at dilation ``r`` reaching the target ``Sf``."""
    _check_target(length, sparsity)
    require(dilation >= 0, "dilation must be >= 0")
    target_nnz = sparsity * length * length
    stride = dilation + 1
    # number of attended offsets ~= 2*(w-1)/stride + 1, each contributing ~L edges
    guess_steps = max(0, int(math.ceil((target_nnz / length - 1.0) / 2.0)))
    w = min(guess_steps * stride + 1, length)
    w = max(w, 1)
    while w < length and Dilated1DMask(window=w, dilation=dilation).nnz(length) < target_nnz:
        w += stride
    while (
        w - stride >= 1
        and Dilated1DMask(window=w - stride, dilation=dilation).nnz(length) >= target_nnz
    ):
        w -= stride
    return min(w, length)


def dilated2d_block_for_sparsity(length: int, sparsity: float, dilation: int = 1) -> int:
    """Block size for :class:`Dilated2DMask` at dilation ``r`` reaching the target ``Sf``.

    Each block of size ``b`` contributes ``ceil(b/(r+1))^2`` edges out of
    ``b * L`` possible in its rows, so larger blocks are denser; a bisection
    over ``b`` finds the smallest block size meeting the target.
    """
    _check_target(length, sparsity)
    require(dilation >= 0, "dilation must be >= 0")
    target_nnz = sparsity * length * length
    lo, hi = 1, length
    if Dilated2DMask(block_size=length, dilation=dilation).nnz(length) < target_nnz:
        return length
    while lo < hi:
        mid = (lo + hi) // 2
        if Dilated2DMask(block_size=mid, dilation=dilation).nnz(length) >= target_nnz:
            hi = mid
        else:
            lo = mid + 1
    return lo


def achieved_sparsity(mask_spec, length: int) -> float:
    """Sparsity factor a mask spec actually realises at context length ``length``."""
    return mask_spec.nnz(length) / float(length * length)


def longnet_sparsity_factor(length: int, *, w0: int = 2048, alpha: float = 2.0) -> float:
    """LongNet's dot-product budget as a sparsity factor (paper Section II-D).

    The paper states the budget formula as ``2 alpha / (alpha - 1) * w0 * L``
    but evaluates it to ``2730 L`` for ``alpha = 2`` and ``w0 = 2048``, which
    corresponds to ``alpha^2 / (alpha^2 - 1) * w0 * L`` (= 4/3 * 2048 * L).
    The numeric value is the one the paper's sparsity table (Sf = 0.17 at 16k,
    1.7e-5 at 160M) and the Table III sparsity schedule are derived from, so we
    follow it; the formula discrepancy is noted in EXPERIMENTS.md.  The result
    is clamped to 1 for short sequences where the budget exceeds ``L^2``.
    """
    require(length > 0, "context length must be positive")
    require(alpha > 1.0, "alpha must exceed 1")
    budget = alpha * alpha / (alpha * alpha - 1.0) * w0 * length
    return min(1.0, budget / float(length * length))


def longnet_window_for_length(length: int, *, w0: int = 2048, alpha: float = 2.0) -> int:
    """Local-window size realising the LongNet sparsity schedule at length ``L``.

    Used by the Table III reproduction, where the local kernel's window is
    chosen so its sparsity matches Section II-D at each context length.
    """
    return local_window_for_sparsity(length, longnet_sparsity_factor(length, w0=w0, alpha=alpha))
