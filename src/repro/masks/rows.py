"""Compiled per-row extraction programs for incremental decoding.

A :class:`RowProgram` is the decode-time counterpart of an execution plan's
kernel steps: given a mask spec and a fixed *horizon* (the pattern length the
mask is evaluated at), it precomputes whatever makes per-row neighbour
extraction O(row edges) — the stencil offset vector for translation-invariant
windows, the token set for global patterns, the block geometry for 2-D
dilation — so that a decode step at position ``i`` can ask for the new
token's neighbour set without ever materialising the full attention graph.

Rows come in two flavours, mirroring :meth:`repro.masks.base.MaskSpec.row`:

* :meth:`RowProgram.row` — row ``i`` of the mask materialised at the horizon
  (equal to row ``i`` of ``spec.to_csr(horizon)``).
* :meth:`RowProgram.causal_row` — the same row clipped to keys ``j <= i``,
  the set an autoregressive decode step actually attends (only tokens
  ``0..i`` exist in the KV cache when token ``i`` is generated).

Composites union their component programs at extraction time; masks with no
specialised shape fall back to calling ``spec.row`` directly, which is still
O(row edges) for every spec in the library.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.masks.base import MaskSpec, TranslationInvariantMask, merge_neighbor_sets
from repro.masks.composite import UnionMask
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.explicit import ExplicitMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.sparse.csr import CSRMatrix
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


class RowProgram(abc.ABC):
    """Precompiled O(row edges) neighbour extractor for one mask at one horizon."""

    def __init__(self, horizon: int):
        require(horizon > 0, "horizon must be positive")
        self.horizon = int(horizon)
        self._causal_nnz: int = -1  # computed lazily; -1 = not yet derived

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def row(self, i: int) -> np.ndarray:
        """Sorted columns of row ``i`` of the mask materialised at the horizon."""

    @abc.abstractmethod
    def causal_degrees(self) -> np.ndarray:
        """Per-row causal neighbour counts (edges a full decode loop processes)."""

    def causal_row(self, i: int) -> np.ndarray:
        """Columns of row ``i`` clipped to the decoded prefix (``j <= i``)."""
        cols = self.row(i)
        return cols[cols <= i]

    # ------------------------------------------------------------------ #
    def _check_row(self, i: int) -> int:
        require(0 <= i < self.horizon, "row index out of range for the decode horizon")
        return int(i)

    def causal_nnz(self) -> int:
        """Total causal edges over the horizon (sum of :meth:`causal_degrees`)."""
        if self._causal_nnz < 0:
            self._causal_nnz = int(np.sum(self.causal_degrees()))
        return self._causal_nnz


@dataclass(frozen=True)
class _StencilSpec:
    """Offsets split once into the past/future halves a stencil row needs."""

    offsets: np.ndarray
    past: np.ndarray  # non-positive offsets, the only ones a causal row keeps


class StencilRowProgram(RowProgram):
    """Translation-invariant window: row ``i`` is ``i + offsets`` clipped to range."""

    def __init__(self, spec: TranslationInvariantMask, horizon: int):
        super().__init__(horizon)
        offsets = np.asarray(spec.offsets(), dtype=np.int64)
        self.stencil = _StencilSpec(offsets=offsets, past=offsets[offsets <= 0])

    def row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        cols = i + self.stencil.offsets
        return cols[(cols >= 0) & (cols < self.horizon)].astype(INDEX_DTYPE)

    def causal_row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        cols = i + self.stencil.past
        return cols[cols >= 0].astype(INDEX_DTYPE)

    def causal_degrees(self) -> np.ndarray:
        # offset -o (o >= 0) contributes to every row i >= o
        reach = np.sort(-self.stencil.past)
        return np.searchsorted(reach, np.arange(self.horizon), side="right")


class GlobalRowProgram(RowProgram):
    """Global tokens pattern, optionally minus a local window (``window=0`` keeps all)."""

    def __init__(self, tokens: Tuple[int, ...], window: int, horizon: int):
        super().__init__(horizon)
        require(window >= 0, "window exclusion must be >= 0")
        self.tokens = np.unique(np.asarray(tokens, dtype=np.int64))
        require(self.tokens.size > 0, "need at least one global token")
        require(
            0 <= int(self.tokens[0]) and int(self.tokens[-1]) < horizon,
            "global token index out of range for the decode horizon",
        )
        self.window = int(window)
        self._token_set = frozenset(int(t) for t in self.tokens)

    def row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        if i in self._token_set:
            cols = np.arange(self.horizon, dtype=np.int64)
        else:
            cols = self.tokens
        if self.window:
            cols = cols[np.abs(cols - i) >= self.window]
        return cols.astype(INDEX_DTYPE)

    def causal_row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        # causal clip of |j - i| >= window is simply j <= i - window (j <= i if window=0)
        upper = i - self.window if self.window else i
        if i in self._token_set:
            return np.arange(max(upper + 1, 0), dtype=INDEX_DTYPE)
        cols = self.tokens[self.tokens <= upper]
        return cols.astype(INDEX_DTYPE)

    def causal_degrees(self) -> np.ndarray:
        rows = np.arange(self.horizon, dtype=np.int64)
        upper = rows - self.window if self.window else rows
        degrees = np.searchsorted(self.tokens, upper, side="right")
        degrees[self.tokens] = np.maximum(upper[self.tokens] + 1, 0)
        return degrees


class Dilated2DRowProgram(RowProgram):
    """Blocked 2-D dilation: on-grid rows attend their block's grid prefix."""

    def __init__(self, spec: Dilated2DMask, horizon: int):
        super().__init__(horizon)
        self.block_size = spec.block_size
        self.stride = spec.stride

    def _block_start(self, i: int) -> int:
        return (i // self.block_size) * self.block_size

    def row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        start = self._block_start(i)
        if (i - start) % self.stride:
            return np.empty(0, dtype=INDEX_DTYPE)
        stop = min(start + self.block_size, self.horizon)
        return np.arange(start, stop, self.stride, dtype=INDEX_DTYPE)

    def causal_row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        start = self._block_start(i)
        if (i - start) % self.stride:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.arange(start, i + 1, self.stride, dtype=INDEX_DTYPE)

    def causal_degrees(self) -> np.ndarray:
        rows = np.arange(self.horizon, dtype=np.int64)
        start = (rows // self.block_size) * self.block_size
        intra = rows - start
        on_grid = intra % self.stride == 0
        return np.where(on_grid, intra // self.stride + 1, 0)


class CSRRowProgram(RowProgram):
    """Already-materialised mask: rows are O(1) slices of the CSR index vector."""

    def __init__(self, matrix: CSRMatrix, horizon: int):
        super().__init__(horizon)
        require(
            matrix.shape == (horizon, horizon),
            f"explicit mask shape {matrix.shape} != decode horizon ({horizon}, {horizon})",
        )
        self.matrix = matrix

    def row(self, i: int) -> np.ndarray:
        i = self._check_row(i)
        return self.matrix.row_neighbors(i)

    def causal_degrees(self) -> np.ndarray:
        edge_rows = self.matrix.expanded_rows()
        causal = self.matrix.indices <= edge_rows
        return np.bincount(edge_rows[causal], minlength=self.horizon).astype(np.int64)


class UnionRowProgram(RowProgram):
    """Union mask: merge the component programs' rows at extraction time."""

    def __init__(self, programs: Tuple[RowProgram, ...], horizon: int):
        super().__init__(horizon)
        require(len(programs) >= 1, "union program needs at least one component")
        self.programs = tuple(programs)

    def row(self, i: int) -> np.ndarray:
        return merge_neighbor_sets(p.row(i) for p in self.programs)

    def causal_row(self, i: int) -> np.ndarray:
        return merge_neighbor_sets(p.causal_row(i) for p in self.programs)

    def causal_degrees(self) -> np.ndarray:
        # upper bound: overlapping component edges are deduplicated at
        # extraction time, but a sequential multi-kernel execution (and the
        # perf model's per-step cost) processes each component's edges
        degrees = np.zeros(self.horizon, dtype=np.int64)
        for program in self.programs:
            degrees = degrees + program.causal_degrees()
        return degrees


class SpecRowProgram(RowProgram):
    """Fallback: defer to ``spec.row`` (O(row edges) for every library spec)."""

    def __init__(self, spec: MaskSpec, horizon: int):
        super().__init__(horizon)
        spec.validate_length(horizon)
        self.spec = spec

    def row(self, i: int) -> np.ndarray:
        return self.spec.row(self._check_row(i), self.horizon)

    def causal_degrees(self) -> np.ndarray:
        return np.array(
            [self.causal_row(i).size for i in range(self.horizon)], dtype=np.int64
        )


def compile_row_program(spec: MaskSpec, horizon: int) -> RowProgram:
    """Compile ``spec`` at ``horizon`` into the most specialised row program.

    Translation-invariant windows get their stencil offsets hoisted, global
    patterns their token vector, 2-D dilation its block geometry, explicit
    masks an O(1) CSR row slice, and unions a component-wise merge; everything
    else falls back to calling ``spec.row`` per step.
    """
    require(isinstance(spec, MaskSpec), "row programs compile MaskSpec patterns")
    if isinstance(spec, TranslationInvariantMask):
        return StencilRowProgram(spec, horizon)
    if isinstance(spec, GlobalNonLocalMask):
        return GlobalRowProgram(spec.global_tokens, spec.window, horizon)
    if isinstance(spec, GlobalMask):
        return GlobalRowProgram(spec.global_tokens, 0, horizon)
    if isinstance(spec, Dilated2DMask):
        return Dilated2DRowProgram(spec, horizon)
    if isinstance(spec, ExplicitMask):
        spec.validate_length(horizon)
        return CSRRowProgram(spec.matrix, horizon)
    if isinstance(spec, UnionMask):
        return UnionRowProgram(
            tuple(compile_row_program(c, horizon) for c in spec.components), horizon
        )
    return SpecRowProgram(spec, horizon)
