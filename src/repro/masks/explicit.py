"""Wrapper turning a concrete (already materialised) mask into a :class:`MaskSpec`.

Users of the explicit COO/CSR kernels often already hold a mask as a dense
array, a scipy sparse matrix or a repro sparse container.  ``ExplicitMask``
adapts those to the spec interface so they can flow through the same engine,
mask algebra and graph analysis paths as the pattern-defined masks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.masks.base import MaskSpec
from repro.sparse.conversions import coerce_mask
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require


class ExplicitMask(MaskSpec):
    """A mask spec backed by a concrete :class:`CSRMatrix` for a fixed length."""

    kernel_hint = None

    def __init__(self, matrix: CSRMatrix, name: str = "explicit"):
        require(isinstance(matrix, CSRMatrix), "ExplicitMask wraps a CSRMatrix")
        require(matrix.shape[0] == matrix.shape[1], "attention masks must be square")
        self._matrix = matrix
        self._name = name

    # ------------------------------------------------------------------ #
    @classmethod
    def from_any(cls, mask, *, name: str = "explicit") -> "ExplicitMask":
        """Build from a dense array, scipy matrix, COOMatrix or CSRMatrix."""
        return cls(coerce_mask(mask, fmt="csr"), name=name)

    @property
    def length(self) -> int:
        """The fixed context length this mask was materialised for."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> CSRMatrix:
        return self._matrix

    # ------------------------------------------------------------------ #
    def validate_length(self, length: int) -> None:
        super().validate_length(length)
        require(
            length == self.length,
            f"explicit mask was built for L={self.length}, got L={length}",
        )

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        return self._matrix.row_neighbors(i)

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        return self._matrix.row_degrees()

    def nnz(self, length: Optional[int] = None) -> int:
        if length is not None:
            self.validate_length(length)
        return self._matrix.nnz

    def sparsity_factor(self, length: Optional[int] = None) -> float:
        if length is not None:
            self.validate_length(length)
        return self._matrix.sparsity_factor

    def to_csr(self, length: int, *, dtype=np.float32) -> CSRMatrix:
        self.validate_length(length)
        return self._matrix

    def to_coo(self, length: int, *, dtype=np.float32) -> COOMatrix:
        self.validate_length(length)
        return self._matrix.to_coo()

    def to_dense(self, length: int, *, dtype=np.float32) -> np.ndarray:
        self.validate_length(length)
        return self._matrix.to_dense().astype(dtype)

    def draft_variant(self, fraction: float = 0.5) -> "ExplicitMask":
        """Row-thinned copy at the same fixed length.

        Keeps the *last* ``ceil(degree·fraction)`` columns of every row — the
        entries closest to (and including) the diagonal, which are the ones a
        causal decode row actually reaches — so the draft stays a subset of
        the full mask at identical shape.
        """
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        rows = []
        for i in range(self.length):
            cols = self._matrix.row_neighbors(i)
            keep = max(1, int(np.ceil(cols.size * fraction))) if cols.size else 0
            rows.append(cols[cols.size - keep :])
        thinned = CSRMatrix.from_row_lists((self.length, self.length), rows)
        return ExplicitMask(thinned, name=f"{self._name}-draft")

    def describe(self) -> str:
        return f"{self._name}: L={self.length}, nnz={self._matrix.nnz}"
