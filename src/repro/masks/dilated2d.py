"""2-D dilated (blocked) attention mask.

LongNet-style dilation over two dimensions (paper Section II-C): the sequence
is partitioned into contiguous blocks; inside a block, a query/key pair is
attended only when *both* of their intra-block positions land on the dilation
grid.

The paper's pseudo-code tests ``floor(i/(L/b)) == floor(j/(L/b))`` for block
membership while using ``i % b`` for the intra-block position, which is only
self-consistent when the block size equals ``b``.  We implement the natural
reading — contiguous blocks of ``block_size`` tokens, dilation ``r`` inside
each block — and note the deviation in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.masks.base import MaskSpec
from repro.utils.dtypes import INDEX_DTYPE
from repro.utils.validation import require


@dataclass(frozen=True, repr=False)
class Dilated2DMask(MaskSpec):
    """Block-diagonal mask with 2-D dilation inside each block.

    Query ``i`` attends key ``j`` iff they fall in the same ``block_size``-token
    block and both intra-block positions are multiples of ``dilation + 1``.
    Queries whose intra-block position is off the dilation grid attend nothing
    (their rows are empty), exactly as the paper's predicate returns 0.
    """

    block_size: int
    dilation: int = 1

    kernel_hint = "dilated2d"

    def __post_init__(self) -> None:
        require(self.block_size >= 1, "block_size must be >= 1")
        require(self.dilation >= 0, "dilation must be >= 0")

    @property
    def stride(self) -> int:
        return self.dilation + 1

    # ------------------------------------------------------------------ #
    def _block_bounds(self, i: int, length: int) -> tuple:
        start = (i // self.block_size) * self.block_size
        stop = min(start + self.block_size, length)
        return start, stop

    def neighbors(self, i: int, length: int) -> np.ndarray:
        self.validate_length(length)
        require(0 <= i < length, "row index out of range")
        start, stop = self._block_bounds(i, length)
        if (i - start) % self.stride != 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        cols = np.arange(start, stop, self.stride, dtype=np.int64)
        return cols.astype(INDEX_DTYPE)

    def active_rows(self, length: int) -> np.ndarray:
        """Rows whose intra-block position lies on the dilation grid."""
        rows = np.arange(length, dtype=np.int64)
        return rows[(rows % self.block_size) % self.stride == 0]

    def row_degrees(self, length: int) -> np.ndarray:
        self.validate_length(length)
        rows = np.arange(length, dtype=np.int64)
        block_start = (rows // self.block_size) * self.block_size
        block_stop = np.minimum(block_start + self.block_size, length)
        per_block = -(-(block_stop - block_start) // self.stride)  # ceil division
        active = (rows - block_start) % self.stride == 0
        return np.where(active, per_block, 0)

    def nnz(self, length: int) -> int:
        """Closed form: ``ceil(b/s)^2`` per full block plus the remainder block."""
        self.validate_length(length)
        full_blocks, remainder = divmod(length, self.block_size)
        per_full = -(-self.block_size // self.stride)
        total = full_blocks * per_full * per_full
        if remainder:
            per_rem = -(-remainder // self.stride)
            total += per_rem * per_rem
        return int(total)

    def draft_variant(self, fraction: float = 0.5) -> "Dilated2DMask":
        """Coarsen the dilation grid so roughly ``fraction`` of columns survive.

        Rows keep their grid membership (the draft stride is a multiple of the
        full stride), so a row that attends under the full mask still attends
        under the draft — only with fewer columns.
        """
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        factor = max(1, int(round(1.0 / fraction)))
        if factor == 1:
            return self
        return Dilated2DMask(self.block_size, dilation=self.stride * factor - 1)

    def describe(self) -> str:
        return f"block_size={self.block_size}, dilation={self.dilation}"
