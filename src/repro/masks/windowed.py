"""Local (windowed) and 1-D dilated windowed attention masks.

These are the first two "ordered sparsity" patterns of the paper (Fig. 2,
Section II-C).  The membership predicate follows the paper's pseudo-code
exactly:

* **Local**:   ``abs(i - j) < w``
* **1-D dilated**: ``abs(i - j) < w  and  abs(i - j) % (r + 1) == 0``

so ``w`` counts the token itself plus ``w - 1`` tokens in each direction.  The
Fig. 6 experiments describe the window as a *reach* ("local size was set to 50
in each direction"); :meth:`LocalMask.from_reach` converts that convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.masks.base import TranslationInvariantMask
from repro.utils.validation import require


@dataclass(frozen=True, repr=False)
class LocalMask(TranslationInvariantMask):
    """Sliding-window (local) attention: query ``i`` attends keys with ``|i-j| < window``."""

    window: int

    kernel_hint = "local"

    def __post_init__(self) -> None:
        require(self.window >= 1, "window must be >= 1 (1 attends only to self)")

    @classmethod
    def from_reach(cls, reach: int) -> "LocalMask":
        """Build from a per-direction reach ``n`` (``|i-j| <= n``), as used in Fig. 6."""
        require(reach >= 0, "reach must be >= 0")
        return cls(window=reach + 1)

    @property
    def reach(self) -> int:
        """Tokens visible in each direction (excluding self)."""
        return self.window - 1

    def offsets(self) -> np.ndarray:
        return np.arange(-(self.window - 1), self.window, dtype=np.int64)

    def nnz(self, length: int) -> int:
        """Closed form: ``L*(2w-1) - (w-1)w`` when ``L >= w`` (exact, with clipping)."""
        self.validate_length(length)
        w = min(self.window, length)
        return int(length * (2 * w - 1) - (w - 1) * w)

    def draft_variant(self, fraction: float = 0.5) -> "LocalMask":
        """A narrower window keeping roughly ``fraction`` of each row's edges."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        return LocalMask(window=max(1, int(np.ceil(self.window * fraction))))

    def describe(self) -> str:
        return f"window={self.window} (reach {self.reach})"


@dataclass(frozen=True, repr=False)
class Dilated1DMask(TranslationInvariantMask):
    """1-D dilated window: ``|i-j| < window`` and ``|i-j| % (dilation+1) == 0``.

    ``dilation = 0`` degenerates to :class:`LocalMask`.  A dilation of ``r``
    leaves uniform gaps of ``r`` tokens between attended positions, widening
    the effective view distance for the same number of edges (Longformer's
    dilated sliding window).
    """

    window: int
    dilation: int = 1

    kernel_hint = "dilated1d"

    def __post_init__(self) -> None:
        require(self.window >= 1, "window must be >= 1")
        require(self.dilation >= 0, "dilation must be >= 0")

    @property
    def stride(self) -> int:
        """Spacing between attended offsets (``dilation + 1``)."""
        return self.dilation + 1

    @property
    def effective_reach(self) -> int:
        """Farthest attended offset."""
        return ((self.window - 1) // self.stride) * self.stride

    def offsets(self) -> np.ndarray:
        max_step = (self.window - 1) // self.stride
        steps = np.arange(-max_step, max_step + 1, dtype=np.int64)
        return steps * self.stride

    def nnz(self, length: int) -> int:
        self.validate_length(length)
        offsets = np.abs(self.offsets())
        return int(np.maximum(length - offsets, 0).sum())

    def draft_variant(self, fraction: float = 0.5) -> "Dilated1DMask":
        """Same dilation, narrower window (roughly ``fraction`` of the edges)."""
        require(0.0 < fraction <= 1.0, "draft fraction must be in (0, 1]")
        return Dilated1DMask(
            window=max(1, int(np.ceil(self.window * fraction))), dilation=self.dilation
        )

    def describe(self) -> str:
        return f"window={self.window}, dilation={self.dilation}"
