"""Attention-mask specifications (explicit and implicit).

This package implements the mask zoo of the paper's Fig. 2 plus the mask
algebra and solvers the experiments need:

* ordered-sparsity patterns with implicit ``Get_Neighbors`` support —
  :class:`LocalMask`, :class:`Dilated1DMask`, :class:`Dilated2DMask`,
  :class:`GlobalMask` / :class:`GlobalNonLocalMask`;
* stochastic and structured patterns — :class:`RandomMask`,
  :class:`CausalMask`, :class:`BlockDiagonalMask`, :class:`StridedMask`,
  :class:`DenseMask`;
* composites (:class:`UnionMask`, ...) and the Longformer / BigBird / LongNet
  presets of Section V-F;
* solvers converting a target sparsity factor into window / block parameters
  (Section V-C) and the LongNet sparsity schedule (Section II-D);
* compiled per-row extractors (:mod:`repro.masks.rows`) that make
  ``MaskSpec.row(i, L)`` an O(row edges) operation for the incremental
  decode path — no full-graph materialisation per step.
"""

from repro.masks.base import MaskSpec, TranslationInvariantMask, as_mask_spec
from repro.masks.composite import DifferenceMask, IntersectionMask, UnionMask
from repro.masks.dilated2d import Dilated2DMask
from repro.masks.explicit import ExplicitMask
from repro.masks.global_ import GlobalMask, GlobalNonLocalMask
from repro.masks.presets import (
    LongNetSchedule,
    bigbird_block_mask,
    bigbird_mask,
    default_global_tokens,
    longformer_dilated_mask,
    longformer_mask,
)
from repro.masks.random_ import RandomMask
from repro.masks.rows import RowProgram, compile_row_program
from repro.masks.solvers import (
    achieved_sparsity,
    dilated1d_window_for_sparsity,
    dilated2d_block_for_sparsity,
    local_window_for_sparsity,
    longnet_sparsity_factor,
    longnet_window_for_length,
)
from repro.masks.structured import BlockDiagonalMask, CausalMask, DenseMask, StridedMask
from repro.masks.windowed import Dilated1DMask, LocalMask

__all__ = [
    "BlockDiagonalMask",
    "CausalMask",
    "DenseMask",
    "Dilated1DMask",
    "Dilated2DMask",
    "DifferenceMask",
    "ExplicitMask",
    "GlobalMask",
    "GlobalNonLocalMask",
    "IntersectionMask",
    "LocalMask",
    "LongNetSchedule",
    "MaskSpec",
    "RandomMask",
    "RowProgram",
    "StridedMask",
    "TranslationInvariantMask",
    "UnionMask",
    "achieved_sparsity",
    "as_mask_spec",
    "bigbird_block_mask",
    "bigbird_mask",
    "compile_row_program",
    "default_global_tokens",
    "dilated1d_window_for_sparsity",
    "dilated2d_block_for_sparsity",
    "local_window_for_sparsity",
    "longformer_dilated_mask",
    "longformer_mask",
    "longnet_sparsity_factor",
    "longnet_window_for_length",
]
