"""Seeded random number helpers.

The verification protocol in the paper (Section V-A) draws Q, K and V from the
uniform distribution on ``[0, 1)`` — :func:`random_qkv` reproduces that setup.
All randomness in the library flows through explicit ``numpy.random.Generator``
objects so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.utils.dtypes import resolve_dtype

GeneratorLike = Union[int, np.random.Generator, None]


def default_rng(seed: GeneratorLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``seed`` may be ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, *streams: Union[int, str]) -> int:
    """Derive a deterministic child seed from a base seed and stream labels.

    Used to give every (algorithm, L, dk, Sf) benchmark cell its own
    independent but reproducible stream.
    """
    ss = np.random.SeedSequence(seed, spawn_key=tuple(abs(hash(s)) % (2**31) for s in streams))
    return int(ss.generate_state(1)[0])


def random_qkv(
    length: int,
    dim: int,
    *,
    dtype: Union[str, np.dtype] = np.float32,
    heads: Optional[int] = None,
    batch: Optional[int] = None,
    seed: GeneratorLike = 0,
    distribution: str = "uniform",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw query/key/value matrices matching the paper's verification setup.

    Parameters
    ----------
    length:
        Context length ``L``.
    dim:
        Per-head embedded dimension ``dk``.
    heads, batch:
        Optional leading dimensions.  ``None`` produces 2-D ``(L, dk)``
        matrices, matching the single-batch / single-head kernels of the paper.
    distribution:
        ``"uniform"`` (paper verification, ``[0, 1)``) or ``"normal"``.
    """
    if length <= 0 or dim <= 0:
        raise ValueError("length and dim must be positive")
    rng = default_rng(seed)
    resolved = resolve_dtype(dtype)
    shape: Tuple[int, ...] = (length, dim)
    if heads is not None:
        shape = (heads,) + shape
    if batch is not None:
        shape = (batch,) + shape

    def draw() -> np.ndarray:
        if distribution == "uniform":
            data = rng.random(shape, dtype=np.float64)
        elif distribution == "normal":
            data = rng.standard_normal(shape)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        return data.astype(resolved)

    return draw(), draw(), draw()
