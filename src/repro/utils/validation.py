"""Validation helpers mirroring the paper's correctness protocol.

Section V-A compares each kernel against PyTorch's masked SDP attention using
``allclose`` with ``atol = 1e-8``, ``rtol = 1e-5`` and ``equal_nan = True``.
:func:`assert_allclose_paper` applies exactly that check; the tolerances are
exported so tests can reference them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Absolute tolerance used by the paper's verification (Section V-A).
PAPER_ATOL = 1e-8
#: Relative tolerance used by the paper's verification (Section V-A).
PAPER_RTOL = 1e-5


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds.

    A tiny guard helper used throughout the library for argument validation so
    error messages stay uniform.
    """
    if not condition:
        raise ValueError(message)


def check_finite(array: np.ndarray, name: str = "array") -> None:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite entries")


@dataclass(frozen=True)
class AllcloseReport:
    """Outcome of an elementwise comparison between two attention outputs."""

    ok: bool
    max_abs_error: float
    max_rel_error: float
    mismatched: int
    total: int

    @property
    def mismatch_fraction(self) -> float:
        """Fraction of entries that fail the tolerance check."""
        return self.mismatched / self.total if self.total else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else "MISMATCH"
        return (
            f"[{status}] max_abs={self.max_abs_error:.3e} "
            f"max_rel={self.max_rel_error:.3e} "
            f"mismatched={self.mismatched}/{self.total}"
        )


def allclose_report(
    actual: np.ndarray,
    expected: np.ndarray,
    *,
    atol: float = PAPER_ATOL,
    rtol: float = PAPER_RTOL,
    equal_nan: bool = True,
) -> AllcloseReport:
    """Compare two arrays and return a structured report.

    NaNs are treated as equal when ``equal_nan`` (the paper sets this flag so
    fully-masked rows, which dense SDP turns into NaN, do not fail the check).
    """
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if actual.shape != expected.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {expected.shape}")
    close = np.isclose(actual, expected, atol=atol, rtol=rtol, equal_nan=equal_nan)
    both_nan = np.isnan(actual) & np.isnan(expected)
    diff = np.abs(actual - expected)
    diff[both_nan] = 0.0
    denom = np.abs(expected)
    rel = np.where(denom > 0, diff / np.maximum(denom, 1e-300), diff)
    rel[both_nan] = 0.0
    finite_diff = diff[np.isfinite(diff)]
    finite_rel = rel[np.isfinite(rel)]
    return AllcloseReport(
        ok=bool(close.all()),
        max_abs_error=float(finite_diff.max()) if finite_diff.size else 0.0,
        max_rel_error=float(finite_rel.max()) if finite_rel.size else 0.0,
        mismatched=int(close.size - np.count_nonzero(close)),
        total=int(close.size),
    )


def assert_allclose_paper(
    actual: np.ndarray,
    expected: np.ndarray,
    *,
    atol: float = PAPER_ATOL,
    rtol: float = PAPER_RTOL,
    context: Optional[str] = None,
) -> AllcloseReport:
    """Assert the paper's allclose check and return the report on success."""
    report = allclose_report(actual, expected, atol=atol, rtol=rtol, equal_nan=True)
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise AssertionError(f"{prefix}outputs differ beyond tolerance: {report}")
    return report
