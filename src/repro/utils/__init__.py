"""Shared utilities: dtype handling, seeded RNG, validation and timing.

These helpers back every other subpackage.  They intentionally contain no
attention- or graph-specific logic so that the substrates (``repro.sparse``,
``repro.masks``) and the core kernels (``repro.core``) can depend on them
without circular imports.
"""

from repro.utils.dtypes import (
    DTYPE_BYTES,
    INDEX_DTYPE,
    as_float_dtype,
    dtype_bytes,
    resolve_dtype,
)
from repro.utils.rng import default_rng, derive_seed, random_qkv
from repro.utils.timing import Timer, benchmark_callable
from repro.utils.validation import (
    PAPER_ATOL,
    PAPER_RTOL,
    allclose_report,
    assert_allclose_paper,
    check_finite,
    require,
)

__all__ = [
    "DTYPE_BYTES",
    "INDEX_DTYPE",
    "PAPER_ATOL",
    "PAPER_RTOL",
    "Timer",
    "allclose_report",
    "as_float_dtype",
    "assert_allclose_paper",
    "benchmark_callable",
    "check_finite",
    "default_rng",
    "derive_seed",
    "dtype_bytes",
    "random_qkv",
    "require",
    "resolve_dtype",
]
