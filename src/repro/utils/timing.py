"""Wall-clock timing helpers used by the benchmark harness.

The paper's protocol is 10 warm-up iterations followed by 15 timed iterations
with the mean reported (Sections V-C through V-F).  :func:`benchmark_callable`
implements that protocol; :class:`Timer` is a small context-manager stopwatch
used for coarse phase timing inside experiment drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class Timer:
    """Context-manager stopwatch based on ``time.perf_counter``."""

    label: str = ""
    elapsed: float = 0.0
    _start: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label or 'timer'}: {self.elapsed:.6f}s"


@dataclass(frozen=True)
class TimingResult:
    """Summary statistics of repeated timed runs of one callable."""

    label: str
    warmup: int
    iterations: int
    times: List[float]

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times) if self.times else float("nan")

    @property
    def minimum(self) -> float:
        return min(self.times) if self.times else float("nan")

    @property
    def maximum(self) -> float:
        return max(self.times) if self.times else float("nan")

    @property
    def stddev(self) -> float:
        if len(self.times) < 2:
            return 0.0
        mu = self.mean
        return (sum((t - mu) ** 2 for t in self.times) / (len(self.times) - 1)) ** 0.5


def benchmark_callable(
    func: Callable[[], object],
    *,
    warmup: int = 10,
    iterations: int = 15,
    label: str = "",
) -> TimingResult:
    """Run ``func`` with warm-up then timed iterations, as the paper does.

    ``warmup`` calls are executed and discarded, then ``iterations`` calls are
    individually timed with ``time.perf_counter``.
    """
    if warmup < 0 or iterations <= 0:
        raise ValueError("warmup must be >= 0 and iterations >= 1")
    for _ in range(warmup):
        func()
    times: List[float] = []
    for _ in range(iterations):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return TimingResult(label=label, warmup=warmup, iterations=iterations, times=times)
