"""Floating point and index dtype handling.

The paper evaluates FP32 and FP16 storage (Table II, Fig. 4) and uses int32
index vectors for the sparse formats.  All byte-accounting in
:mod:`repro.perfmodel.memory` goes through :data:`DTYPE_BYTES` so that the
memory model and the concrete containers stay consistent.
"""

from __future__ import annotations

from typing import Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: Index dtype used by the COO/CSR containers.  The paper's CUDA kernels use
#: 32-bit indices; context lengths above ``2**31 - 1`` are only reachable by
#: the analytical memory model (which can be told to use 64-bit indices).
INDEX_DTYPE = np.dtype(np.int32)

#: Bytes per element for the dtypes the paper considers, plus the int8
#: storage dtype the quantized KV cache uses.
DTYPE_BYTES = {
    np.dtype(np.float16): 2,
    np.dtype(np.float32): 4,
    np.dtype(np.float64): 8,
    np.dtype(np.int8): 1,
    np.dtype(np.int32): 4,
    np.dtype(np.int64): 8,
    np.dtype(np.bool_): 1,
}

_ALIASES = {
    "fp16": np.float16,
    "half": np.float16,
    "float16": np.float16,
    "fp32": np.float32,
    "float": np.float32,
    "float32": np.float32,
    "fp64": np.float64,
    "double": np.float64,
    "float64": np.float64,
    # note: no "i8" alias — numpy spells int64 that way; "int8" is unambiguous
    "int8": np.int8,
}


def resolve_dtype(dtype: DTypeLike, *, allow_integer: bool = False) -> np.dtype:
    """Resolve a dtype-like value (``"fp16"``, ``np.float32`` ...) to a numpy dtype.

    Raises ``TypeError`` for values that are not floating point dtypes since
    the attention kernels only operate on floats.  ``allow_integer=True``
    additionally admits signed-integer *storage* dtypes (the quantized KV
    cache stores int8 payloads) — compute paths must keep the default so a
    quantized array can never reach a kernel undequantized.
    """
    if isinstance(dtype, str):
        key = dtype.strip().lower()
        if key in _ALIASES:
            resolved = np.dtype(_ALIASES[key])
        else:
            resolved = np.dtype(key)
    else:
        resolved = np.dtype(dtype)
    if resolved.kind == "f":
        return resolved
    if allow_integer and resolved.kind == "i":
        return resolved
    raise TypeError(
        f"expected a floating point dtype"
        f"{' (or integer storage dtype)' if allow_integer else ''}, got {resolved!r}"
    )


def as_float_dtype(array: np.ndarray, dtype: DTypeLike) -> np.ndarray:
    """Return ``array`` converted to ``dtype`` without copying when possible."""
    resolved = resolve_dtype(dtype)
    return np.asarray(array, dtype=resolved)


def dtype_bytes(dtype: DTypeLike) -> int:
    """Bytes per element for a dtype, accepting the paper's ``"fp16"`` aliases."""
    if isinstance(dtype, str) and dtype.strip().lower() in _ALIASES:
        resolved = np.dtype(_ALIASES[dtype.strip().lower()])
    else:
        resolved = np.dtype(dtype)
    try:
        return DTYPE_BYTES[resolved]
    except KeyError:
        return resolved.itemsize


def accumulation_dtype(dtype: DTypeLike) -> np.dtype:
    """Accumulator dtype used inside kernels for a given storage dtype.

    Online softmax statistics are held in float32 for float16 inputs (as the
    CUDA kernels do) and in the native dtype otherwise.
    """
    resolved = resolve_dtype(dtype)
    if resolved == np.dtype(np.float16):
        return np.dtype(np.float32)
    return resolved
