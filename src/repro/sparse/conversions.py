"""Conversions between repro containers, dense arrays and ``scipy.sparse``.

The graph kernels consume :class:`~repro.sparse.coo.COOMatrix` /
:class:`~repro.sparse.csr.CSRMatrix`, but users frequently hold masks as dense
numpy arrays or scipy sparse matrices; these helpers bridge the gap without
the callers having to know about canonical ordering rules.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.dtypes import resolve_dtype

MaskLike = Union[np.ndarray, sp.spmatrix, COOMatrix, CSRMatrix]


def from_dense(dense: np.ndarray, *, fmt: str = "csr", dtype=np.float32):
    """Convert a dense mask to ``"coo"`` or ``"csr"`` format."""
    if fmt == "coo":
        return COOMatrix.from_dense(dense, dtype=dtype)
    if fmt == "csr":
        return CSRMatrix.from_dense(dense, dtype=dtype)
    raise ValueError(f"unknown sparse format {fmt!r} (expected 'coo' or 'csr')")


def coo_from_scipy(matrix: sp.spmatrix, *, dtype=np.float32) -> COOMatrix:
    """Convert any scipy sparse matrix to a canonical :class:`COOMatrix`."""
    coo = sp.coo_matrix(matrix)
    return COOMatrix(
        shape=coo.shape,
        rows=coo.row,
        cols=coo.col,
        values=np.asarray(coo.data, dtype=resolve_dtype(dtype)),
    )


def csr_from_scipy(matrix: sp.spmatrix, *, dtype=np.float32) -> CSRMatrix:
    """Convert any scipy sparse matrix to a canonical :class:`CSRMatrix`."""
    csr = sp.csr_matrix(matrix)
    csr.sort_indices()
    return CSRMatrix(
        shape=csr.shape,
        indptr=csr.indptr.astype(np.int64),
        indices=csr.indices,
        values=np.asarray(csr.data, dtype=resolve_dtype(dtype)),
    )


def to_scipy_coo(matrix: Union[COOMatrix, CSRMatrix]) -> sp.coo_matrix:
    """Export to ``scipy.sparse.coo_matrix`` (e.g. for spy plots or graph IO)."""
    if isinstance(matrix, CSRMatrix):
        matrix = matrix.to_coo()
    return sp.coo_matrix(
        (matrix.values, (matrix.rows, matrix.cols)), shape=matrix.shape
    )


def to_scipy_csr(matrix: Union[COOMatrix, CSRMatrix]) -> sp.csr_matrix:
    """Export to ``scipy.sparse.csr_matrix``."""
    if isinstance(matrix, COOMatrix):
        matrix = matrix.to_csr()
    return sp.csr_matrix(
        (matrix.values, matrix.indices, matrix.indptr), shape=matrix.shape
    )


def coerce_mask(mask: MaskLike, *, fmt: str = "csr", dtype=np.float32):
    """Coerce any supported mask representation to the requested format.

    Accepts dense arrays, scipy sparse matrices and repro containers; used by
    the engine so user code can pass whatever it has at hand.
    """
    if isinstance(mask, COOMatrix):
        return mask if fmt == "coo" else mask.to_csr()
    if isinstance(mask, CSRMatrix):
        return mask if fmt == "csr" else mask.to_coo()
    if sp.issparse(mask):
        return coo_from_scipy(mask, dtype=dtype) if fmt == "coo" else csr_from_scipy(mask, dtype=dtype)
    dense = np.asarray(mask)
    return from_dense(dense, fmt=fmt, dtype=dtype)
