"""Compressed sparse row (CSR) attention masks.

CSR is the explicit-mask representation the paper recommends: the row-offset
vector removes the per-row search that penalises COO, and its memory footprint
is ``O(L)`` for offsets plus ``O(Sf L^2)`` for column indices and values
(Section V-D).  :class:`CSRMatrix` stores exactly those three vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.utils.dtypes import INDEX_DTYPE, dtype_bytes, resolve_dtype
from repro.utils.validation import require


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed sparse row matrix with canonical (sorted) column indices."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        require(len(self.shape) == 2, "shape must be a (rows, cols) pair")
        n_rows, n_cols = int(self.shape[0]), int(self.shape[1])
        indptr = np.asarray(self.indptr, dtype=np.int64).ravel()
        indices = np.asarray(self.indices, dtype=INDEX_DTYPE).ravel()
        values = np.asarray(self.values).ravel()
        require(indptr.size == n_rows + 1, "indptr must have length rows + 1")
        require(indptr[0] == 0, "indptr must start at 0")
        require(int(indptr[-1]) == indices.size, "indptr[-1] must equal nnz")
        require(np.all(np.diff(indptr) >= 0), "indptr must be non-decreasing")
        require(indices.shape == values.shape, "indices and values must have equal length")
        if indices.size:
            require(int(indices.min()) >= 0 and int(indices.max()) < n_cols, "column index out of range")
        # sort column indices within each row for deterministic iteration
        sorted_indices = indices.copy()
        sorted_values = values.copy()
        for start, stop in zip(indptr[:-1], indptr[1:]):
            if stop - start > 1:
                segment = indices[start:stop]
                order = np.argsort(segment, kind="stable")
                sorted_indices[start:stop] = segment[order]
                sorted_values[start:stop] = values[start:stop][order]
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", sorted_indices)
        object.__setattr__(self, "values", sorted_values)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype: Union[str, np.dtype] = np.float32) -> "CSRMatrix":
        """Build from a dense 0/1 (or weighted) mask array."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense, dtype=dtype).to_csr()

    @classmethod
    def from_row_lists(
        cls,
        shape: Tuple[int, int],
        neighbor_lists,
        *,
        dtype: Union[str, np.dtype] = np.float32,
    ) -> "CSRMatrix":
        """Build a binary mask from per-row neighbour index lists."""
        n_rows, n_cols = shape
        require(len(neighbor_lists) == n_rows, "need one neighbour list per row")
        counts = np.array([len(lst) for lst in neighbor_lists], dtype=np.int64)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(counts)
        if indptr[-1]:
            indices = np.concatenate([np.asarray(lst, dtype=INDEX_DTYPE) for lst in neighbor_lists if len(lst)])
        else:
            indices = np.empty(0, dtype=INDEX_DTYPE)
        values = np.ones(indices.shape, dtype=resolve_dtype(dtype))
        return cls(shape=shape, indptr=indptr, indices=indices, values=values)

    @classmethod
    def empty(cls, shape: Tuple[int, int], *, dtype: Union[str, np.dtype] = np.float32) -> "CSRMatrix":
        """An all-zero mask."""
        return cls(
            shape=shape,
            indptr=np.zeros(shape[0] + 1, dtype=np.int64),
            indices=np.empty(0, dtype=INDEX_DTYPE),
            values=np.empty(0, dtype=resolve_dtype(dtype)),
        )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def sparsity_factor(self) -> float:
        """``Sf = NNZ / TE`` from Eq. (2) of the paper."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def memory_bytes(self, *, index_bytes: int = 4, offset_bytes: int = 4) -> int:
        """Bytes occupied by the three CSR vectors."""
        return (
            (self.shape[0] + 1) * offset_bytes
            + self.nnz * index_bytes
            + self.nnz * dtype_bytes(self.dtype)
        )

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def row_degrees(self) -> np.ndarray:
        """Out-degree of every query row (vectorised ``diff`` of offsets)."""
        return np.diff(self.indptr)

    def row_bounds(self, row: int) -> Tuple[int, int]:
        """``[start, stop)`` of a row — O(1) thanks to the offset vector."""
        require(0 <= row < self.shape[0], "row out of range")
        return int(self.indptr[row]), int(self.indptr[row + 1])

    def row_neighbors(self, row: int) -> np.ndarray:
        """Column indices attended to by ``row``."""
        start, stop = self.row_bounds(row)
        return self.indices[start:stop]

    def row_values(self, row: int) -> np.ndarray:
        start, stop = self.row_bounds(row)
        return self.values[start:stop]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, neighbor_cols, values)`` for every row (including empty)."""
        for row in range(self.shape[0]):
            start, stop = int(self.indptr[row]), int(self.indptr[row + 1])
            yield row, self.indices[start:stop], self.values[start:stop]

    def row_slice(self, start_row: int, stop_row: int) -> "CSRMatrix":
        """Extract rows ``[start_row, stop_row)`` as a new CSR matrix.

        Used by the sequence-parallel distributed extension, where each rank
        owns a contiguous slice of query rows.
        """
        require(0 <= start_row <= stop_row <= self.shape[0], "invalid row slice")
        lo = int(self.indptr[start_row])
        hi = int(self.indptr[stop_row])
        indptr = self.indptr[start_row : stop_row + 1] - lo
        return CSRMatrix(
            shape=(stop_row - start_row, self.shape[1]),
            indptr=indptr,
            indices=self.indices[lo:hi].copy(),
            values=self.values[lo:hi].copy(),
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        dense[rows, self.indices] = self.values
        return dense

    def to_coo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0], dtype=INDEX_DTYPE), np.diff(self.indptr))
        return COOMatrix(shape=self.shape, rows=rows, cols=self.indices.copy(), values=self.values.copy())

    def expanded_rows(self) -> np.ndarray:
        """Row index of every stored non-zero (the COO row vector)."""
        return np.repeat(np.arange(self.shape[0], dtype=INDEX_DTYPE), np.diff(self.indptr))

    def union(self, other: "CSRMatrix") -> "CSRMatrix":
        """Union of two binary masks (logical OR)."""
        return self.to_coo().union(other.to_coo()).to_csr()

    def difference(self, other: "CSRMatrix") -> "CSRMatrix":
        """Entries of ``self`` not present in ``other``."""
        return self.to_coo().difference(other.to_coo()).to_csr()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"Sf={self.sparsity_factor:.3e}, dtype={self.dtype})"
        )
