"""Coordinate-format (COO) sparse attention masks.

The COO kernel of the paper receives three parallel vectors — row indices,
column indices and values — describing the non-zero entries of the attention
mask.  The kernel requires entries to be grouped by row with columns sorted
inside each row (the paper notes the kernel must *search* for a row's bounds,
which is what makes COO slow relative to CSR).  :class:`COOMatrix` enforces
that canonical ordering on construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.utils.dtypes import INDEX_DTYPE, dtype_bytes, resolve_dtype
from repro.utils.validation import require


@dataclass(frozen=True)
class COOMatrix:
    """Canonical coordinate-format sparse matrix.

    Attributes
    ----------
    shape:
        ``(rows, cols)`` of the dense mask this represents (``L x L`` for
        attention).
    rows, cols:
        int32 vectors of length ``nnz`` holding the coordinates of each
        non-zero, grouped by row and sorted by column within a row.
    values:
        Values of the non-zeros.  For 0/1 attention masks these are all 1, but
        weighted masks (e.g. ALiBi-style biases) are supported as well.
    """

    shape: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=INDEX_DTYPE).ravel()
        cols = np.asarray(self.cols, dtype=INDEX_DTYPE).ravel()
        values = np.asarray(self.values).ravel()
        require(len(self.shape) == 2, "shape must be a (rows, cols) pair")
        n_rows, n_cols = int(self.shape[0]), int(self.shape[1])
        require(n_rows >= 0 and n_cols >= 0, "shape entries must be non-negative")
        require(
            rows.shape == cols.shape == values.shape,
            "rows, cols and values must have identical lengths",
        )
        if rows.size:
            require(int(rows.min()) >= 0 and int(rows.max()) < n_rows, "row index out of range")
            require(int(cols.min()) >= 0 and int(cols.max()) < n_cols, "column index out of range")
        # Canonicalise: group by row, sort columns within rows, drop duplicates
        # (keeping the last occurrence, matching scipy's sum-free behaviour for
        # binary masks where duplicates carry no information).
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if rows.size:
            keys = rows.astype(np.int64) * n_cols + cols.astype(np.int64)
            unique_mask = np.concatenate(([True], np.diff(keys) != 0))
            rows, cols, values = rows[unique_mask], cols[unique_mask], values[unique_mask]
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype: Union[str, np.dtype] = np.float32) -> "COOMatrix":
        """Build from a dense 0/1 (or weighted) mask array."""
        dense = np.asarray(dense)
        require(dense.ndim == 2, "dense mask must be 2-D")
        rows, cols = np.nonzero(dense)
        values = np.asarray(dense[rows, cols], dtype=resolve_dtype(dtype))
        return cls(shape=dense.shape, rows=rows, cols=cols, values=values)

    @classmethod
    def from_edges(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        values: Optional[np.ndarray] = None,
        dtype: Union[str, np.dtype] = np.float32,
    ) -> "COOMatrix":
        """Build a binary mask from edge lists (values default to 1)."""
        rows = np.asarray(rows)
        if values is None:
            values = np.ones(rows.shape, dtype=resolve_dtype(dtype))
        return cls(shape=shape, rows=rows, cols=cols, values=values)

    @classmethod
    def empty(cls, shape: Tuple[int, int], *, dtype: Union[str, np.dtype] = np.float32) -> "COOMatrix":
        """An all-zero mask (no edges)."""
        resolved = resolve_dtype(dtype)
        return cls(
            shape=shape,
            rows=np.empty(0, dtype=INDEX_DTYPE),
            cols=np.empty(0, dtype=INDEX_DTYPE),
            values=np.empty(0, dtype=resolved),
        )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros (graph edges)."""
        return int(self.rows.size)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def sparsity_factor(self) -> float:
        """``Sf = NNZ / TE`` from Eq. (2) of the paper."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def density(self) -> float:
        """Alias of :attr:`sparsity_factor` (1 = fully dense)."""
        return self.sparsity_factor

    def memory_bytes(self, *, index_bytes: int = 4) -> int:
        """Bytes occupied by the three COO vectors (paper Table II accounting)."""
        return self.nnz * (2 * index_bytes + dtype_bytes(self.dtype))

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def row_degrees(self) -> np.ndarray:
        """Out-degree (number of attended keys) of every query row."""
        degrees = np.zeros(self.shape[0], dtype=np.int64)
        if self.nnz:
            uniq, counts = np.unique(self.rows, return_counts=True)
            degrees[uniq] = counts
        return degrees

    def row_bounds(self, row: int) -> Tuple[int, int]:
        """Locate ``[start, stop)`` of a row in the canonical ordering.

        Uses binary search (``searchsorted``) — the analogue of the in-kernel
        search the paper identifies as COO's performance problem.
        """
        require(0 <= row < self.shape[0], "row out of range")
        start = int(np.searchsorted(self.rows, row, side="left"))
        stop = int(np.searchsorted(self.rows, row, side="right"))
        return start, stop

    def row_neighbors(self, row: int) -> np.ndarray:
        """Column indices attended to by ``row``."""
        start, stop = self.row_bounds(row)
        return self.cols[start:stop]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, neighbor_cols, values)`` for every non-empty row."""
        if not self.nnz:
            return
        boundaries = np.flatnonzero(np.diff(self.rows)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [self.nnz]))
        for start, stop in zip(starts, stops):
            yield int(self.rows[start]), self.cols[start:stop], self.values[start:stop]

    # ------------------------------------------------------------------ #
    # Conversions / algebra
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialise the dense mask (only sensible for small ``L``)."""
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        dense[self.rows, self.cols] = self.values
        return dense

    def to_csr(self) -> "CSRMatrix":
        """Convert to :class:`~repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        if self.nnz:
            counts = np.bincount(self.rows, minlength=self.shape[0])
            indptr[1:] = np.cumsum(counts)
        return CSRMatrix(
            shape=self.shape,
            indptr=indptr,
            indices=self.cols.copy(),
            values=self.values.copy(),
        )

    def transpose(self) -> "COOMatrix":
        """Swap rows and columns (reverse every edge of the graph)."""
        return COOMatrix(
            shape=(self.shape[1], self.shape[0]),
            rows=self.cols,
            cols=self.rows,
            values=self.values,
        )

    def union(self, other: "COOMatrix") -> "COOMatrix":
        """Union of two binary masks on the same shape (logical OR)."""
        require(self.shape == other.shape, "shape mismatch in union")
        rows = np.concatenate([self.rows, other.rows])
        cols = np.concatenate([self.cols, other.cols])
        values = np.concatenate(
            [np.asarray(self.values, dtype=np.float64), np.asarray(other.values, dtype=np.float64)]
        )
        # canonicalisation in __post_init__ drops duplicate coordinates
        return COOMatrix(shape=self.shape, rows=rows, cols=cols, values=values.astype(self.dtype))

    def difference(self, other: "COOMatrix") -> "COOMatrix":
        """Entries of ``self`` whose coordinates are absent from ``other``."""
        require(self.shape == other.shape, "shape mismatch in difference")
        if not self.nnz or not other.nnz:
            return self
        n_cols = self.shape[1]
        mine = self.rows.astype(np.int64) * n_cols + self.cols.astype(np.int64)
        theirs = other.rows.astype(np.int64) * n_cols + other.cols.astype(np.int64)
        keep = ~np.isin(mine, theirs)
        return COOMatrix(
            shape=self.shape, rows=self.rows[keep], cols=self.cols[keep], values=self.values[keep]
        )

    def intersection(self, other: "COOMatrix") -> "COOMatrix":
        """Entries present in both masks (values taken from ``self``)."""
        require(self.shape == other.shape, "shape mismatch in intersection")
        if not self.nnz or not other.nnz:
            return COOMatrix.empty(self.shape, dtype=self.dtype)
        n_cols = self.shape[1]
        mine = self.rows.astype(np.int64) * n_cols + self.cols.astype(np.int64)
        theirs = other.rows.astype(np.int64) * n_cols + other.cols.astype(np.int64)
        keep = np.isin(mine, theirs)
        return COOMatrix(
            shape=self.shape, rows=self.rows[keep], cols=self.cols[keep], values=self.values[keep]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"Sf={self.sparsity_factor:.3e}, dtype={self.dtype})"
        )
