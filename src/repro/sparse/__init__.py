"""Sparse matrix containers used as explicit attention-mask representations.

The paper's explicit-mask kernels take either a COO (row indices, column
indices, values) or a CSR (row offsets, column indices, values) description of
the attention graph.  :class:`~repro.sparse.coo.COOMatrix` and
:class:`~repro.sparse.csr.CSRMatrix` are purpose-built containers for those
kernels: int32 index vectors, dtype-typed value vectors, canonical ordering
(rows grouped, columns sorted within a row) and cheap row slicing.

They interoperate with ``scipy.sparse`` (:mod:`repro.sparse.conversions`) but
are deliberately independent of it so that the memory accounting in
:mod:`repro.perfmodel` matches the bytes the kernels actually touch.
"""

from repro.sparse.block import BlockSparseMatrix, blockify
from repro.sparse.conversions import (
    coo_from_scipy,
    csr_from_scipy,
    from_dense,
    to_scipy_coo,
    to_scipy_csr,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "BlockSparseMatrix",
    "COOMatrix",
    "CSRMatrix",
    "blockify",
    "coo_from_scipy",
    "csr_from_scipy",
    "from_dense",
    "to_scipy_coo",
    "to_scipy_csr",
]
