"""Block-sparse mask representation (related-work baseline).

The related work the paper contrasts against (Section III) partitions the
attention mask into ``B x B`` tiles and runs a dense kernel on every tile that
contains *at least one* non-zero — paying ``O(d)`` wasted work for every zero
inside a touched tile.  :class:`BlockSparseMatrix` captures that representation
so the work model (:mod:`repro.work`) can quantify the excess computation and
the ablation benchmarks can compare block-sparse against the truly-sparse
graph kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import require
from repro.sparse.coo import COOMatrix


@dataclass(frozen=True)
class BlockSparseMatrix:
    """Tiling of an attention mask into fixed-size blocks.

    Attributes
    ----------
    shape:
        Dense shape ``(L, L)``.
    block_size:
        Edge length ``B`` of the square tiles.
    block_rows, block_cols:
        Coordinates (in block units) of tiles containing at least one non-zero.
    nnz_per_block:
        Count of true non-zeros inside each touched tile.
    """

    shape: Tuple[int, int]
    block_size: int
    block_rows: np.ndarray
    block_cols: np.ndarray
    nnz_per_block: np.ndarray

    def __post_init__(self) -> None:
        require(self.block_size > 0, "block_size must be positive")
        block_rows = np.asarray(self.block_rows, dtype=np.int64).ravel()
        block_cols = np.asarray(self.block_cols, dtype=np.int64).ravel()
        nnz = np.asarray(self.nnz_per_block, dtype=np.int64).ravel()
        require(block_rows.shape == block_cols.shape == nnz.shape, "block vectors must align")
        object.__setattr__(self, "block_rows", block_rows)
        object.__setattr__(self, "block_cols", block_cols)
        object.__setattr__(self, "nnz_per_block", nnz)

    @property
    def num_blocks(self) -> int:
        """Number of touched (computed) tiles."""
        return int(self.block_rows.size)

    @property
    def true_nnz(self) -> int:
        """Number of genuine mask non-zeros inside the touched tiles."""
        return int(self.nnz_per_block.sum())

    @property
    def computed_elements(self) -> int:
        """Elements a block-sparse kernel computes: every cell of every touched tile."""
        return self.num_blocks * self.block_size * self.block_size

    @property
    def wasted_elements(self) -> int:
        """Computed elements that correspond to mask zeros (excess work)."""
        return self.computed_elements - self.true_nnz

    @property
    def block_density(self) -> float:
        """Fraction of computed elements that are genuine non-zeros."""
        return self.true_nnz / self.computed_elements if self.computed_elements else 0.0

    def effective_sparsity_factor(self) -> float:
        """Sparsity factor *as seen by a block kernel* (computed / total)."""
        total = self.shape[0] * self.shape[1]
        return self.computed_elements / total if total else 0.0

    def waste_ratio(self) -> float:
        """Wasted work relative to the work a truly-sparse kernel performs."""
        if self.true_nnz == 0:
            return 0.0
        return self.wasted_elements / self.true_nnz


def blockify(mask: COOMatrix, block_size: int) -> BlockSparseMatrix:
    """Tile a COO mask into ``block_size``-sized blocks.

    Any tile containing at least one non-zero becomes a computed block, which
    is exactly how the block-sparse FlashAttention variants dispatch work.
    """
    require(block_size > 0, "block_size must be positive")
    n_rows, n_cols = mask.shape
    if mask.nnz == 0:
        empty = np.empty(0, dtype=np.int64)
        return BlockSparseMatrix(
            shape=mask.shape, block_size=block_size,
            block_rows=empty, block_cols=empty, nnz_per_block=empty,
        )
    brow = mask.rows.astype(np.int64) // block_size
    bcol = mask.cols.astype(np.int64) // block_size
    blocks_per_row = -(-n_cols // block_size)
    keys = brow * blocks_per_row + bcol
    unique_keys, counts = np.unique(keys, return_counts=True)
    return BlockSparseMatrix(
        shape=mask.shape,
        block_size=block_size,
        block_rows=unique_keys // blocks_per_row,
        block_cols=unique_keys % blocks_per_row,
        nnz_per_block=counts,
    )
