"""Row partitioners for distributing attention-graph work.

The paper's future-work section proposes distributed-memory execution with
graph partitioning to balance load across nodes.  Because the kernels
parallelise along the L dimension, partitioning reduces to splitting the query
rows; the quality criterion is the balance of *edge* counts (dot products) per
part, plus the number of remote key/value vertices a part must fetch (the
communication volume, measured by :func:`partition_edge_cut`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graph.attention_graph import AttentionGraph
from repro.utils.validation import require


@dataclass(frozen=True)
class Partition:
    """Assignment of query rows to parts.

    ``assignments[i]`` is the part owning query row ``i``.  For contiguous
    partitions ``bounds`` additionally records the ``[start, stop)`` row range
    of every part (this is what sequence parallelism uses).
    """

    num_parts: int
    assignments: np.ndarray
    bounds: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        assignments = np.asarray(self.assignments, dtype=np.int64)
        require(self.num_parts >= 1, "num_parts must be >= 1")
        if assignments.size:
            require(int(assignments.min()) >= 0, "negative part id")
            require(int(assignments.max()) < self.num_parts, "part id out of range")
        object.__setattr__(self, "assignments", assignments)

    @property
    def num_rows(self) -> int:
        return int(self.assignments.size)

    def rows_of(self, part: int) -> np.ndarray:
        """Row indices owned by ``part``."""
        require(0 <= part < self.num_parts, "part id out of range")
        return np.flatnonzero(self.assignments == part)

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignments, minlength=self.num_parts)

    def edge_counts(self, degrees: np.ndarray) -> np.ndarray:
        """Edges (dot products) each part is responsible for."""
        degrees = np.asarray(degrees, dtype=np.int64)
        require(degrees.size == self.num_rows, "degree vector length mismatch")
        return np.bincount(self.assignments, weights=degrees, minlength=self.num_parts).astype(np.int64)

    def balance(self, degrees: np.ndarray) -> float:
        """``max part edges / mean part edges`` (1.0 = perfectly balanced)."""
        counts = self.edge_counts(degrees)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0


def contiguous_partition(num_rows: int, num_parts: int) -> Partition:
    """Equal-row contiguous split — what sequence parallelism does by default."""
    require(num_rows >= 1 and num_parts >= 1, "rows and parts must be positive")
    boundaries = np.linspace(0, num_rows, num_parts + 1).astype(np.int64)
    assignments = np.zeros(num_rows, dtype=np.int64)
    bounds: List[Tuple[int, int]] = []
    for part in range(num_parts):
        start, stop = int(boundaries[part]), int(boundaries[part + 1])
        assignments[start:stop] = part
        bounds.append((start, stop))
    return Partition(num_parts=num_parts, assignments=assignments, bounds=tuple(bounds))


def balanced_edge_partition(degrees: np.ndarray, num_parts: int) -> Partition:
    """Contiguous split with boundaries chosen to equalise *edge* counts.

    Rows stay contiguous (cheap indexing, preserves locality of the local
    window) but each part receives roughly ``total_edges / num_parts`` dot
    products, fixing the imbalance a plain equal-row split suffers on skewed
    masks such as Longformer's global rows.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    require(degrees.size >= 1 and num_parts >= 1, "need rows and parts")
    total = int(degrees.sum())
    target = total / num_parts if num_parts else 0
    cumulative = np.cumsum(degrees)
    boundaries = [0]
    for part in range(1, num_parts):
        cut = int(np.searchsorted(cumulative, target * part, side="left")) + 1
        cut = min(max(cut, boundaries[-1] + 1), degrees.size - (num_parts - part) + 1)
        boundaries.append(cut)
    boundaries.append(degrees.size)
    assignments = np.zeros(degrees.size, dtype=np.int64)
    bounds: List[Tuple[int, int]] = []
    for part in range(num_parts):
        start, stop = boundaries[part], boundaries[part + 1]
        assignments[start:stop] = part
        bounds.append((int(start), int(stop)))
    return Partition(num_parts=num_parts, assignments=assignments, bounds=tuple(bounds))


def greedy_bin_partition(degrees: np.ndarray, num_parts: int) -> Partition:
    """Non-contiguous greedy longest-processing-time assignment.

    Rows are assigned, heaviest first, to the currently lightest part.  This
    sacrifices contiguity (rows of a part are scattered) but achieves nearly
    perfect edge balance even for adversarial degree distributions; it is the
    "graph partitioning to load balance work across the nodes" ablation.

    ``degrees`` may be fractional (e.g. predicted costs rather than edge
    counts); weights are accumulated in float64 so sub-integer loads are not
    truncated away.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    require(degrees.size >= 1 and num_parts >= 1, "need rows and parts")
    order = np.argsort(degrees)[::-1]
    loads = np.zeros(num_parts, dtype=np.float64)
    assignments = np.zeros(degrees.size, dtype=np.int64)
    for row in order:
        part = int(np.argmin(loads))
        assignments[row] = part
        loads[part] += float(degrees[row])
    return Partition(num_parts=num_parts, assignments=assignments)


def partition_edge_cut(graph: AttentionGraph, partition: Partition) -> int:
    """Number of edges whose key vertex lives on a different part than the query.

    This is the communication volume of a distributed run: every cut edge
    requires fetching a remote K/V row (or participating in an all-gather).
    """
    require(partition.num_rows == graph.num_vertices, "partition size mismatch")
    coo = graph.adjacency.to_coo()
    if coo.nnz == 0:
        return 0
    owner_of_query = partition.assignments[coo.rows]
    owner_of_key = partition.assignments[coo.cols]
    return int(np.count_nonzero(owner_of_query != owner_of_key))
