"""Degree-distribution and load-imbalance statistics of attention graphs.

Section V-C explains why the Global kernel scales worse than CSR/Local: the
kernel parallelises along the L dimension (one CUDA block per query row), so a
mask whose rows have wildly different degrees (global rows are fully dense,
all others nearly empty) leaves most blocks idle while a few do all the work —
"the algorithm can only be as fast as its slowest block".  These statistics
make that effect measurable and feed the runtime model's imbalance penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.graph.attention_graph import AttentionGraph
from repro.masks.base import MaskSpec
from repro.utils.validation import require


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's out-degree (per-row work) distribution."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    std_degree: float
    empty_rows: int

    @property
    def imbalance(self) -> float:
        """``max_degree / mean_degree`` — 1.0 means perfectly balanced rows."""
        return self.max_degree / self.mean_degree if self.mean_degree > 0 else 1.0


def _degrees(graph_or_mask, length=None) -> np.ndarray:
    if isinstance(graph_or_mask, AttentionGraph):
        return graph_or_mask.out_degrees()
    if isinstance(graph_or_mask, MaskSpec):
        require(length is not None, "length required when passing a MaskSpec")
        return graph_or_mask.row_degrees(length)
    return np.asarray(graph_or_mask, dtype=np.int64)


def degree_stats(graph_or_mask: Union[AttentionGraph, MaskSpec, np.ndarray], length=None) -> DegreeStats:
    """Compute :class:`DegreeStats` from a graph, a mask spec or a degree vector."""
    degrees = _degrees(graph_or_mask, length)
    require(degrees.size > 0, "cannot compute statistics of an empty graph")
    return DegreeStats(
        num_vertices=int(degrees.size),
        num_edges=int(degrees.sum()),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        std_degree=float(degrees.std()),
        empty_rows=int(np.count_nonzero(degrees == 0)),
    )


def work_per_block(degrees: np.ndarray, num_blocks: int) -> np.ndarray:
    """Edge (dot-product) count each of ``num_blocks`` row-contiguous blocks performs.

    Mirrors the paper's parallelisation: rows are distributed round-robin-free,
    contiguously, one block of rows per CUDA block / processor.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    require(num_blocks >= 1, "num_blocks must be >= 1")
    boundaries = np.linspace(0, degrees.size, num_blocks + 1).astype(np.int64)
    return np.array(
        [int(degrees[boundaries[b] : boundaries[b + 1]].sum()) for b in range(num_blocks)],
        dtype=np.int64,
    )


def load_imbalance(degrees: np.ndarray, num_blocks: int) -> float:
    """``max block work / mean block work`` for a contiguous row partition.

    1.0 means perfect balance; Longformer-style global masks routinely exceed
    10x at high sparsity, which is the slowdown observed for the Global kernel.
    """
    work = work_per_block(np.asarray(degrees, dtype=np.int64), num_blocks)
    mean = work.mean()
    if mean == 0:
        return 1.0
    return float(work.max() / mean)
