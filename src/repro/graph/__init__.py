"""Graph-computing view of attention (Section IV-A of the paper).

Tokens are vertices, mask non-zeros are directed edges from a query vertex to
the key vertices it attends.  :class:`AttentionGraph` holds that adjacency
structure in CSR form plus the vertex attributes (Q, K, V rows) the kernels
pull from; :mod:`repro.graph.stats` quantifies degree distribution and load
imbalance (the effect that slows the Global kernel in Fig. 3);
:mod:`repro.graph.partition` provides the 1-D partitioners used by the
distributed (sequence-parallel) extension.
"""

from repro.graph.attention_graph import AttentionGraph
from repro.graph.partition import (
    Partition,
    balanced_edge_partition,
    contiguous_partition,
    greedy_bin_partition,
    partition_edge_cut,
)
from repro.graph.stats import DegreeStats, degree_stats, load_imbalance, work_per_block

__all__ = [
    "AttentionGraph",
    "DegreeStats",
    "Partition",
    "balanced_edge_partition",
    "contiguous_partition",
    "degree_stats",
    "greedy_bin_partition",
    "load_imbalance",
    "partition_edge_cut",
    "work_per_block",
]
