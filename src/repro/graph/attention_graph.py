"""The attention graph: tokens as vertices, mask non-zeros as edges.

This is the data structure of Section IV-A.  Vertex ``i`` carries the query,
key and value rows ``(Q_i, K_i, V_i)``; a directed edge ``i -> j`` exists when
the mask entry ``A_ij`` is 1, meaning query ``i`` pulls key/value information
from token ``j`` during the attention computation.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.masks.base import MaskSpec, as_mask_spec
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import require


class AttentionGraph:
    """Directed graph over tokens with CSR adjacency and Q/K/V vertex attributes."""

    def __init__(
        self,
        adjacency: CSRMatrix,
        queries: Optional[np.ndarray] = None,
        keys: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ):
        # Full attention graphs are square (L x L); row-sliced subgraphs used by
        # the sequence-parallel extension are rectangular (rows x L), with
        # queries attached per row and keys/values per column vertex.
        self.adjacency = adjacency
        self.queries = queries
        self.keys = keys
        self.values = values
        if queries is not None:
            require(queries.shape[0] == adjacency.shape[0], "queries must have one row per query vertex")
        for name, attr in (("keys", keys), ("values", values)):
            if attr is not None:
                require(
                    attr.shape[0] == adjacency.shape[1],
                    f"{name} must have one row per key vertex",
                )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_mask(
        cls,
        mask: Union[MaskSpec, np.ndarray, COOMatrix, CSRMatrix],
        length: Optional[int] = None,
        *,
        queries: Optional[np.ndarray] = None,
        keys: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ) -> "AttentionGraph":
        """Build from a mask spec (needs ``length``) or a concrete mask."""
        if isinstance(mask, CSRMatrix):
            adjacency = mask
        elif isinstance(mask, COOMatrix):
            adjacency = mask.to_csr()
        elif isinstance(mask, MaskSpec):
            if length is None:
                if queries is not None:
                    length = queries.shape[0]
                else:
                    raise ValueError("length (or queries) required to materialise a MaskSpec")
            adjacency = mask.to_csr(length)
        else:
            adjacency = as_mask_spec(mask).matrix
        require(adjacency.shape[0] == adjacency.shape[1], "attention masks must be square")
        return cls(adjacency, queries=queries, keys=keys, values=values)

    # ------------------------------------------------------------------ #
    # Basic graph interface
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        return self.adjacency.nnz

    @property
    def sparsity_factor(self) -> float:
        """``Sf`` of the underlying mask (edges / L^2)."""
        return self.adjacency.sparsity_factor

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbours of a query vertex — the ``Get_Neighbors`` of Algorithm 1."""
        return self.adjacency.row_neighbors(vertex)

    def out_degrees(self) -> np.ndarray:
        return self.adjacency.row_degrees()

    def in_degrees(self) -> np.ndarray:
        degrees = np.zeros(self.num_vertices, dtype=np.int64)
        if self.num_edges:
            uniq, counts = np.unique(self.adjacency.indices, return_counts=True)
            degrees[uniq] = counts
        return degrees

    def has_edge(self, i: int, j: int) -> bool:
        return bool(np.isin(j, self.neighbors(i)))

    def vertex_attributes(self, vertex: int) -> Tuple[Optional[np.ndarray], ...]:
        """``(Q_i, K_i, V_i)`` for a vertex, ``None`` where unattached."""
        pick = lambda arr: arr[vertex] if arr is not None else None  # noqa: E731
        return pick(self.queries), pick(self.keys), pick(self.values)

    def attach_qkv(self, queries: np.ndarray, keys: np.ndarray, values: np.ndarray) -> "AttentionGraph":
        """Return a graph with the same adjacency and new vertex attributes."""
        return AttentionGraph(self.adjacency, queries=queries, keys=keys, values=values)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def is_symmetric(self) -> bool:
        """Whether every edge has its reverse edge (undirected attention pattern)."""
        coo = self.adjacency.to_coo()
        transposed = coo.transpose()
        return coo.difference(transposed).nnz == 0 and transposed.difference(coo).nnz == 0

    def empty_rows(self) -> np.ndarray:
        """Query vertices with no neighbours (fully masked rows)."""
        return np.flatnonzero(self.out_degrees() == 0)

    def subgraph_rows(self, start: int, stop: int) -> "AttentionGraph":
        """Row-slice the graph — used for sequence-parallel partitioning."""
        sliced = self.adjacency.row_slice(start, stop)
        pick = lambda arr: arr[start:stop] if arr is not None else None  # noqa: E731
        return AttentionGraph(sliced, queries=pick(self.queries), keys=self.keys, values=self.values)

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def to_networkx(self, *, max_vertices: int = 100_000) -> nx.DiGraph:
        """Export to a ``networkx.DiGraph`` (small graphs only)."""
        require(
            self.num_vertices <= max_vertices,
            f"graph too large to export ({self.num_vertices} > {max_vertices} vertices)",
        )
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_vertices))
        coo = self.adjacency.to_coo()
        graph.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttentionGraph(vertices={self.num_vertices}, edges={self.num_edges}, "
            f"Sf={self.sparsity_factor:.3e})"
        )
