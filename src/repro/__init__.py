"""repro — graph-processing sparse attention.

Reproduction of "Longer Attention Span: Increasing Transformer Context Length
with Sparse Graph Processing Techniques" (IPDPS 2025): work-optimal graph
kernels for masked attention (COO, CSR, Local, Dilated-1D, Dilated-2D,
Global), dense SDP and FlashAttention baselines, the attention-mask zoo
(Longformer / BigBird / LongNet presets), graph-view analysis and
partitioning, analytical GPU memory/runtime models reproducing the paper's
context-length limits and runtime trade-offs, a sequence-parallel
distributed extension, an attention serving subsystem, and incremental
autoregressive decoding with KV-cache sessions.

Quick start::

    import numpy as np
    from repro import random_qkv, local_attention, sdp_attention
    from repro.masks import LocalMask

    q, k, v = random_qkv(4096, 64, seed=0)
    sparse = local_attention(q, k, v, window=64)          # work-optimal kernel
    dense = sdp_attention(q, k, v, LocalMask(window=64))  # dense baseline
    np.testing.assert_allclose(sparse.output, dense.output, atol=1e-6)
"""

from repro.core import (
    AttentionLayer,
    AttentionResult,
    GraphAttentionEngine,
    OpCounts,
    bigbird_attention,
    coo_attention,
    csr_attention,
    dilated1d_attention,
    dilated2d_attention,
    flash_attention,
    global_attention,
    local_attention,
    longformer_attention,
    merge_results,
    multi_head_attention,
    reference_attention,
    sdp_attention,
)
from repro.graph import AttentionGraph
from repro.serve import (
    AttentionRequest,
    AttentionResponse,
    AttentionServer,
    BlockPool,
    DecodeSession,
    ExecutionPlan,
    KVCache,
    PagedKVCache,
    PlanCache,
    PoolExhausted,
    ServingSession,
    compile_plan,
    decode_reference_mask,
    plan_cache_key,
)
from repro.sparse import COOMatrix, CSRMatrix
from repro.utils import random_qkv

__version__ = "1.1.0"

__all__ = [
    "AttentionGraph",
    "AttentionLayer",
    "AttentionRequest",
    "AttentionResponse",
    "AttentionResult",
    "AttentionServer",
    "BlockPool",
    "COOMatrix",
    "CSRMatrix",
    "DecodeSession",
    "ExecutionPlan",
    "GraphAttentionEngine",
    "KVCache",
    "OpCounts",
    "PagedKVCache",
    "PlanCache",
    "PoolExhausted",
    "ServingSession",
    "__version__",
    "bigbird_attention",
    "compile_plan",
    "coo_attention",
    "csr_attention",
    "decode_reference_mask",
    "dilated1d_attention",
    "dilated2d_attention",
    "flash_attention",
    "global_attention",
    "local_attention",
    "longformer_attention",
    "merge_results",
    "multi_head_attention",
    "plan_cache_key",
    "random_qkv",
    "reference_attention",
    "sdp_attention",
]
