"""Experiment drivers: one function per paper table / figure.

Each driver returns plain rows (lists of dicts) so the ``benchmarks/`` modules
can both assert on them and print them.  Two kinds of numbers are produced:

* ``*_measured`` — wall-clock CPU measurements of the NumPy kernels at reduced
  context lengths (the hardware substitution documented in DESIGN.md), using
  the paper's warm-up/iteration protocol scaled down;
* ``*_modeled`` — analytical GPU estimates from :mod:`repro.perfmodel` at the
  paper's full context lengths, shown next to the paper's reported values
  where the paper prints them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import BenchmarkProtocol, measure
from repro.bench.paper_reference import PAPER_TABLE3
from repro.core.compose import bigbird_attention, longformer_attention
from repro.core.dense import sdp_attention
from repro.core.explicit_kernels import coo_attention, csr_attention
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import (
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)
from repro.masks.global_ import GlobalNonLocalMask
from repro.masks.presets import bigbird_mask, default_global_tokens, longformer_dilated_mask, longformer_mask
from repro.masks.solvers import (
    dilated1d_window_for_sparsity,
    dilated2d_block_for_sparsity,
    local_window_for_sparsity,
    longnet_sparsity_factor,
)
from repro.masks.windowed import LocalMask
from repro.perfmodel.context_limits import TABLE2_ALGORITHMS, context_limit_sweep, context_limit_table
from repro.perfmodel.devices import get_device
from repro.perfmodel.runtime import RuntimeModel
from repro.utils.rng import random_qkv

#: Kernel families measured in the Fig. 3 microbenchmarks, keyed by the legend names.
FIG3_ALGORITHMS = ("sdp", "coo", "csr", "global", "local", "dilated1d", "dilated2d")


# --------------------------------------------------------------------------- #
# Fig. 3 — microbenchmarks across algorithms, L, dk and Sf
# --------------------------------------------------------------------------- #
def fig3_masks_for_sparsity(length: int, sparsity: float, *, dilation: int = 1, seed: int = 0):
    """Build the per-algorithm mask parameters that realise a target Sf.

    Mirrors Section V-C: local / 1-D / 2-D masks size their window or block to
    hit the sparsity factor; the explicit CSR/COO masks reuse the local
    pattern; the global mask picks the number of global tokens to match.
    """
    window = local_window_for_sparsity(length, sparsity)
    d1_window = dilated1d_window_for_sparsity(length, sparsity, dilation)
    d2_block = dilated2d_block_for_sparsity(length, sparsity, dilation)
    num_global = max(1, min(length // 2, int(round(sparsity * length / 2.0))))
    global_tokens = default_global_tokens(length, num_global)
    return {
        "local": {"window": window},
        "dilated1d": {"window": d1_window, "dilation": dilation},
        "dilated2d": {"block_size": d2_block, "dilation": dilation},
        "global": {"global_tokens": global_tokens, "window": 1},
        "explicit": LocalMask(window=window),
    }


def fig3_measured(
    *,
    lengths: Sequence[int] = (1024, 2048),
    head_dims: Sequence[int] = (32, 64),
    sparsities: Sequence[float] = (0.005, 0.02, 0.1, 0.4),
    algorithms: Sequence[str] = FIG3_ALGORITHMS,
    protocol: BenchmarkProtocol = BenchmarkProtocol(warmup=1, iterations=3),
    dtype=np.float32,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured CPU microbenchmark sweep (scaled-down Fig. 3)."""
    rows: List[Dict[str, object]] = []
    for length in lengths:
        for dim in head_dims:
            q, k, v = random_qkv(length, dim, dtype=dtype, seed=seed)
            for sparsity in sparsities:
                params = fig3_masks_for_sparsity(length, sparsity)
                explicit_csr = params["explicit"].to_csr(length)
                explicit_coo = explicit_csr.to_coo()
                runners = {
                    "sdp": lambda: sdp_attention(q, k, v, explicit_csr),
                    "csr": lambda: csr_attention(q, k, v, explicit_csr),
                    "coo": lambda: coo_attention(q, k, v, explicit_coo),
                    "local": lambda: local_attention(q, k, v, params["local"]["window"]),
                    "dilated1d": lambda: dilated1d_attention(
                        q, k, v, params["dilated1d"]["window"], params["dilated1d"]["dilation"]
                    ),
                    "dilated2d": lambda: dilated2d_attention(
                        q, k, v, params["dilated2d"]["block_size"], params["dilated2d"]["dilation"]
                    ),
                    "global": lambda: global_attention(
                        q, k, v, params["global"]["global_tokens"], params["global"]["window"]
                    ),
                }
                for name in algorithms:
                    cell = measure(
                        runners[name],
                        label=name,
                        params={"L": length, "dk": dim, "Sf": sparsity},
                        protocol=protocol,
                    )
                    row = cell.as_row()
                    row["algorithm"] = name
                    rows.append(row)
    return rows


def fig3_modeled(
    device_name: str = "a100",
    *,
    lengths: Sequence[int] = (8_192, 16_384, 24_576),
    head_dims: Sequence[int] = (64, 128, 256),
    sparsities: Sequence[float] = (1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0),
    dtype: str = "fp32",
) -> List[Dict[str, object]]:
    """Modelled GPU runtimes at the paper's Fig. 3 configurations."""
    model = RuntimeModel(get_device(device_name))
    rows: List[Dict[str, object]] = []
    for length in lengths:
        for dim in head_dims:
            for sparsity in sparsities:
                for algorithm in FIG3_ALGORITHMS:
                    estimate = model.estimate(
                        algorithm, length, dim, sparsity_factor=sparsity, dtype=dtype
                    )
                    rows.append(
                        {
                            "device": device_name,
                            "L": length,
                            "dk": dim,
                            "Sf": sparsity,
                            "algorithm": algorithm,
                            "modeled_s": estimate.seconds,
                        }
                    )
    return rows


def fig3_modeled_speedups(
    device_name: str = "a100",
    *,
    length: int = 16_384,
    head_dims: Sequence[int] = (64, 128, 256),
    sparsity: float = 2e-4,
    dtype: str = "fp32",
) -> Dict[str, float]:
    """Average modelled speedup of each graph kernel over masked SDP.

    ``sparsity`` defaults to 2e-4, representative of the ``Sf < 0.001`` region
    over which the paper averages its Section V-C speedup figures.
    """
    model = RuntimeModel(get_device(device_name))
    speedups: Dict[str, List[float]] = {}
    for dim in head_dims:
        sdp = model.estimate("sdp", length, dim, sparsity_factor=sparsity, dtype=dtype).seconds
        for algorithm in ("local", "dilated1d", "dilated2d", "csr", "global", "coo"):
            est = model.estimate(algorithm, length, dim, sparsity_factor=sparsity, dtype=dtype).seconds
            speedups.setdefault(algorithm, []).append(sdp / est)
    return {name: float(np.mean(values)) for name, values in speedups.items()}


# --------------------------------------------------------------------------- #
# Table II and Fig. 4 — theoretical context-length limits
# --------------------------------------------------------------------------- #
def table2_rows(accounting: str = "paper") -> List[Dict[str, object]]:
    """Reproduce Table II as flat rows (one per configuration)."""
    rows: List[Dict[str, object]] = []
    for limit_row in context_limit_table(accounting=accounting):
        row: Dict[str, object] = {
            "dtype": limit_row.dtype,
            "Sf": limit_row.sparsity_factor,
            "dk": limit_row.model_dim if limit_row.heads > 1 else limit_row.head_dim,
            "heads": limit_row.heads,
        }
        for algorithm in TABLE2_ALGORITHMS:
            row[f"max_L_{algorithm}"] = limit_row.limits[algorithm]
        rows.append(row)
    return rows


def fig4_series(
    *,
    head_dim: int = 64,
    dtype: str = "fp32",
    sparsities: Sequence[float] = tuple(float(f"1e-{i}") for i in range(4, -1, -1)),
    accounting: str = "paper",
) -> Dict[str, List[Optional[int]]]:
    """Reproduce one panel of Fig. 4: limit-vs-sparsity curves per algorithm."""
    series: Dict[str, List[Optional[int]]] = {}
    for algorithm in ("sdp", "csr", "coo", "flash", "local", "global"):
        series[algorithm] = context_limit_sweep(
            algorithm, sparsities, dtype=dtype, head_dim=head_dim, accounting=accounting
        )
    series["sparsity_factors"] = list(sparsities)
    return series


# --------------------------------------------------------------------------- #
# Table III — long-context runtimes (FlashAttention vs Local vs CSR)
# --------------------------------------------------------------------------- #
def table3_modeled(device_name: str = "a100", head_dim: int = 64) -> List[Dict[str, object]]:
    """Modelled A100 runtimes at the paper's Table III configurations."""
    model = RuntimeModel(get_device(device_name))
    rows: List[Dict[str, object]] = []
    for length, entries in sorted(PAPER_TABLE3.items(), reverse=True):
        for algorithm, (sparsity, paper_seconds) in entries.items():
            if algorithm == "flash":
                estimate = model.estimate("flash", length, head_dim, dtype="fp16")
                sf = None
            else:
                sf = sparsity if sparsity is not None else longnet_sparsity_factor(length)
                estimate = model.estimate(
                    algorithm, length, head_dim, sparsity_factor=sf, dtype="fp16"
                )
            rows.append(
                {
                    "L": length,
                    "algorithm": algorithm,
                    "Sf": sf,
                    "modeled_s": estimate.seconds,
                    "paper_s": paper_seconds,
                    "ratio": estimate.seconds / paper_seconds,
                }
            )
    return rows


def table3_measured(
    *,
    lengths: Sequence[int] = (2_048, 4_096, 8_192),
    head_dim: int = 32,
    protocol: BenchmarkProtocol = BenchmarkProtocol(warmup=1, iterations=3),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured CPU analogue of Table III at reduced context lengths.

    The LongNet sparsity schedule (Section II-D) is applied with a scaled-down
    ``w0`` so the relative sparsity at each reduced ``L`` matches the relative
    sparsity the paper uses at its full ``L``.
    """
    rows: List[Dict[str, object]] = []
    for length in lengths:
        # keep Sf ~ 2730/L shape but scaled so the smallest length is ~17% dense,
        # mirroring the paper's 16k configuration
        sparsity = min(1.0, longnet_sparsity_factor(length, w0=32))
        window = local_window_for_sparsity(length, sparsity)
        csr_mask = LocalMask(window=window).to_csr(length)
        q, k, v = random_qkv(length, head_dim, dtype=np.float32, seed=seed)
        cells = {
            "flash": measure(lambda: flash_attention(q, k, v), protocol=protocol),
            "local": measure(lambda: local_attention(q, k, v, window), protocol=protocol),
            "csr": measure(lambda: csr_attention(q, k, v, csr_mask), protocol=protocol),
        }
        for algorithm, cell in cells.items():
            rows.append(
                {
                    "L": length,
                    "algorithm": algorithm,
                    "Sf": None if algorithm == "flash" else sparsity,
                    "measured_s": cell.mean_seconds,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 5 — FlashAttention vs Local, constant window / constant sparsity
# --------------------------------------------------------------------------- #
def fig5_modeled(
    device_name: str = "a100",
    *,
    lengths: Sequence[int] = (65_536, 131_072, 262_144, 524_288, 1_048_576, 2_097_152),
    windows: Sequence[int] = (5, 50, 500),
    sparsities: Sequence[float] = (1e-2, 1e-3, 1e-4),
    head_dim: int = 64,
) -> List[Dict[str, object]]:
    """Modelled runtimes for both panels of Fig. 5."""
    model = RuntimeModel(get_device(device_name))
    rows: List[Dict[str, object]] = []
    for length in lengths:
        flash_seconds = model.estimate("flash", length, head_dim, dtype="fp16").seconds
        rows.append(
            {"panel": "both", "L": length, "series": "flash", "modeled_s": flash_seconds}
        )
        for window in windows:
            sf = LocalMask(window=window + 1).sparsity_factor(length)
            est = model.estimate("local", length, head_dim, sparsity_factor=sf, dtype="fp16")
            rows.append(
                {"panel": "constant_window", "L": length, "series": f"window={window}", "modeled_s": est.seconds}
            )
        for sparsity in sparsities:
            est = model.estimate("local", length, head_dim, sparsity_factor=sparsity, dtype="fp16")
            rows.append(
                {"panel": "constant_sparsity", "L": length, "series": f"Sf={sparsity}", "modeled_s": est.seconds}
            )
    return rows


def fig5_measured(
    *,
    lengths: Sequence[int] = (1_024, 2_048, 4_096, 8_192),
    windows: Sequence[int] = (5, 50),
    sparsities: Sequence[float] = (1e-2, 5e-2),
    head_dim: int = 32,
    protocol: BenchmarkProtocol = BenchmarkProtocol(warmup=1, iterations=3),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured CPU analogue of Fig. 5 at reduced context lengths."""
    rows: List[Dict[str, object]] = []
    for length in lengths:
        q, k, v = random_qkv(length, head_dim, dtype=np.float32, seed=seed)
        flash_cell = measure(lambda: flash_attention(q, k, v), protocol=protocol)
        rows.append({"panel": "both", "L": length, "series": "flash", "measured_s": flash_cell.mean_seconds})
        for window in windows:
            cell = measure(lambda: local_attention(q, k, v, window + 1), protocol=protocol)
            rows.append(
                {"panel": "constant_window", "L": length, "series": f"window={window}", "measured_s": cell.mean_seconds}
            )
        for sparsity in sparsities:
            window = local_window_for_sparsity(length, sparsity)
            cell = measure(lambda: local_attention(q, k, v, window), protocol=protocol)
            rows.append(
                {"panel": "constant_sparsity", "L": length, "series": f"Sf={sparsity}", "measured_s": cell.mean_seconds}
            )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 6 — popular attention masks (Longformer / BigBird)
# --------------------------------------------------------------------------- #
def fig6_measured(
    *,
    lengths: Sequence[int] = (2_048, 4_096, 6_144),
    reach: int = 50,
    num_global: int = 3,
    dilation: int = 2,
    random_sparsity: float = 1e-3,
    head_dim: int = 32,
    protocol: BenchmarkProtocol = BenchmarkProtocol(warmup=1, iterations=3),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measured CPU analogue of Fig. 6 at reduced context lengths.

    For every mask the SDP baseline, the sequential specialised kernels and a
    single CSR call on the union mask are timed, matching the three curves of
    each panel.
    """
    rows: List[Dict[str, object]] = []
    for length in lengths:
        globals_ = default_global_tokens(length, num_global)
        q, k, v = random_qkv(length, head_dim, dtype=np.float32, seed=seed)

        # Longformer: local + global
        lf_mask = longformer_mask(reach=reach, global_tokens=globals_)
        lf_csr = lf_mask.to_csr(length)
        rows.extend(
            _fig6_panel_rows(
                "longformer_local_global",
                length,
                sdp=lambda: sdp_attention(q, k, v, lf_csr),
                composed=lambda: longformer_attention(q, k, v, reach=reach, global_tokens=globals_),
                csr=lambda: csr_attention(q, k, v, lf_csr),
                protocol=protocol,
            )
        )

        # Longformer: dilated local + global (CSR only, like the paper)
        lfd_mask = longformer_dilated_mask(reach=reach, global_tokens=globals_, dilation=dilation)
        lfd_csr = lfd_mask.to_csr(length)
        rows.extend(
            _fig6_panel_rows(
                "longformer_dilated_global",
                length,
                sdp=lambda: sdp_attention(q, k, v, lfd_csr),
                composed=None,
                csr=lambda: csr_attention(q, k, v, lfd_csr),
                protocol=protocol,
            )
        )

        # BigBird: local + global + random
        bb_mask = bigbird_mask(
            reach=reach, global_tokens=globals_, random_sparsity=random_sparsity, seed=seed
        )
        bb_csr = bb_mask.to_csr(length)
        rows.extend(
            _fig6_panel_rows(
                "bigbird_local_global_random",
                length,
                sdp=lambda: sdp_attention(q, k, v, bb_csr),
                composed=lambda: bigbird_attention(
                    q, k, v, reach=reach, global_tokens=globals_,
                    random_sparsity=random_sparsity, seed=seed,
                ),
                csr=lambda: csr_attention(q, k, v, bb_csr),
                protocol=protocol,
            )
        )
    return rows


def _fig6_panel_rows(panel, length, *, sdp, composed, csr, protocol) -> List[Dict[str, object]]:
    rows = []
    runners = {"sdp": sdp, "composed": composed, "csr": csr}
    for series, runner in runners.items():
        if runner is None:
            continue
        cell = measure(runner, protocol=protocol)
        rows.append({"panel": panel, "L": length, "series": series, "measured_s": cell.mean_seconds})
    return rows


def fig6_modeled(
    device_name: str = "a100",
    *,
    lengths: Sequence[int] = (30_000, 35_000, 40_000, 45_000),
    reach: int = 50,
    num_global: int = 3,
    random_sparsity: float = 1e-3,
    head_dim: int = 64,
) -> List[Dict[str, object]]:
    """Modelled A100 runtimes for the three Fig. 6 panels at the paper's lengths."""
    model = RuntimeModel(get_device(device_name))
    rows: List[Dict[str, object]] = []
    for length in lengths:
        window = reach + 1
        local_sf = LocalMask(window=window).sparsity_factor(length)
        global_mask = GlobalNonLocalMask(default_global_tokens(length, num_global), window=window)
        global_sf = global_mask.nnz(length) / float(length * length)

        def _graph(algorithm, sf, calls=1):
            return model.estimate(
                algorithm, length, head_dim, sparsity_factor=sf, dtype="fp32", kernel_calls=calls
            ).seconds

        sdp_s = model.estimate("sdp", length, head_dim, dtype="fp32").seconds
        panels = {
            "longformer_local_global": {
                "sdp": sdp_s,
                "composed": _graph("local", local_sf) + _graph("global", global_sf),
                "csr": _graph("csr", local_sf + global_sf),
            },
            "longformer_dilated_global": {
                "sdp": sdp_s,
                "csr": _graph("csr", local_sf + global_sf),
            },
            "bigbird_local_global_random": {
                "sdp": sdp_s,
                "composed": _graph("local", local_sf)
                + _graph("global", global_sf)
                + _graph("csr", random_sparsity),
                "csr": _graph("csr", local_sf + global_sf + random_sparsity),
            },
        }
        for panel, series in panels.items():
            for name, seconds in series.items():
                rows.append({"panel": panel, "L": length, "series": name, "modeled_s": seconds})
    return rows
