"""Reference values reported in the paper, for side-by-side comparison.

Only values printed in the paper (tables or explicitly stated in the text) are
recorded here; figure-only data points are not transcribed.  EXPERIMENTS.md
pairs these with the numbers this repository reproduces.
"""

from __future__ import annotations

#: Table II — theoretical maximum context lengths on one A100 80 GB, Sf = 1e-4.
#: Keys: (dtype, head_dim, heads) -> algorithm -> max L (None = unsupported).
PAPER_TABLE2 = {
    ("fp32", 64, 1): {
        "sdp": 146_416, "csr": 9_732_519, "coo": 8_038_418, "flash": None,
        "local": 83_235_801, "global": 83_235_769, "dilated1d": 83_235_801, "dilated2d": 83_235_801,
    },
    ("fp32", 128, 1): {
        "sdp": 146_288, "csr": 9_152_140, "coo": 7_644_258, "flash": None,
        "local": 41_779_838, "global": 41_779_830, "dilated1d": 41_779_838, "dilated2d": 41_779_838,
    },
    ("fp32", 128, 32): {
        "sdp": 25_651, "csr": 950_434, "coo": 865_272, "flash": None,
        "local": 1_305_620, "global": 1_305_620, "dilated1d": 1_305_620, "dilated2d": 1_305_620,
    },
    ("fp16", 64, 1): {
        "sdp": 207_116, "csr": 14_013_926, "coo": 9_009_893, "flash": 166_471_601,
        "local": 166_471_601, "global": 166_471_472, "dilated1d": 166_471_601, "dilated2d": 166_471_601,
    },
    ("fp16", 128, 1): {
        "sdp": 206_988, "csr": 13_416_404, "coo": 8_764_655, "flash": 83_559_676,
        "local": 83_559_676, "global": 83_559_643, "dilated1d": 83_559_676, "dilated2d": 83_559_676,
    },
    ("fp16", 128, 32): {
        "sdp": 36_381, "csr": 1_601_190, "coo": 1_200_336, "flash": 2_611_240,
        "local": 2_611_240, "global": 2_611_239, "dilated1d": 2_611_240, "dilated2d": 2_611_240,
    },
}

#: Table III — average runtimes (seconds) on the A100, FP16, long context lengths.
#: Entries: context length -> algorithm -> (sparsity factor, seconds).
PAPER_TABLE3 = {
    160_000_000: {"flash": (None, 37_477.25), "local": (1e-5, 733.93)},
    16_000_000: {"flash": (None, 372.35), "local": (1.7e-4, 124.67), "csr": (4e-5, 32.46)},
    8_000_000: {"flash": (None, 92.88), "local": (3.4e-4, 62.32), "csr": (1e-4, 20.49)},
    1_600_000: {"flash": (None, 3.48), "local": (1.7e-3, 12.46), "csr": (1.7e-3, 13.67)},
}

#: Section V-C — average speedups over masked SDP at Sf < 0.001, per GPU.
PAPER_FIG3_SPEEDUPS = {
    "v100": {"dilated2d": 13.37, "dilated1d": 6.74, "local": 7.87, "global": 1.40, "csr": 9.85},
    "l40": {"dilated2d": 42.12, "dilated1d": 26.40, "local": 27.56, "global": 2.87, "csr": 31.59},
    "a100": {"dilated2d": 11.88, "dilated1d": 6.95, "local": 8.07, "global": 0.87, "csr": 7.81},
}

#: Section V-C — COO speedups over SDP at Sf < 0.1 (i.e. COO is ~1000x slower).
PAPER_COO_SPEEDUPS = {"v100": 0.002, "l40": 0.003, "a100": 0.001}

#: Section V-E / Fig. 5 — Local (Sf = 1e-4) speedup over FlashAttention.
PAPER_FIG5_SPEEDUPS = {65_536: 1.41, 2_097_152: 4.46}

#: Abstract / Section I — headline speedups over FlashAttention.
PAPER_HEADLINE_SPEEDUPS = {2_097_152: 4.46, 160_000_000: 51.06}

#: Section V-D text — Local speedups over FlashAttention at long context lengths.
PAPER_TABLE3_SPEEDUPS = {1_600_000: 0.28, 8_000_000: 1.49, 16_000_000: 2.99, 160_000_000: 51.06}

#: Fig. 6 configuration (Section V-F).
PAPER_FIG6_CONFIG = {
    "context_lengths": (30_000, 35_000, 40_000, 45_000),
    "reach": 50,
    "num_global_tokens": 3,
    "dilation": 2,
    "random_sparsity": 1e-3,
}

#: Fig. 3 sweep configuration (Section V-C).
PAPER_FIG3_CONFIG = {
    "context_lengths": (8_192, 16_384, 24_576),
    "head_dims": (64, 128, 256),
    "dilation": 1,
    "coo_max_length": 8_192,
    "coo_max_sparsity": 0.4,
    "warmup": 10,
    "iterations": 15,
}

#: LongNet sparsity schedule parameters used in Section II-D.
PAPER_LONGNET = {"alpha": 2.0, "w0": 2048, "dot_products_per_token": 2730}
