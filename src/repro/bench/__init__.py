"""Benchmark harness and experiment drivers.

``repro.bench`` holds everything the ``benchmarks/`` directory shares:

* :mod:`repro.bench.harness` — the paper's measurement protocol (10 warm-up
  runs, 15 timed runs, mean reported) wrapped around arbitrary callables;
* :mod:`repro.bench.sweeps` — cartesian parameter sweeps with deterministic
  per-cell seeds;
* :mod:`repro.bench.reporting` — plain-text tables and series so each
  benchmark prints the same rows/curves the paper's figures show;
* :mod:`repro.bench.experiments` — one driver per paper table/figure
  combining *measured* CPU runs of the NumPy kernels (at reduced context
  lengths) with *modelled* GPU numbers from :mod:`repro.perfmodel` (at the
  paper's context lengths), plus the paper's reported values for comparison.
"""

from repro.bench.harness import BenchmarkProtocol, MeasuredCell, measure
from repro.bench.reporting import format_series, format_table
from repro.bench.sweeps import sweep_grid

__all__ = [
    "BenchmarkProtocol",
    "MeasuredCell",
    "format_series",
    "format_table",
    "measure",
    "sweep_grid",
]
