"""Measurement protocol used by every benchmark.

Sections V-C through V-F use the same protocol: "each algorithm had ten warm
up runs and then was timed for 15 benchmark runs with the average runtime
reported".  :class:`BenchmarkProtocol` captures those knobs (the repo defaults
are reduced so CPU benchmark suites finish in minutes; pass
``BenchmarkProtocol.paper()`` for the full protocol) and :func:`measure`
executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.utils.timing import TimingResult, benchmark_callable


@dataclass(frozen=True)
class BenchmarkProtocol:
    """Warm-up / iteration counts for one benchmark cell."""

    warmup: int = 2
    iterations: int = 5

    @classmethod
    def paper(cls) -> "BenchmarkProtocol":
        """The paper's protocol: 10 warm-up runs, 15 timed runs."""
        return cls(warmup=10, iterations=15)

    @classmethod
    def quick(cls) -> "BenchmarkProtocol":
        """Single warm-up, three timed runs — for smoke tests."""
        return cls(warmup=1, iterations=3)


@dataclass
class MeasuredCell:
    """One measured benchmark cell: the configuration plus its timing summary."""

    label: str
    params: Dict[str, object]
    timing: TimingResult
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        return self.timing.mean

    @property
    def min_seconds(self) -> float:
        return self.timing.minimum

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict suitable for the reporting helpers."""
        row: Dict[str, object] = {"label": self.label}
        row.update(self.params)
        row["mean_s"] = self.mean_seconds
        row["std_s"] = self.timing.stddev
        row.update(self.extra)
        return row


def measure(
    func: Callable[[], object],
    *,
    label: str = "",
    params: Optional[Dict[str, object]] = None,
    protocol: BenchmarkProtocol = BenchmarkProtocol(),
    extra: Optional[Dict[str, object]] = None,
) -> MeasuredCell:
    """Run ``func`` under the benchmark protocol and return a measured cell."""
    timing = benchmark_callable(
        func, warmup=protocol.warmup, iterations=protocol.iterations, label=label
    )
    return MeasuredCell(label=label, params=dict(params or {}), timing=timing, extra=dict(extra or {}))
