"""Parameter sweep helpers.

The microbenchmarks of Fig. 3 sweep the cartesian product of context length,
embedded dimension and sparsity factor; :func:`sweep_grid` generates those
cells with a deterministic per-cell seed so that every (algorithm, L, dk, Sf)
combination sees the same Q/K/V data across algorithms — matching the paper's
"identical for both functions" setup.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.utils.rng import derive_seed


def sweep_grid(
    axes: Dict[str, Sequence[object]],
    *,
    base_seed: int = 0,
    skip: Iterable[Dict[str, object]] = (),
) -> Iterator[Dict[str, object]]:
    """Yield one dict per cell of the cartesian product of ``axes``.

    Each cell receives a ``"seed"`` entry derived from the base seed and the
    cell's coordinate values.  ``skip`` lists partial configurations to omit —
    e.g. the paper skips ``L = 24,576`` on the V100 (memory) and restricts COO
    to ``L = 8,192``.
    """
    names: List[str] = list(axes)
    skip_list = [dict(s) for s in skip]
    for values in itertools.product(*(axes[name] for name in names)):
        cell = dict(zip(names, values))
        if any(all(cell.get(k) == v for k, v in s.items()) for s in skip_list):
            continue
        cell["seed"] = derive_seed(base_seed, *(f"{k}={cell[k]}" for k in names))
        yield cell


def cells_as_list(axes: Dict[str, Sequence[object]], **kwargs) -> List[Dict[str, object]]:
    """Materialise :func:`sweep_grid` into a list (convenience for reporting)."""
    return list(sweep_grid(axes, **kwargs))
