"""Plain-text reporting of benchmark tables and series.

The benchmarks regenerate the paper's tables and figures as text: tables are
rendered with aligned columns, figures as one labelled series per line (the
x-axis values and the y values), which is enough to eyeball the shapes the
paper plots — who wins, by how much, where curves cross.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}" if magnitude < 1 else f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered: List[List[str]] = [[_format_value(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    *,
    x_label: str = "x",
    title: str = "",
) -> str:
    """Render named y-series over a shared x axis (the text analogue of a figure)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label}: " + ", ".join(_format_value(x) for x in x_values))
    for name, values in series.items():
        lines.append(f"  {name}: " + ", ".join(_format_value(v) for v in values))
    return "\n".join(lines)


def speedup_summary(times: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Speedup of every entry relative to ``baseline`` (baseline / entry)."""
    base = times[baseline]
    return {name: (base / value if value else float("inf")) for name, value in times.items()}
