"""Ablations on the design choices DESIGN.md calls out.

* vectorised vs streamed executor — the cost of executing Algorithm 1
  literally (one online-softmax update per edge) versus the segment-reduction
  form of the same work;
* CSR vs COO explicit formats — the row-search penalty (Section V-C);
* truly-sparse CSR vs block-sparse FlashAttention — the excess work a block
  kernel pays on zeros inside touched tiles (Section III);
* single CSR call vs sequential specialised kernels on a composite mask
  (Section V-F's two execution strategies);
* work-model evaluation cost (it is used inside benchmark loops, so it must
  itself be cheap).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compose import longformer_attention
from repro.core.explicit_kernels import coo_attention, csr_attention
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import local_attention
from repro.masks.presets import default_global_tokens, longformer_mask
from repro.masks.windowed import LocalMask
from repro.sparse.block import blockify
from repro.utils.rng import random_qkv
from repro.work.optimality import check_work_optimality

LENGTH = 1_024
HEAD_DIM = 32
WINDOW = 17


@pytest.fixture(scope="module")
def ablation_data():
    q, k, v = random_qkv(LENGTH, HEAD_DIM, dtype=np.float32, seed=7)
    mask = LocalMask(window=WINDOW)
    csr = mask.to_csr(LENGTH)
    return q, k, v, mask, csr


class TestExecutorAblation:
    def test_vectorized_executor(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        benchmark.group = "ablation executor"
        benchmark(csr_attention, q, k, v, csr, executor="vectorized")

    def test_streamed_executor(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        benchmark.group = "ablation executor"
        # streamed = literal Algorithm 1; expected orders of magnitude slower on CPU
        benchmark.pedantic(
            lambda: csr_attention(q, k, v, csr, executor="streamed"), rounds=1, iterations=1
        )


class TestFormatAblation:
    def test_csr_format(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        benchmark.group = "ablation sparse format"
        result = benchmark(csr_attention, q, k, v, csr)
        assert result.ops.search_steps == 0

    def test_coo_format(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        coo = csr.to_coo()
        benchmark.group = "ablation sparse format"
        result = benchmark(coo_attention, q, k, v, coo)
        assert result.ops.search_steps > 0
        benchmark.extra_info["search_steps"] = result.ops.search_steps


class TestBlockSparseAblation:
    def test_truly_sparse_csr(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        benchmark.group = "ablation true sparsity vs block sparsity"
        result = benchmark(csr_attention, q, k, v, csr)
        benchmark.extra_info["computed_dot_products"] = result.ops.dot_products

    def test_block_sparse_flash(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        blocks = blockify(csr.to_coo(), block_size=64)
        benchmark.group = "ablation true sparsity vs block sparsity"
        result = benchmark(flash_attention, q, k, v, block_q=64, block_k=64, block_mask=blocks)
        benchmark.extra_info["computed_dot_products"] = result.ops.dot_products
        benchmark.extra_info["wasted_dot_products"] = result.ops.wasted_dot_products
        assert result.ops.wasted_dot_products > 0


class TestCompositionAblation:
    def test_single_csr_call_on_union(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        globals_ = default_global_tokens(LENGTH, 3)
        union = longformer_mask(reach=WINDOW - 1, global_tokens=globals_).to_csr(LENGTH)
        benchmark.group = "ablation composition strategy"
        benchmark(csr_attention, q, k, v, union)

    def test_sequential_specialised_kernels(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        globals_ = default_global_tokens(LENGTH, 3)
        benchmark.group = "ablation composition strategy"
        benchmark(longformer_attention, q, k, v, reach=WINDOW - 1, global_tokens=globals_)


class TestWorkModelOverhead:
    def test_work_optimality_check_is_cheap(self, benchmark, ablation_data):
        q, k, v, mask, csr = ablation_data
        result = local_attention(q, k, v, WINDOW)
        benchmark.group = "ablation work model"
        report = benchmark(check_work_optimality, result, csr.nnz, HEAD_DIM)
        assert report.is_work_optimal
