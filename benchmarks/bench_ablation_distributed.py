"""Ablation — sequence-parallel execution and partitioning strategies (Section VI-A).

Measures the simulated distributed pipeline end to end (partition + all-gather
+ per-rank graph kernels + concatenation) for different rank counts and
partitioners, on the skewed Longformer mask where partition quality matters.
The point of the ablation: edge-balanced partitioning keeps the critical rank's
work flat as ranks are added, while the naive equal-row split does not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.partition_balance import evaluate_partitions
from repro.distributed.sequence_parallel import sequence_parallel_attention
from repro.masks.presets import default_global_tokens, longformer_mask
from repro.utils.rng import random_qkv

LENGTH = 1_024
HEAD_DIM = 32


@pytest.fixture(scope="module")
def distributed_data():
    q, k, v = random_qkv(LENGTH, HEAD_DIM, dtype=np.float32, seed=31)
    mask = longformer_mask(reach=12, global_tokens=default_global_tokens(LENGTH, 3)).to_csr(LENGTH)
    return q, k, v, mask


@pytest.mark.parametrize("num_ranks", [1, 4, 8])
def test_sequence_parallel_scaling(benchmark, distributed_data, num_ranks):
    q, k, v, mask = distributed_data
    benchmark.group = "ablation sequence-parallel rank count"
    result = benchmark(sequence_parallel_attention, q, k, v, mask, num_ranks=num_ranks)
    benchmark.extra_info["load_balance"] = result.load_balance()
    benchmark.extra_info["comm_bytes"] = result.comm_stats.bytes_moved


@pytest.mark.parametrize("balance_by_edges", [False, True], ids=["equal-rows", "edge-balanced"])
def test_partitioning_strategy(benchmark, distributed_data, balance_by_edges):
    q, k, v, mask = distributed_data
    benchmark.group = "ablation partitioning strategy"
    result = benchmark(
        sequence_parallel_attention, q, k, v, mask, num_ranks=8, balance_by_edges=balance_by_edges
    )
    benchmark.extra_info["load_balance"] = result.load_balance()


def test_partition_quality_analysis(benchmark, distributed_data):
    q, k, v, mask = distributed_data
    benchmark.group = "ablation partitioning strategy"
    quality = benchmark(evaluate_partitions, mask, 8)
    benchmark.extra_info["balance_by_strategy"] = {
        name: round(q_.balance, 3) for name, q_ in quality.items()
    }
    assert quality["greedy"].balance <= quality["contiguous"].balance
