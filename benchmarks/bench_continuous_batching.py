"""Iteration-level continuous batching vs. caller-driven decode serving.

The baseline is what independent callers can do without the loop: open a
paged session per stream, prefill, then advance each stream one
``server.decode_step`` at a time — uncoordinated clients cannot stack their
steps, so every token pays a full singleton kernel dispatch.  The loop
(:class:`repro.serve.ContinuousBatchingScheduler`) forms each iteration's
batch itself: same-plan prompt chunks fuse into stacked prefill passes and
every generating stream contributes one token to a stacked decode pass.

At 8 / 32 / 128 concurrent streams (8 / 32 in ``--quick`` CI mode) the
benchmark measures end-to-end tokens/sec, per-token latency (the time
between one stream's consecutive tokens: a full round-robin cycle for the
baseline, one iteration for the loop; p50/p99 reported), and — in a
separate tight-pool configuration — the preemption overhead of the swap
machinery (preemption count, swapped bytes, fraction of wall time).

Acceptance: the loop must serve >= 2x the baseline's throughput at 32
concurrent streams (asserted in ``--quick`` CI mode and in the full run);
the script exits non-zero otherwise.  Outputs are verified against the
one-shot oracle before any number counts.

Results are appended as one JSON record to ``BENCH_loop.json`` at the
repository root.

Run:  PYTHONPATH=src python benchmarks/bench_continuous_batching.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.engine import GraphAttentionEngine
from repro.masks.windowed import LocalMask
from repro.obs import NULL_OBS, Observability
from repro.serve import (
    AttentionServer,
    ServingClient,
    ContinuousBatchingScheduler,
    LoopRequest,
    SwapStore,
    attention_tolerance,
    decode_reference_mask,
)
from repro.utils.rng import random_qkv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_loop.json"

#: Acceptance threshold: loop throughput over caller-driven at 32 streams.
THROUGHPUT_THRESHOLD = 2.0

#: Acceptance bound: the disabled recorder (every hook behind one
#: ``if obs.enabled:`` check) must not cost measurable throughput — its
#: best-of-N tokens/sec may not fall more than this fraction below the
#: fully *enabled* recorder's (which does strictly more work per hook).
OBS_OVERHEAD_BOUND = 0.02

DIM = 32
PROMPT = 32
DECODE = 48
WINDOW = 17
BLOCK_SIZE = 16


def _workload(streams):
    mask = LocalMask(window=WINDOW)
    horizon = PROMPT + DECODE
    data = [random_qkv(horizon, DIM, dtype=np.float32, seed=s) for s in range(streams)]
    return mask, horizon, data


def _verify(outputs, mask, horizon, data, storage="fp32"):
    """Outputs must match the one-shot oracle before any number counts."""
    engine = GraphAttentionEngine()
    q, k, v = data[0]
    reference = engine.run(q, k, v, decode_reference_mask(mask, horizon))
    # quantized pools pay the documented storage-dtype error bound on top of
    # the fp32 accumulation-roundoff floor
    amplitude = max(float(np.abs(k).max()), float(np.abs(v).max()))
    atol = max(attention_tolerance(storage, amplitude, DIM), 1e-5)
    np.testing.assert_allclose(outputs, reference.output, atol=atol, rtol=1e-5)


def _measure_baseline(streams):
    """Caller-driven serving: per-stream prefill + singleton decode steps."""
    mask, horizon, data = _workload(streams)
    server = AttentionServer(cache_capacity=8)
    server.create_block_pool(
        key_dim=DIM, num_blocks=streams * (horizon // BLOCK_SIZE + 2), block_size=BLOCK_SIZE
    )
    client = ServingClient(server)
    started = time.perf_counter()
    sessions = []
    for q, k, v in data:
        session = client.open_session(mask, horizon, retain_outputs=True, paged=True)
        session.prefill(q[:PROMPT], k[:PROMPT], v[:PROMPT])
        sessions.append(session)
    cycles = []
    for i in range(PROMPT, horizon):
        cycle_started = time.perf_counter()
        for session, (q, k, v) in zip(sessions, data):
            server.decode_step(session, q[i], k[i], v[i])
        cycles.append(time.perf_counter() - cycle_started)
    wall = time.perf_counter() - started
    _verify(sessions[0].outputs(), mask, horizon, data)
    for session in sessions:
        server.close_decode_session(session)
    assert server.block_pool.blocks_in_use == 0
    server.close()
    total_tokens = streams * horizon
    return {
        "wall_seconds": wall,
        "tokens_per_second": total_tokens / wall,
        "decode_tokens_per_second": streams * DECODE / sum(cycles),
        # a stream's next token completes one full round-robin cycle later
        "token_latency_p50_ms": float(np.percentile(cycles, 50) * 1e3),
        "token_latency_p99_ms": float(np.percentile(cycles, 99) * 1e3),
    }


def _measure_loop(
    streams, *, num_blocks=None, preemption="auto", storage=None, obs=NULL_OBS
):
    """The iteration-level loop over the same workload."""
    mask, horizon, data = _workload(streams)
    server = AttentionServer(cache_capacity=8, obs=obs)
    pool = server.create_block_pool(
        key_dim=DIM,
        num_blocks=num_blocks or streams * (horizon // BLOCK_SIZE + 2),
        block_size=BLOCK_SIZE,
        name="bench",
        storage=storage,
    )
    swap_store = SwapStore()
    scheduler = ContinuousBatchingScheduler(
        server,
        max_streams=streams,
        prefill_chunk=PROMPT,
        preemption=preemption,
        swap_store=swap_store,
    )
    started = time.perf_counter()
    rids = [
        scheduler.submit(LoopRequest(q=q, k=k, v=v, mask=mask, prompt_tokens=PROMPT))
        for q, k, v in data
    ]
    # step manually so per-token latency covers decode-only iterations — the
    # same population the baseline's round-robin cycles measure (prefill
    # iterations would otherwise masquerade as the decode p99)
    decode_iterations = []
    while scheduler.active:
        iteration_started = time.perf_counter()
        report = scheduler.step()
        if report.decode_tokens > 0 and report.prefill_tokens == 0:
            decode_iterations.append(time.perf_counter() - iteration_started)
    results = scheduler.results
    wall = time.perf_counter() - started
    _verify(results[rids[0]], mask, horizon, data, storage=pool.storage)
    assert pool.blocks_in_use == 0
    server.close()
    stats = scheduler.stats
    if not decode_iterations:
        # a storm config may mix prefill into every iteration; fall back to
        # every token-emitting iteration rather than an empty percentile
        decode_iterations = [s for s, t in stats.iteration_log if t > 0]
    total_tokens = streams * horizon
    return {
        "storage": pool.storage,
        "wall_seconds": wall,
        "tokens_per_second": total_tokens / wall,
        "decode_tokens_per_second": (
            stats.decode_tokens / stats.wall_seconds if stats.wall_seconds else 0.0
        ),
        # a token emitted in an iteration completes when the iteration does
        "token_latency_p50_ms": float(np.percentile(decode_iterations, 50) * 1e3),
        "token_latency_p99_ms": float(np.percentile(decode_iterations, 99) * 1e3),
        "iterations": stats.iterations,
        "stacked_decode_executions": server.stats.decode_stacked_executions,
        "stacked_prefill_executions": server.stats.prefill_stacked_executions,
        "preemptions": stats.preemptions,
        "swap_outs": stats.swap_outs,
        "swap_bytes": swap_store.stats.bytes_out,
        "preemption_seconds": stats.preemption_seconds,
        "preemption_overhead_fraction": (
            stats.preemption_seconds / wall if wall > 0 else 0.0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced CI configuration")
    args = parser.parse_args()

    stream_counts = (8, 32) if args.quick else (8, 32, 128)
    rows = []
    ratio_at_32 = None
    print(
        f"== Continuous batching: prompt={PROMPT}, +{DECODE} decoded, d_k={DIM}, "
        f"window={WINDOW}, block_size={BLOCK_SIZE}"
    )
    for streams in stream_counts:
        baseline = _measure_baseline(streams)
        loop = _measure_loop(streams)
        ratio = loop["tokens_per_second"] / baseline["tokens_per_second"]
        if streams == 32:
            ratio_at_32 = ratio
        rows.append(
            {"streams": streams, "baseline": baseline, "loop": loop, "speedup": ratio}
        )
        print(
            f"   {streams:4d} streams: caller-driven "
            f"{baseline['tokens_per_second']:8,.0f} tok/s "
            f"(p50 {baseline['token_latency_p50_ms']:6.2f} ms, "
            f"p99 {baseline['token_latency_p99_ms']:6.2f} ms)  |  loop "
            f"{loop['tokens_per_second']:8,.0f} tok/s "
            f"(p50 {loop['token_latency_p50_ms']:6.2f} ms, "
            f"p99 {loop['token_latency_p99_ms']:6.2f} ms)  ->  {ratio:.2f}x"
        )

    # preemption overhead: a pool that fits roughly half the streams, so the
    # loop must constantly swap victims out and back in
    storm_streams = 8 if args.quick else 32
    horizon_blocks = (PROMPT + DECODE) // BLOCK_SIZE + 2
    storm = _measure_loop(
        storm_streams,
        num_blocks=max(horizon_blocks + 2, storm_streams * horizon_blocks // 2),
        preemption="swap",
    )
    print(
        f"   storm ({storm_streams} streams, half-size pool): "
        f"{storm['preemptions']} preemptions, "
        f"{storm['swap_bytes'] / 1e6:.2f} MB swapped, "
        f"{storm['preemption_overhead_fraction']:.1%} of wall in preemption, "
        f"{storm['tokens_per_second']:,.0f} tok/s"
    )

    # storage sweep: the same loop workload on quantized KV pools — tokens/sec
    # per storage dtype, with the verify gate at each format's error bound
    sweep_streams = 8 if args.quick else 32
    storage_sweep = []
    for storage in ("fp32", "fp16", "int8"):
        run = _measure_loop(sweep_streams, storage=storage)
        storage_sweep.append(
            {
                "storage": storage,
                "streams": sweep_streams,
                "tokens_per_second": run["tokens_per_second"],
                "decode_tokens_per_second": run["decode_tokens_per_second"],
                "token_latency_p50_ms": run["token_latency_p50_ms"],
                "token_latency_p99_ms": run["token_latency_p99_ms"],
            }
        )
        print(
            f"   storage {storage:5s} ({sweep_streams} streams): "
            f"{run['tokens_per_second']:8,.0f} tok/s "
            f"(p50 {run['token_latency_p50_ms']:6.2f} ms, "
            f"p99 {run['token_latency_p99_ms']:6.2f} ms)"
        )

    # observability overhead: best-of-3 with the disabled recorder vs best-of-3
    # with metrics+tracing fully enabled; the disabled path must not lose
    # throughput even against the path doing strictly more work per hook
    obs_streams = 8
    repeats = 3
    disabled_tps = max(
        _measure_loop(obs_streams)["tokens_per_second"] for _ in range(repeats)
    )
    enabled_obs = None
    enabled_tps = 0.0
    for _ in range(repeats):
        obs = Observability()
        tps = _measure_loop(obs_streams, obs=obs)["tokens_per_second"]
        if tps > enabled_tps:
            enabled_tps, enabled_obs = tps, obs
    obs_overhead = {
        "streams": obs_streams,
        "disabled_tokens_per_second": disabled_tps,
        "enabled_tokens_per_second": enabled_tps,
        "enabled_over_disabled": enabled_tps / disabled_tps if disabled_tps else 0.0,
    }
    print(
        f"   obs overhead ({obs_streams} streams, best of {repeats}): disabled "
        f"{disabled_tps:,.0f} tok/s, enabled {enabled_tps:,.0f} tok/s "
        f"({obs_overhead['enabled_over_disabled']:.3f}x)"
    )

    record = {
        "benchmark": "bench_continuous_batching",
        "quick": bool(args.quick),
        "config": {
            "dim": DIM,
            "prompt": PROMPT,
            "decode": DECODE,
            "window": WINDOW,
            "block_size": BLOCK_SIZE,
        },
        "results": rows,
        "preemption_storm": {"streams": storm_streams, **storm},
        "storage_sweep": storage_sweep,
        "obs_overhead": obs_overhead,
        # registry snapshot from the enabled run, in the shared JSON schema
        "metrics": enabled_obs.snapshot().to_dict()["metrics"],
    }
    history = []
    if RECORD_PATH.exists():
        try:
            history = json.loads(RECORD_PATH.read_text())
            if not isinstance(history, list):
                history = [history]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"   record appended to {RECORD_PATH.name}")

    if disabled_tps < enabled_tps * (1.0 - OBS_OVERHEAD_BOUND):
        print(
            f"FAIL: disabled-recorder throughput {disabled_tps:,.0f} tok/s fell more "
            f"than {OBS_OVERHEAD_BOUND:.0%} below the enabled recorder's "
            f"{enabled_tps:,.0f} tok/s — the no-op path is not free",
            file=sys.stderr,
        )
        return 1

    if ratio_at_32 is None or ratio_at_32 < THROUGHPUT_THRESHOLD:
        print(
            f"FAIL: loop speedup {ratio_at_32 if ratio_at_32 else 0:.2f}x at 32 "
            f"streams below the {THROUGHPUT_THRESHOLD:.0f}x threshold",
            file=sys.stderr,
        )
        return 1
    print(
        f"   acceptance ok: loop serves {ratio_at_32:.1f}x the caller-driven "
        f"throughput at 32 streams (threshold {THROUGHPUT_THRESHOLD:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
