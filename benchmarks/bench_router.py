"""Multi-replica routed serving vs. one replica, on the virtual clock.

The workload is the router's home turf: 32 decode streams in 4 prefix
families, each family sharing a 36-token K/V prompt with 4 private decoded
tokens on top — 90% of every stream's tokens live in the shared prefix.
Submitted through a :class:`repro.serve.ReplicaRouter`, the affinity policy
sends every family member after the first to the replica that already holds
the family's blocks (28 of 32 routes hit), and each router step advances all
busy replicas through one iteration of the *same* virtual tick — replicas
model independent workers, exactly as the perfmodel's analytical scaling
curve ``N / (1 + (1 - h) · s)`` assumes.

Measured per replica count (1, 2, 4): aggregate tokens per **virtual**
second (the capacity metric: how many iterations of one replica's clock the
cluster needs to drain the queue), wall-clock tokens/sec for reference, the
route-hit rate, and the perfmodel's predicted scaling next to the measured
one.

Acceptance (asserted, exit 1 on failure):

* every stream's routed output is **bit-identical** to the single-replica
  run — before any number counts;
* prefix-affinity route-hit rate >= 0.8 at 4 replicas;
* >= 1.8x aggregate tokens per virtual second at 4 replicas vs one — the
  conservative floor: a cold router (hit rate 0) would scale only ~2.1x,
  and a broken one that serialized replicas would scale 1.0x.

Results are appended as one JSON record to ``BENCH_router.json`` at the
repository root.

Run:  PYTHONPATH=src python benchmarks/bench_router.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.perfmodel import router_throughput_scaling
from repro.serve import LoopRequest, ReplicaRouter, VirtualClock

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_router.json"

#: Acceptance floors at 4 replicas (see module docstring).
SCALING_THRESHOLD = 1.8
HIT_RATE_THRESHOLD = 0.8

DIM = 16
PROMPT = 36
DECODE = 4
TOTAL = PROMPT + DECODE  # shared prefix = 36/40 = 90% of every stream
BLOCK_SIZE = 4
FAMILIES = 4
PER_FAMILY = 8
MAX_STREAMS = 8  # per replica
#: per-replica pool: 8 resident streams x 12 blocks (10 + CoW/restore slack)
NUM_BLOCKS = 96


def _workload(seed=0):
    """32 stream specs in 4 families sharing a full-block K/V prompt each."""
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(FAMILIES):
        pk = rng.normal(size=(PROMPT, DIM)).astype(np.float32)
        pv = rng.normal(size=(PROMPT, DIM)).astype(np.float32)
        for _ in range(PER_FAMILY):
            specs.append(
                {
                    "q": rng.normal(size=(TOTAL, DIM)).astype(np.float32),
                    "k": np.concatenate(
                        [pk, rng.normal(size=(DECODE, DIM)).astype(np.float32)]
                    ),
                    "v": np.concatenate(
                        [pv, rng.normal(size=(DECODE, DIM)).astype(np.float32)]
                    ),
                }
            )
    return specs


def _measure(specs, replicas, *, router_policy="affinity", threaded=False):
    clock = VirtualClock()
    router = ReplicaRouter(
        replicas,
        key_dim=DIM,
        num_blocks=NUM_BLOCKS,
        block_size=BLOCK_SIZE,
        max_streams=MAX_STREAMS,
        prefill_chunk=PROMPT,
        clock=clock,
        router_policy=router_policy,
        rebalance_interval=0,
        threaded=threaded,
    )
    started = time.perf_counter()
    rids = [
        router.submit(
            LoopRequest(
                q=spec["q"], k=spec["k"], v=spec["v"], mask=None, prompt_tokens=PROMPT
            )
        )
        for spec in specs
    ]
    router.run()
    wall = time.perf_counter() - started
    virtual = clock.now()
    outputs = [router.results[rid] for rid in rids]
    stats = router.stats
    for handle in router.replicas:
        assert handle.pool.blocks_in_use == 0, "bench leaked blocks at drain"
    router.close()
    total_tokens = len(specs) * TOTAL
    return {
        "replicas": replicas,
        "router_policy": router_policy,
        "threaded": threaded,
        "iterations": int(virtual),
        "virtual_seconds": virtual,
        "tokens_per_virtual_second": total_tokens / virtual,
        "wall_seconds": wall,
        "tokens_per_wall_second": total_tokens / wall,
        "route_hit_rate": stats.route_hit_rate,
        "route_hits": stats.route_hits,
        "route_misses": stats.route_misses,
        "outputs": outputs,
    }


def _strip(run):
    """The JSON-safe record row (outputs verified, then dropped)."""
    return {key: value for key, value in run.items() if key != "outputs"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced CI configuration")
    args = parser.parse_args()

    specs = _workload()
    total_tokens = len(specs) * TOTAL
    print(
        f"== Replica routing: {FAMILIES} families x {PER_FAMILY} streams, "
        f"prompt={PROMPT} shared, +{DECODE} decoded ({PROMPT / TOTAL:.0%} shared), "
        f"d_k={DIM}, block_size={BLOCK_SIZE}, max_streams={MAX_STREAMS}/replica"
    )

    replica_counts = (1, 4) if args.quick else (1, 2, 4)
    runs = {n: _measure(specs, n) for n in replica_counts}
    baseline = runs[1]

    # ---- the bit-exactness gate: routed == single replica, stream by stream
    mismatches = 0
    for n, run in runs.items():
        for got, want in zip(run["outputs"], baseline["outputs"]):
            if not np.array_equal(got, want):
                mismatches += 1
        if n != 1 and mismatches == 0:
            print(f"   {n} replicas: all {len(specs)} streams bit-identical to 1 replica")
    if mismatches:
        print(
            f"FAIL: {mismatches} routed streams diverged from the single-replica "
            f"oracle — routing changed computation",
            file=sys.stderr,
        )
        return 1

    rows = []
    for n in replica_counts:
        run = runs[n]
        scaling = run["tokens_per_virtual_second"] / baseline["tokens_per_virtual_second"]
        predicted = router_throughput_scaling(
            n,
            route_hit_rate=run["route_hit_rate"],
            shared_prefill_fraction=PROMPT / TOTAL,
        )
        rows.append({**_strip(run), "scaling": scaling, "predicted_scaling": predicted})
        print(
            f"   {n} replicas: {run['iterations']:4d} virtual iterations, "
            f"{run['tokens_per_virtual_second']:7.1f} tok/virtual-s "
            f"({run['tokens_per_wall_second']:9,.0f} tok/wall-s), "
            f"hit rate {run['route_hit_rate']:.3f}  ->  {scaling:.2f}x "
            f"(model {predicted:.2f}x)"
        )

    # ---- routing-policy comparison at 4 replicas: what affinity buys
    policy_rows = []
    for policy in ("affinity", "round_robin"):
        run = runs[4] if policy == "affinity" else _measure(specs, 4, router_policy=policy)
        policy_rows.append(_strip(run))
        if policy != "affinity":
            print(
                f"   policy {policy}: hit rate {run['route_hit_rate']:.3f}, "
                f"{run['tokens_per_virtual_second']:7.1f} tok/virtual-s"
            )

    # ---- wall-clock threaded stepping, informational (GIL-bound on CPU)
    threaded_row = None
    if not args.quick:
        run = _measure(specs, 4, threaded=True)
        threaded_row = _strip(run)
        print(
            f"   threaded stepping: {run['tokens_per_wall_second']:9,.0f} tok/wall-s "
            f"vs {runs[4]['tokens_per_wall_second']:9,.0f} serial"
        )

    scaling_at_4 = next(row["scaling"] for row in rows if row["replicas"] == 4)
    hit_rate_at_4 = runs[4]["route_hit_rate"]

    record = {
        "benchmark": "bench_router",
        "quick": bool(args.quick),
        "config": {
            "dim": DIM,
            "prompt": PROMPT,
            "decode": DECODE,
            "families": FAMILIES,
            "per_family": PER_FAMILY,
            "block_size": BLOCK_SIZE,
            "max_streams": MAX_STREAMS,
            "num_blocks": NUM_BLOCKS,
            "shared_prefill_fraction": PROMPT / TOTAL,
            "total_tokens": total_tokens,
        },
        "results": rows,
        "policies": policy_rows,
        "threaded": threaded_row,
        "scaling_at_4": scaling_at_4,
        "hit_rate_at_4": hit_rate_at_4,
    }
    history = []
    if RECORD_PATH.exists():
        try:
            history = json.loads(RECORD_PATH.read_text())
            if not isinstance(history, list):
                history = [history]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"   record appended to {RECORD_PATH.name}")

    if hit_rate_at_4 < HIT_RATE_THRESHOLD:
        print(
            f"FAIL: route-hit rate {hit_rate_at_4:.3f} at 4 replicas below the "
            f"{HIT_RATE_THRESHOLD} floor — prefix affinity is not landing",
            file=sys.stderr,
        )
        return 1
    if scaling_at_4 < SCALING_THRESHOLD:
        print(
            f"FAIL: {scaling_at_4:.2f}x aggregate throughput at 4 replicas below "
            f"the {SCALING_THRESHOLD}x threshold",
            file=sys.stderr,
        )
        return 1
    print(
        f"   acceptance ok: {scaling_at_4:.2f}x at 4 replicas "
        f"(threshold {SCALING_THRESHOLD}x), hit rate {hit_rate_at_4:.3f} "
        f"(floor {HIT_RATE_THRESHOLD})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
