"""Shared fixtures and configuration for the benchmark suite.

Every paper table/figure has a corresponding ``bench_*.py`` module.  Measured
benchmarks run the NumPy kernels on CPU at reduced context lengths (the
hardware substitution documented in DESIGN.md); where the paper's numbers come
from its 80 GB A100, the analytical models regenerate them and the results are
attached to the benchmark records as ``extra_info`` so they appear in the
saved benchmark JSON alongside the measured timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import random_qkv

#: Context length used by the measured (CPU) benchmark cells.
BENCH_LENGTH = 2_048
#: Embedded dimension used by the measured benchmark cells (paper uses 64-256).
BENCH_DIM = 64


@pytest.fixture(scope="session")
def bench_qkv():
    """Q/K/V at the measured benchmark scale (float32, uniform [0, 1))."""
    return random_qkv(BENCH_LENGTH, BENCH_DIM, dtype=np.float32, seed=2024)


@pytest.fixture(scope="session")
def bench_qkv_small():
    """Smaller Q/K/V for the slow baselines (dense SDP / COO search)."""
    return random_qkv(1_024, 32, dtype=np.float32, seed=2025)
