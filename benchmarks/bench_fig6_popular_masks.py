"""Fig. 6 — popular attention masks: Longformer and BigBird execution strategies.

For each of the three panels (Longformer local+global, Longformer
dilated+global, BigBird local+global+random) the same three strategies the
paper times are measured: the dense masked SDP baseline, the sequential
specialised kernels, and a single CSR call on the union mask.  The paper's
finding — the sparse strategies overtake SDP as the context grows, and a
single CSR call matches or beats the sequential composition — is visible in
the grouped results; the modelled A100 numbers at the paper's 30k-45k lengths
are attached as ``extra_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import fig6_modeled
from repro.core.compose import bigbird_attention, longformer_attention
from repro.core.dense import sdp_attention
from repro.core.explicit_kernels import csr_attention
from repro.masks.presets import (
    bigbird_mask,
    default_global_tokens,
    longformer_dilated_mask,
    longformer_mask,
)
from repro.utils.rng import random_qkv

LENGTH = 2_048
HEAD_DIM = 32
REACH = 50
RANDOM_SPARSITY = 1e-3


@pytest.fixture(scope="module")
def fig6_data():
    q, k, v = random_qkv(LENGTH, HEAD_DIM, dtype=np.float32, seed=66)
    globals_ = default_global_tokens(LENGTH, 3)
    masks = {
        "longformer": longformer_mask(reach=REACH, global_tokens=globals_).to_csr(LENGTH),
        "longformer_dilated": longformer_dilated_mask(
            reach=REACH, global_tokens=globals_, dilation=2
        ).to_csr(LENGTH),
        "bigbird": bigbird_mask(
            reach=REACH, global_tokens=globals_, random_sparsity=RANDOM_SPARSITY, seed=66
        ).to_csr(LENGTH),
    }
    return q, k, v, globals_, masks


# --------------------------------------------------------------------------- #
# Longformer (local + global)
# --------------------------------------------------------------------------- #
def test_fig6_longformer_sdp(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 Longformer (local+global)"
    benchmark.extra_info["modeled_a100_fig6"] = fig6_modeled(lengths=(30_000, 45_000))
    benchmark(sdp_attention, q, k, v, masks["longformer"])


def test_fig6_longformer_composed(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 Longformer (local+global)"
    benchmark(longformer_attention, q, k, v, reach=REACH, global_tokens=globals_)


def test_fig6_longformer_csr(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 Longformer (local+global)"
    benchmark(csr_attention, q, k, v, masks["longformer"])


# --------------------------------------------------------------------------- #
# Longformer (dilated local + global)
# --------------------------------------------------------------------------- #
def test_fig6_longformer_dilated_sdp(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 Longformer (dilated+global)"
    benchmark(sdp_attention, q, k, v, masks["longformer_dilated"])


def test_fig6_longformer_dilated_csr(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 Longformer (dilated+global)"
    benchmark(csr_attention, q, k, v, masks["longformer_dilated"])


# --------------------------------------------------------------------------- #
# BigBird (local + global + random)
# --------------------------------------------------------------------------- #
def test_fig6_bigbird_sdp(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 BigBird (local+global+random)"
    benchmark(sdp_attention, q, k, v, masks["bigbird"])


def test_fig6_bigbird_composed(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 BigBird (local+global+random)"
    benchmark(
        bigbird_attention,
        q, k, v,
        reach=REACH,
        global_tokens=globals_,
        random_sparsity=RANDOM_SPARSITY,
        seed=66,
    )


def test_fig6_bigbird_csr(benchmark, fig6_data):
    q, k, v, globals_, masks = fig6_data
    benchmark.group = "fig6 BigBird (local+global+random)"
    benchmark(csr_attention, q, k, v, masks["bigbird"])
