"""Serving throughput: warm plan-cache batches vs. per-request engine dispatch.

The acceptance scenario for the serving subsystem: N repeated requests for one
composed mask (Longformer Loc + Glo) served through an
:class:`~repro.serve.scheduler.AttentionServer` with a warm plan cache,
compared against N independent ``GraphAttentionEngine.run()`` calls, each of
which re-materialises the mask components and re-runs the union/difference
set algebra before touching a kernel.  The warm server pays that cost once,
so its per-request time collapses to the kernel sequence alone.

Run with ``pytest benchmarks/bench_serving_throughput.py`` (requires
pytest-benchmark); set ``BENCH_SERVE_REQUESTS`` to scale the request count.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import GraphAttentionEngine
from repro.masks.presets import default_global_tokens, longformer_mask
from repro.serve.scheduler import AttentionServer
from repro.serve.session import AttentionRequest
from repro.utils.rng import random_qkv

LENGTH = 1_024
HEAD_DIM = 32
REACH = 50
NUM_REQUESTS = int(os.environ.get("BENCH_SERVE_REQUESTS", "1000"))


@pytest.fixture(scope="module")
def serving_data():
    q, k, v = random_qkv(LENGTH, HEAD_DIM, seed=2026)
    mask = longformer_mask(reach=REACH, global_tokens=default_global_tokens(LENGTH, 2))
    return q, k, v, mask


def _serve_warm(q, k, v, mask, n):
    server = AttentionServer(cache_capacity=4)
    server.plan_for(mask, LENGTH)  # warm the cache before traffic arrives
    server.serve([AttentionRequest(q=q, k=k, v=v, mask=mask) for _ in range(n)])
    return server


def _engine_loop(q, k, v, mask, n):
    engine = GraphAttentionEngine()
    for _ in range(n):
        engine.run(q, k, v, mask)
    return engine


def test_serving_warm_cache(benchmark, serving_data):
    q, k, v, mask = serving_data
    benchmark.group = f"serving throughput (N={NUM_REQUESTS}, Longformer Loc+Glo)"
    benchmark.pedantic(_serve_warm, args=(q, k, v, mask, NUM_REQUESTS), rounds=1, iterations=1)


def test_engine_run_per_request(benchmark, serving_data):
    q, k, v, mask = serving_data
    benchmark.group = f"serving throughput (N={NUM_REQUESTS}, Longformer Loc+Glo)"
    benchmark.pedantic(_engine_loop, args=(q, k, v, mask, NUM_REQUESTS), rounds=1, iterations=1)


def test_plan_compilation_cost(benchmark, serving_data):
    """The one-off cost the warm cache amortises: compile one composed plan."""
    _, _, _, mask = serving_data
    engine = GraphAttentionEngine()
    benchmark.group = "plan compilation (Longformer Loc+Glo)"
    benchmark(engine.plan, mask, LENGTH)


def test_warm_serving_faster_per_request(benchmark, serving_data):
    """Acceptance: warm-cache serving beats per-request dispatch, same outputs."""
    q, k, v, mask = serving_data
    n = min(NUM_REQUESTS, 200)

    start = time.perf_counter()
    server = _serve_warm(q, k, v, mask, n)
    warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine = _engine_loop(q, k, v, mask, n)
    engine_seconds = time.perf_counter() - start

    speedup = engine_seconds / warm_seconds
    benchmark.group = "serving speedup summary"
    benchmark.extra_info.update(
        {
            "requests": n,
            "warm_per_request_s": warm_seconds / n,
            "engine_per_request_s": engine_seconds / n,
            "speedup": speedup,
            "cache_hit_rate": server.cache.stats.hit_rate,
        }
    )
    assert warm_seconds < engine_seconds, (
        f"warm serving {warm_seconds:.3f}s vs engine loop {engine_seconds:.3f}s "
        f"for {n} requests (speedup {speedup:.2f}x)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
