"""Fig. 5 — FlashAttention vs Local attention: constant window and constant sparsity.

Left panel: a fixed local window means the mask keeps getting sparser as L
grows, so the gap over FlashAttention widens.  Right panel: a fixed sparsity
factor means the window grows with L; the paper reports the speedup rising
from 1.41x at 65k to 4.46x at 2M.  Both panels are measured on CPU at reduced
lengths and regenerated analytically at the paper's lengths (``extra_info``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import fig5_modeled
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import local_attention
from repro.masks.solvers import local_window_for_sparsity
from repro.utils.rng import random_qkv

MEASURED_LENGTHS = (1_024, 4_096)
HEAD_DIM = 32
CONSTANT_WINDOW = 50
CONSTANT_SPARSITY = 0.01


@pytest.fixture(scope="module", params=MEASURED_LENGTHS, ids=lambda L: f"L{L}")
def fig5_case(request):
    length = request.param
    q, k, v = random_qkv(length, HEAD_DIM, dtype=np.float32, seed=length)
    return length, q, k, v


def test_fig5_flash_baseline(benchmark, fig5_case):
    length, q, k, v = fig5_case
    benchmark.group = f"fig5 L={length}"
    benchmark.extra_info["modeled_a100_fig5"] = fig5_modeled(lengths=(65_536, 2_097_152))
    benchmark(flash_attention, q, k, v, block_q=256, block_k=256)


def test_fig5_local_constant_window(benchmark, fig5_case):
    length, q, k, v = fig5_case
    benchmark.group = f"fig5 L={length}"
    benchmark.extra_info["window"] = CONSTANT_WINDOW
    benchmark(local_attention, q, k, v, CONSTANT_WINDOW + 1)


def test_fig5_local_constant_sparsity(benchmark, fig5_case):
    length, q, k, v = fig5_case
    window = local_window_for_sparsity(length, CONSTANT_SPARSITY)
    benchmark.group = f"fig5 L={length}"
    benchmark.extra_info["sparsity_factor"] = CONSTANT_SPARSITY
    benchmark.extra_info["window"] = window
    benchmark(local_attention, q, k, v, window)


def test_fig5_modeled_speedup_trend(benchmark):
    """Constant-sparsity speedup over FlashAttention grows with L (1.4x -> ~4.5x)."""
    benchmark.group = "fig5 modeled"
    rows = benchmark(fig5_modeled, lengths=(65_536, 524_288, 2_097_152), windows=(50,), sparsities=(1e-4,))
    flash = {r["L"]: r["modeled_s"] for r in rows if r["series"] == "flash"}
    local = {r["L"]: r["modeled_s"] for r in rows if r["series"] == "Sf=0.0001"}
    speedups = [flash[L] / local[L] for L in sorted(flash)]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] == pytest.approx(4.46, rel=0.25)
