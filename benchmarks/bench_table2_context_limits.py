"""Table II — theoretical maximum context lengths on one A100 80 GB.

The table is an analytical product of the memory model, so the "benchmark"
measures the solver itself while asserting that the regenerated limits match
the paper's printed values; the full table is attached as ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.bench.paper_reference import PAPER_TABLE2
from repro.perfmodel.context_limits import context_limit_table
from repro.perfmodel.devices import A100_SXM4_80GB
from repro.perfmodel.memory import max_context_length


def test_table2_full_table(benchmark):
    benchmark.group = "table2 context limits"
    rows = benchmark(context_limit_table, A100_SXM4_80GB, accounting="paper")
    table = {}
    for row in rows:
        key = f"{row.dtype}-dk{row.head_dim}-h{row.heads}"
        table[key] = {alg: limit for alg, limit in row.limits.items()}
    benchmark.extra_info["table2"] = table
    # spot check the headline cells against the paper
    fp16_64 = next(r for r in rows if r.dtype == "fp16" and r.head_dim == 64)
    assert fp16_64.limits["local"] == pytest.approx(166_471_601, rel=1e-3)
    assert fp16_64.limits["sdp"] == pytest.approx(207_116, rel=1e-3)


@pytest.mark.parametrize("algorithm", ["sdp", "csr", "coo", "local", "flash"])
def test_table2_per_algorithm_solver(benchmark, algorithm):
    benchmark.group = "table2 solver"
    dtype = "fp16"
    result = benchmark(
        max_context_length,
        algorithm,
        A100_SXM4_80GB,
        dtype=dtype,
        head_dim=64,
        heads=1,
        sparsity_factor=1e-4,
        accounting="paper",
    )
    expected = PAPER_TABLE2[("fp16", 64, 1)][algorithm]
    tolerance = 0.001 if algorithm in ("sdp", "flash", "local") else 0.01
    assert result == pytest.approx(expected, rel=tolerance)
    benchmark.extra_info["paper_value"] = expected
    benchmark.extra_info["reproduced_value"] = result
