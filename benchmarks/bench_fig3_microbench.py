"""Fig. 3 — microbenchmarks of all seven algorithms across sparsity factors.

The paper sweeps L ∈ {8k, 16k, 24k}, dk ∈ {64, 128, 256} and Sf ∈ (0, 1] on
three GPUs.  Here the same seven algorithms (masked SDP baseline plus the six
graph kernels) are measured on CPU at L = 2,048, dk = 64 for a high and a low
sparsity factor — enough to reproduce the figure's shape: SDP is flat in Sf,
the graph kernels scale with Sf and overtake SDP once the mask is sparse, COO
pays its row-search penalty.  The analytical A100/L40/V100 speedup summary at
the paper's scales is attached as ``extra_info`` on the SDP baseline cells.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig3_masks_for_sparsity, fig3_modeled_speedups
from repro.core.dense import sdp_attention
from repro.core.explicit_kernels import coo_attention, csr_attention
from repro.core.implicit_kernels import (
    dilated1d_attention,
    dilated2d_attention,
    global_attention,
    local_attention,
)

#: Context length of the measured cells (must match ``conftest.BENCH_LENGTH``).
BENCH_LENGTH = 2_048

#: The two sparsity regimes benchmarked: "dense-ish" (SDP should win) and
#: "sparse" (the graph kernels should win), bracketing the paper's crossover.
SPARSITY_LEVELS = {"dense_mask": 0.20, "sparse_mask": 0.01}


def _mask_params(sparsity):
    return fig3_masks_for_sparsity(BENCH_LENGTH, sparsity)


@pytest.fixture(scope="module", params=list(SPARSITY_LEVELS.items()), ids=lambda p: p[0])
def sparsity_case(request):
    label, sparsity = request.param
    params = _mask_params(sparsity)
    explicit_csr = params["explicit"].to_csr(BENCH_LENGTH)
    return {
        "label": label,
        "sparsity": sparsity,
        "params": params,
        "csr": explicit_csr,
        "coo": explicit_csr.to_coo(),
    }


def test_fig3_sdp_masked(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark.extra_info["modeled_a100_speedups_over_sdp"] = fig3_modeled_speedups("a100")
    benchmark.extra_info["modeled_l40_speedups_over_sdp"] = fig3_modeled_speedups("l40")
    benchmark.extra_info["modeled_v100_speedups_over_sdp"] = fig3_modeled_speedups("v100")
    benchmark(sdp_attention, q, k, v, sparsity_case["csr"])


def test_fig3_csr(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(csr_attention, q, k, v, sparsity_case["csr"])


def test_fig3_coo(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(coo_attention, q, k, v, sparsity_case["coo"])


def test_fig3_local(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    window = sparsity_case["params"]["local"]["window"]
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(local_attention, q, k, v, window)


def test_fig3_dilated1d(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    params = sparsity_case["params"]["dilated1d"]
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(dilated1d_attention, q, k, v, params["window"], params["dilation"])


def test_fig3_dilated2d(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    params = sparsity_case["params"]["dilated2d"]
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(dilated2d_attention, q, k, v, params["block_size"], params["dilation"])


def test_fig3_global(benchmark, bench_qkv, sparsity_case):
    q, k, v = bench_qkv
    params = sparsity_case["params"]["global"]
    benchmark.group = f"fig3 Sf={sparsity_case['sparsity']}"
    benchmark(global_attention, q, k, v, params["global_tokens"], params["window"])
