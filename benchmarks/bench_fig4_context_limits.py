"""Fig. 4 — maximum context length vs sparsity factor (A100, dk ∈ {64, 128}, FP32/FP16).

Regenerates every curve of the four panels with the analytical memory model;
the benchmark measures the sweep and attaches the series to ``extra_info`` so
the curves (who is flat, who grows with sparsity, the SDP / CSR / COO ordering)
can be read straight from the benchmark record.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig4_series

SPARSITIES = (1e-4, 1e-3, 1e-2, 1e-1, 1.0)
PANELS = [
    ("fp32", 64),
    ("fp16", 64),
    ("fp32", 128),
    ("fp16", 128),
]


@pytest.mark.parametrize("dtype,head_dim", PANELS, ids=[f"{d}-dk{k}" for d, k in PANELS])
def test_fig4_panel(benchmark, dtype, head_dim):
    benchmark.group = "fig4 context-limit curves"
    series = benchmark(fig4_series, head_dim=head_dim, dtype=dtype, sparsities=SPARSITIES)
    benchmark.extra_info["series"] = {
        name: values for name, values in series.items() if name != "sparsity_factors"
    }
    # figure shape assertions (ratio thresholds, never bare float equality:
    # these are computed limits, and an exact == is one rounding change from
    # a flaky failure that names no tolerance)
    flat = series["local"]
    assert flat[0] == pytest.approx(flat[-1], rel=1e-9), (
        "implicit kernels are sparsity independent"
    )
    csr = series["csr"]
    assert csr[0] > csr[-1], "CSR limit grows as the mask becomes sparser"
    # at high sparsity the explicit formats reach far beyond SDP; at Sf = 1 their
    # per-edge storage makes them *worse* than the dense score matrix (the dip
    # visible at the right edge of Fig. 4)
    assert csr[0] > 40 * series["sdp"][0], "sparse formats beat dense SDP at high sparsity"
    assert csr[-1] < series["sdp"][-1], "dense masks favour SDP storage"
    if dtype == "fp32":
        assert all(value is None for value in series["flash"]), "FlashAttention unsupported on FP32"
    else:
        assert series["flash"][0] >= csr[0], "FlashAttention limit matches the implicit kernels"
