"""Table III — FlashAttention vs Local vs CSR at long context lengths.

The paper measures L up to 160 M on an 80 GB A100; here the same three
algorithms are measured on CPU at the largest lengths that stay fast enough
for a benchmark suite, with the sparsity following the LongNet-style schedule
exactly as the paper does (denser masks at short L, sparser masks at long L).
The analytical A100 reproduction of the full Table III — which lands within
~15 % of every printed value — is attached as ``extra_info`` on the flash
cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import table3_modeled
from repro.core.explicit_kernels import csr_attention
from repro.core.flash import flash_attention
from repro.core.implicit_kernels import local_attention
from repro.masks.solvers import local_window_for_sparsity, longnet_sparsity_factor
from repro.masks.windowed import LocalMask
from repro.utils.rng import random_qkv

#: Measured context lengths (scaled-down stand-ins for the paper's 1.6M-160M).
MEASURED_LENGTHS = (2_048, 4_096)
HEAD_DIM = 32


def _setup(length):
    # keep the *relative* sparsity schedule of Section II-D: Sf ∝ 1/L
    sparsity = min(1.0, longnet_sparsity_factor(length, w0=48))
    window = local_window_for_sparsity(length, sparsity)
    csr = LocalMask(window=window).to_csr(length)
    q, k, v = random_qkv(length, HEAD_DIM, dtype=np.float32, seed=length)
    return q, k, v, window, csr, sparsity


@pytest.fixture(scope="module", params=MEASURED_LENGTHS, ids=lambda L: f"L{L}")
def table3_case(request):
    return request.param, _setup(request.param)


def test_table3_flash(benchmark, table3_case):
    length, (q, k, v, window, csr, sparsity) = table3_case
    benchmark.group = f"table3 L={length}"
    benchmark.extra_info["modeled_a100_table3"] = [
        {k2: (float(v2) if isinstance(v2, (int, float)) and v2 is not None else v2) for k2, v2 in row.items()}
        for row in table3_modeled()
    ]
    benchmark(flash_attention, q, k, v, block_q=256, block_k=256)


def test_table3_local(benchmark, table3_case):
    length, (q, k, v, window, csr, sparsity) = table3_case
    benchmark.group = f"table3 L={length}"
    benchmark.extra_info["sparsity_factor"] = sparsity
    benchmark(local_attention, q, k, v, window)


def test_table3_csr(benchmark, table3_case):
    length, (q, k, v, window, csr, sparsity) = table3_case
    benchmark.group = f"table3 L={length}"
    benchmark.extra_info["sparsity_factor"] = sparsity
    benchmark(csr_attention, q, k, v, csr)


def test_table3_modeled_matches_paper(benchmark):
    """The analytical Table III reproduction stays within 15 % of every paper value."""
    benchmark.group = "table3 modeled"
    rows = benchmark(table3_modeled)
    for row in rows:
        assert row["modeled_s"] == pytest.approx(row["paper_s"], rel=0.15), row
