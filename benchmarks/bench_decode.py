"""Incremental decode steps vs. full-prefix recompute.

A serving stack without a KV cache pays one full attention pass over the
whole prefix for every generated token — O(all causal edges · d) per step.
The incremental path of :mod:`repro.serve.decode` attends only the new
token's mask row against the cached K/V — O(row edges · d) — so its
advantage must *widen* as the sequence grows: the recompute cost scales with
the prefix's edge count while the step cost stays bounded by the window.

This benchmark measures both paths for a windowed (local) mask at a sweep of
prefix lengths, checks they agree numerically before timing, and records the
modelled speedup from :class:`repro.perfmodel.decode.DecodeRuntimeModel`
alongside the measured one.

Acceptance: at L=2048 the incremental step must be >= 5x faster than the
full recompute (both in ``--quick`` CI mode and in the full run).  The
script exits non-zero when the threshold is missed, so perf regressions fail
loudly.

Results are appended as one JSON record to ``BENCH_decode.json`` at the
repository root.

Run:  PYTHONPATH=src python benchmarks/bench_decode.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.engine import GraphAttentionEngine
from repro.masks.windowed import LocalMask
from repro.obs import Observability
from repro.perfmodel.decode import DecodeRuntimeModel, kv_cache_bytes
from repro.perfmodel.devices import A100_SXM4_80GB
from repro.serve.decode import DecodeSession, decode_reference_mask
from repro.utils.rng import random_qkv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_decode.json"

#: Acceptance threshold: incremental step speedup over full recompute at the
#: longest measured prefix (L=2048).
SPEEDUP_THRESHOLD = 5.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_length(length, window, dim, repeats):
    """Per-token cost of both paths once the stream holds ``length`` tokens."""
    mask = LocalMask(window=window)
    q, k, v = random_qkv(length, dim, dtype=np.float32, seed=11)
    reference = decode_reference_mask(mask, length)
    engine = GraphAttentionEngine()

    # incremental: a warm session holding length-1 tokens decodes token L-1.
    # Sessions are cheap, so build one per repeat outside the timed region.
    def _warm_session() -> DecodeSession:
        session = DecodeSession.start(mask, length)
        session.prefill(q[: length - 1], k[: length - 1], v[: length - 1])
        return session

    sessions = [_warm_session() for _ in range(repeats)]
    last = iter(sessions)
    incremental = _best_of(lambda: next(last).step(q[-1], k[-1], v[-1]), repeats)

    # recompute: the whole prefix through the one-shot engine (plan reused so
    # only kernel time is measured — the favourable case for the baseline)
    plan = engine.plan(reference, length, compute_key=False)
    recompute = _best_of(lambda: plan.execute(q, k, v), repeats)

    # the timed paths must agree before the comparison means anything
    check = DecodeSession.start(mask, length, retain_outputs=True)
    check.prefill(q[: length - 1], k[: length - 1], v[: length - 1])
    check.step(q[-1], k[-1], v[-1])
    np.testing.assert_allclose(
        check.outputs(), plan.execute(q, k, v).output, atol=1e-6, rtol=1e-6
    )

    row_edges = int(sessions[0].program.causal_row(length - 1).size)
    nnz = reference.nnz
    modelled = DecodeRuntimeModel(A100_SXM4_80GB).speedup_vs_recompute(
        row_edges, nnz, length, dim
    )
    return {
        "length": length,
        "window": window,
        "dim": dim,
        "row_edges": row_edges,
        "prefix_nnz": nnz,
        "kv_cache_bytes_fp32": kv_cache_bytes(length, dim, dtype="fp32"),
        "incremental_step_s": incremental,
        "full_recompute_s": recompute,
        "speedup": recompute / incremental,
        "modelled_speedup_a100": modelled,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced CI configuration")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per cell")
    args = parser.parse_args()

    window, dim = 129, 64  # reach-128 sliding window, Fig. 6-style geometry
    lengths = (256, 1024, 2048) if args.quick else (256, 512, 1024, 2048, 4096)
    repeats = args.repeats or (3 if args.quick else 5)

    print(f"== Incremental decode step vs. full-prefix recompute (w={window}, d={dim})")
    rows = []
    for length in lengths:
        row = _measure_length(length, window, dim, repeats)
        rows.append(row)
        print(
            f"   L={length:>5}: step {row['incremental_step_s'] * 1e6:9.1f} us "
            f"({row['row_edges']} edges) | recompute "
            f"{row['full_recompute_s'] * 1e3:8.2f} ms ({row['prefix_nnz']:,} edges) "
            f"->  {row['speedup']:7.1f}x (modelled {row['modelled_speedup_a100']:.0f}x)"
        )

    # registry snapshot of one untimed instrumented pass over the largest
    # measured cell (engine dispatch counters + kernel-seconds histogram)
    obs = Observability(tracing=False)
    engine = GraphAttentionEngine(obs=obs)
    length = max(lengths)
    q, k, v = random_qkv(length, dim, dtype=np.float32, seed=11)
    engine.run(q, k, v, decode_reference_mask(LocalMask(window=window), length))

    record = {
        "benchmark": "bench_decode",
        "quick": bool(args.quick),
        "config": {"window": window, "dim": dim, "repeats": repeats},
        "results": rows,
        "metrics": obs.snapshot().to_dict()["metrics"],
    }
    history = []
    if RECORD_PATH.exists():
        try:
            history = json.loads(RECORD_PATH.read_text())
            if not isinstance(history, list):
                history = [history]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"   record appended to {RECORD_PATH.name}")

    acceptance = next(r for r in rows if r["length"] == 2048)
    if acceptance["speedup"] < SPEEDUP_THRESHOLD:
        print(
            f"FAIL: L=2048 incremental speedup {acceptance['speedup']:.1f}x below "
            f"the {SPEEDUP_THRESHOLD:.0f}x threshold",
            file=sys.stderr,
        )
        return 1
    margins = [r["speedup"] for r in rows]
    if margins != sorted(margins):
        # the margin should widen with the prefix; warn but don't fail (CI noise)
        print("WARN: speedup did not grow monotonically with L", file=sys.stderr)
    print(
        f"   acceptance ok: L=2048 incremental step is {acceptance['speedup']:.1f}x "
        f"the full recompute (threshold {SPEEDUP_THRESHOLD:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
