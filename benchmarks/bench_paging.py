"""Paged KV cache vs. private per-session buffers: sessions-per-GB capacity.

N concurrent decode streams that share 90% of their prompt store that prefix
once under the paged allocator (chained-hash prefix sharing) and N times
under PR 3's private ``KVCache`` buffers.  This benchmark opens real
sessions through one :class:`~repro.serve.AttentionServer` with a shared
:class:`~repro.serve.paging.BlockPool`, decodes a few tokens on every
stream, verifies the paged outputs are **bit-identical** to private-cache
decoding (and match the one-shot oracle), and then compares the measured
bytes per stream — reported as sessions-per-GB — against the dense
exact-token footprint and against the analytical model
(:func:`repro.perfmodel.decode.paged_sessions_supported`).

Acceptance: with a 90%-shared prompt the paged allocator must fit >= 3x the
sessions per byte of the dense layout (both in ``--quick`` CI mode and in
the full run); the script exits non-zero otherwise.

Results are appended as one JSON record to ``BENCH_paging.json`` at the
repository root.

Run:  PYTHONPATH=src python benchmarks/bench_paging.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.core.engine import GraphAttentionEngine
from repro.masks.windowed import LocalMask
from repro.perfmodel.decode import (
    kv_cache_bytes,
    paged_sessions_supported,
    paging_fragmentation_overhead,
)
from repro.obs import Observability
from repro.serve import AttentionServer
from repro.serve.decode import DecodeSession, decode_reference_mask
from repro.utils.rng import random_qkv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_paging.json"

#: Acceptance threshold: paged sessions-per-byte over the dense layout.
CAPACITY_THRESHOLD = 3.0

GIB = float(1 << 30)


def _measure(streams, prompt, shared, decode_tokens, block_size, dim, window, obs=None):
    mask = LocalMask(window=window)
    horizon = prompt + decode_tokens
    # one shared prefix; every stream gets its own prompt tail + decode tokens
    sq, sk, sv = random_qkv(shared, dim, dtype=np.float32, seed=1)
    tails = [
        random_qkv(horizon - shared, dim, dtype=np.float32, seed=100 + s)
        for s in range(streams)
    ]

    server = AttentionServer(cache_capacity=8, obs=obs)
    pool = server.create_block_pool(
        key_dim=dim,
        num_blocks=streams * (horizon // block_size + 2),
        block_size=block_size,
        name="bench",
    )

    sessions = []
    for s in range(streams):
        session = server.open_decode_session(
            mask, horizon, retain_outputs=True, paged=True, reserve_tokens=0
        )
        tq, tk, tv = tails[s]
        q = np.concatenate([sq, tq])
        k = np.concatenate([sk, tk])
        v = np.concatenate([sv, tv])
        session.prefill(q[:prompt], k[:prompt], v[:prompt])
        sessions.append((session, q, k, v))
    for i in range(prompt, horizon):
        server.decode_steps([(s, q[i], k[i], v[i]) for s, q, k, v in sessions])

    # correctness gate: paged decoding must be bit-identical to a private
    # cache and match the one-shot engine before the capacity numbers count
    session, q, k, v = sessions[0]
    private = DecodeSession.start(mask, horizon, retain_outputs=True)
    private.prefill(q[:prompt], k[:prompt], v[:prompt])
    for i in range(prompt, horizon):
        private.step(q[i], k[i], v[i])
    np.testing.assert_array_equal(session.outputs(), private.outputs())
    oracle = GraphAttentionEngine().run(q, k, v, decode_reference_mask(mask, horizon))
    np.testing.assert_allclose(session.outputs(), oracle.output, atol=1e-5, rtol=1e-5)

    paged_bytes = pool.used_bytes
    private_allocated = private.kv_cache_bytes * streams
    dense_exact = streams * kv_cache_bytes(horizon, dim, dtype="fp32")
    stats = pool.stats.snapshot()
    for session, *_ in sessions:
        server.close_decode_session(session)
    assert pool.blocks_in_use == 0
    server.close()

    modelled = paged_sessions_supported(
        int(GIB),
        prompt_tokens=prompt,
        shared_prefix_tokens=shared,
        decode_tokens=decode_tokens,
        block_size=block_size,
        head_dim=dim,
        dtype="fp32",
    )
    return {
        "streams": streams,
        "prompt_tokens": prompt,
        "shared_prefix_tokens": shared,
        "shared_fraction": shared / prompt,
        "decode_tokens": decode_tokens,
        "block_size": block_size,
        "dim": dim,
        "paged_bytes_total": int(paged_bytes),
        "dense_exact_bytes_total": int(dense_exact),
        "private_allocated_bytes_total": int(private_allocated),
        "capacity_ratio_vs_dense": dense_exact / paged_bytes,
        "capacity_ratio_vs_allocated": private_allocated / paged_bytes,
        "sessions_per_gib_paged": streams * GIB / paged_bytes,
        "sessions_per_gib_dense": streams * GIB / dense_exact,
        "modelled_sessions_per_gib_paged": modelled,
        "share_hits": stats.share_hits,
        "shared_tokens_saved": stats.shared_tokens_saved,
        "cow_copies": stats.cow_copies,
        "fragmentation_overhead_single_stream": paging_fragmentation_overhead(
            horizon, block_size
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced CI configuration")
    args = parser.parse_args()

    dim, window, block_size = 64, 65, 8
    prompt, shared, decode_tokens = 256, 232, 8  # 90.6% shared prefix
    streams = 8 if args.quick else 32

    print(
        f"== Paged KV capacity: {streams} streams, {prompt}-token prompt "
        f"({shared / prompt:.0%} shared), +{decode_tokens} decoded, "
        f"block_size={block_size}"
    )
    obs = Observability(tracing=False)
    row = _measure(streams, prompt, shared, decode_tokens, block_size, dim, window, obs=obs)
    print(
        f"   paged  : {row['paged_bytes_total'] / 1e6:8.2f} MB total "
        f"({row['sessions_per_gib_paged']:,.0f} sessions/GiB, "
        f"{row['share_hits']} share hits, {row['shared_tokens_saved']:,} tokens saved)"
    )
    print(
        f"   dense  : {row['dense_exact_bytes_total'] / 1e6:8.2f} MB exact "
        f"({row['sessions_per_gib_dense']:,.0f} sessions/GiB); private buffers "
        f"actually allocated {row['private_allocated_bytes_total'] / 1e6:.2f} MB"
    )
    print(
        f"   ratio  : {row['capacity_ratio_vs_dense']:.2f}x vs dense exact, "
        f"{row['capacity_ratio_vs_allocated']:.2f}x vs allocated "
        f"(modelled {row['modelled_sessions_per_gib_paged']:,} sessions/GiB)"
    )

    record = {
        "benchmark": "bench_paging",
        "quick": bool(args.quick),
        "results": [row],
        # registry snapshot of the instrumented run (pool events, kernel times)
        "metrics": obs.snapshot().to_dict()["metrics"],
    }
    history = []
    if RECORD_PATH.exists():
        try:
            history = json.loads(RECORD_PATH.read_text())
            if not isinstance(history, list):
                history = [history]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"   record appended to {RECORD_PATH.name}")

    if row["capacity_ratio_vs_dense"] < CAPACITY_THRESHOLD:
        print(
            f"FAIL: capacity ratio {row['capacity_ratio_vs_dense']:.2f}x below "
            f"the {CAPACITY_THRESHOLD:.0f}x threshold",
            file=sys.stderr,
        )
        return 1
    print(
        f"   acceptance ok: paged layout fits "
        f"{row['capacity_ratio_vs_dense']:.1f}x the sessions per byte "
        f"(threshold {CAPACITY_THRESHOLD:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
