"""Paged KV cache vs. private per-session buffers: sessions-per-GB capacity.

N concurrent decode streams that share 90% of their prompt store that prefix
once under the paged allocator (chained-hash prefix sharing) and N times
under PR 3's private ``KVCache`` buffers.  This benchmark opens real
sessions through one :class:`~repro.serve.AttentionServer` with a shared
:class:`~repro.serve.paging.BlockPool`, decodes a few tokens on every
stream, verifies the paged outputs are **bit-identical** to private-cache
decoding (and match the one-shot oracle), and then compares the measured
bytes per stream — reported as sessions-per-GB — against the dense
exact-token footprint and against the analytical model
(:func:`repro.perfmodel.decode.paged_sessions_supported`).

The run sweeps the pool's *storage* dtype (``--storage fp32|fp16|int8|all``):
each format repeats the identical workload on a quantized pool, reports its
sessions-per-GiB next to the max-abs output error versus the fp32 one-shot
oracle, and asserts the error stays within the documented bound
(:func:`repro.serve.quant.attention_tolerance`).  A gather microbenchmark
then times the compiled dequant-gather fast path against the pure-NumPy
fallback (bit-identical results required) on the int8 layout.

Acceptance: with a 90%-shared prompt the paged fp32 allocator must fit
>= 3x the sessions per byte of the dense layout; int8 storage must fit
>= 2x the sessions-per-GiB of fp32 storage with its error inside the bound;
and, when a compiled backend is available, the compiled gather must run
>= 1.5x faster than the NumPy fallback.  The script exits non-zero
otherwise (both in ``--quick`` CI mode and in the full run).

Results are appended as one JSON record to ``BENCH_paging.json`` at the
repository root.

Run:  PYTHONPATH=src python benchmarks/bench_paging.py [--quick] [--storage all]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core import compiled
from repro.core.engine import GraphAttentionEngine
from repro.masks.windowed import LocalMask
from repro.perfmodel.decode import (
    kv_cache_bytes,
    paged_sessions_supported,
    paging_fragmentation_overhead,
)
from repro.obs import Observability
from repro.serve import AttentionServer, ServingClient, attention_tolerance
from repro.serve.decode import DecodeSession, decode_reference_mask
from repro.serve.quant import quantize_rows
from repro.utils.rng import random_qkv

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_paging.json"

#: Acceptance threshold: paged sessions-per-byte over the dense layout (fp32).
CAPACITY_THRESHOLD = 3.0

#: Acceptance threshold: int8 sessions-per-GiB over fp32 sessions-per-GiB.
INT8_CAPACITY_THRESHOLD = 2.0

#: Acceptance threshold: compiled dequant-gather over the NumPy fallback.
GATHER_SPEEDUP_THRESHOLD = 1.5

GIB = float(1 << 30)

STORAGE_SWEEP = ("fp32", "fp16", "int8")


def _measure(
    streams, prompt, shared, decode_tokens, block_size, dim, window, storage, obs=None
):
    mask = LocalMask(window=window)
    horizon = prompt + decode_tokens
    # one shared prefix; every stream gets its own prompt tail + decode tokens
    sq, sk, sv = random_qkv(shared, dim, dtype=np.float32, seed=1)
    tails = [
        random_qkv(horizon - shared, dim, dtype=np.float32, seed=100 + s)
        for s in range(streams)
    ]

    server = AttentionServer(cache_capacity=8, obs=obs)
    pool = server.create_block_pool(
        key_dim=dim,
        num_blocks=streams * (horizon // block_size + 2),
        block_size=block_size,
        name="bench",
        storage=storage,
    )

    client = ServingClient(server)
    sessions = []
    amplitude = 0.0
    for s in range(streams):
        session = client.open_session(
            mask, horizon, retain_outputs=True, paged=True, reserve_tokens=0
        )
        tq, tk, tv = tails[s]
        q = np.concatenate([sq, tq])
        k = np.concatenate([sk, tk])
        v = np.concatenate([sv, tv])
        amplitude = max(amplitude, float(np.abs(k).max()), float(np.abs(v).max()))
        session.prefill(q[:prompt], k[:prompt], v[:prompt])
        sessions.append((session, q, k, v))
    for i in range(prompt, horizon):
        server.decode_steps([(s, q[i], k[i], v[i]) for s, q, k, v in sessions])

    # correctness gate before the capacity numbers count.  fp32 storage must
    # be bit-identical to a private cache; quantized storage must land within
    # the documented attention-error bound of the fp32 one-shot oracle.
    session, q, k, v = sessions[0]
    private_allocated = None
    if storage == "fp32":
        private = DecodeSession.start(mask, horizon, retain_outputs=True)
        private.prefill(q[:prompt], k[:prompt], v[:prompt])
        for i in range(prompt, horizon):
            private.step(q[i], k[i], v[i])
        np.testing.assert_array_equal(session.outputs(), private.outputs())
        private_allocated = private.kv_cache_bytes * streams
    oracle = GraphAttentionEngine().run(q, k, v, decode_reference_mask(mask, horizon))
    max_abs_error = float(np.abs(session.outputs() - oracle.output).max())
    # the fp32 floor covers online-softmax vs. one-shot accumulation roundoff
    error_bound = max(attention_tolerance(storage, amplitude, dim), 1e-5)
    np.testing.assert_allclose(
        session.outputs(), oracle.output, atol=error_bound, rtol=1e-5
    )

    paged_bytes = pool.used_bytes
    dense_exact = streams * kv_cache_bytes(horizon, dim, dtype="fp32")
    stats = pool.stats.snapshot()
    for session, *_ in sessions:
        server.close_decode_session(session)
    assert pool.blocks_in_use == 0
    server.close()

    modelled = paged_sessions_supported(
        int(GIB),
        prompt_tokens=prompt,
        shared_prefix_tokens=shared,
        decode_tokens=decode_tokens,
        block_size=block_size,
        head_dim=dim,
        dtype="fp32",
        storage=storage,
    )
    row = {
        "storage": storage,
        "streams": streams,
        "prompt_tokens": prompt,
        "shared_prefix_tokens": shared,
        "shared_fraction": shared / prompt,
        "decode_tokens": decode_tokens,
        "block_size": block_size,
        "dim": dim,
        "block_bytes": int(pool.block_bytes),
        "paged_bytes_total": int(paged_bytes),
        "dense_exact_bytes_total": int(dense_exact),
        "capacity_ratio_vs_dense": dense_exact / paged_bytes,
        "sessions_per_gib_paged": streams * GIB / paged_bytes,
        "sessions_per_gib_dense": streams * GIB / dense_exact,
        "modelled_sessions_per_gib_paged": modelled,
        "max_abs_error_vs_oracle": max_abs_error,
        "error_bound": error_bound,
        "share_hits": stats.share_hits,
        "shared_tokens_saved": stats.shared_tokens_saved,
        "cow_copies": stats.cow_copies,
        "fragmentation_overhead_single_stream": paging_fragmentation_overhead(
            horizon, block_size
        ),
    }
    if private_allocated is not None:
        row["private_allocated_bytes_total"] = int(private_allocated)
        row["capacity_ratio_vs_allocated"] = private_allocated / paged_bytes
    return row


def _time_best(fn, repeats, inner):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def _gather_microbench(quick):
    """Compiled int8 dequant-gather vs. the NumPy fallback (bit-identical).

    Also cross-checks the fp32 gather for bit-identity so the "compiled path
    changes no fp32 result" claim is exercised on benchmark-sized inputs.
    """
    pool_rows, dim = 8192, 64
    gather_rows = pool_rows // 2
    repeats, inner = (5, 10) if quick else (7, 20)
    rng = np.random.default_rng(7)
    raw = rng.normal(size=(pool_rows, dim)).astype(np.float32)
    arena, scale, zero = quantize_rows(raw)
    rows = rng.integers(0, pool_rows, size=gather_rows).astype(np.int64)

    fast_i8 = compiled.gather_dequant_int8(arena, scale, zero, rows)
    fast_f32 = compiled.gather_rows(raw, rows)
    with compiled.force_backend("numpy"):
        slow_i8 = compiled.gather_dequant_int8(arena, scale, zero, rows)
        slow_f32 = compiled.gather_rows(raw, rows)
    np.testing.assert_array_equal(fast_i8, slow_i8)
    np.testing.assert_array_equal(fast_f32, slow_f32)
    np.testing.assert_array_equal(fast_f32, raw[rows])

    backend = compiled.backend()
    fast = _time_best(
        lambda: compiled.gather_dequant_int8(arena, scale, zero, rows), repeats, inner
    )
    with compiled.force_backend("numpy"):
        slow = _time_best(
            lambda: compiled.gather_dequant_int8(arena, scale, zero, rows),
            repeats,
            inner,
        )
    return {
        "backend": backend,
        "pool_rows": pool_rows,
        "gather_rows": gather_rows,
        "dim": dim,
        "compiled_seconds": fast,
        "numpy_seconds": slow,
        "speedup": slow / fast if fast > 0 else 0.0,
        "bit_identical": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced CI configuration")
    parser.add_argument(
        "--storage",
        choices=STORAGE_SWEEP + ("all",),
        default="all",
        help="pool storage dtype to measure (default: sweep all)",
    )
    args = parser.parse_args()

    dim, window, block_size = 64, 65, 8
    prompt, shared, decode_tokens = 256, 232, 8  # 90.6% shared prefix
    streams = 8 if args.quick else 32
    sweep = STORAGE_SWEEP if args.storage == "all" else (args.storage,)

    print(
        f"== Paged KV capacity: {streams} streams, {prompt}-token prompt "
        f"({shared / prompt:.0%} shared), +{decode_tokens} decoded, "
        f"block_size={block_size}, storage sweep {', '.join(sweep)}"
    )
    obs = Observability(tracing=False)
    rows = {}
    for storage in sweep:
        row = _measure(
            streams,
            prompt,
            shared,
            decode_tokens,
            block_size,
            dim,
            window,
            storage,
            obs=obs,
        )
        rows[storage] = row
        print(
            f"   {storage:5s}: {row['paged_bytes_total'] / 1e6:8.2f} MB total "
            f"({row['sessions_per_gib_paged']:,.0f} sessions/GiB, "
            f"block {row['block_bytes']} B, "
            f"max |err| {row['max_abs_error_vs_oracle']:.2e} "
            f"<= bound {row['error_bound']:.2e})"
        )
    baseline = rows.get("fp32")
    if baseline is not None:
        print(
            f"   dense  : {baseline['dense_exact_bytes_total'] / 1e6:8.2f} MB exact "
            f"({baseline['sessions_per_gib_dense']:,.0f} sessions/GiB); fp32 paged "
            f"fits {baseline['capacity_ratio_vs_dense']:.2f}x "
            f"(modelled {baseline['modelled_sessions_per_gib_paged']:,} sessions/GiB)"
        )

    micro = _gather_microbench(args.quick)
    print(
        f"   gather : backend={micro['backend']} int8 dequant-gather "
        f"{micro['compiled_seconds'] * 1e6:.0f} us vs numpy "
        f"{micro['numpy_seconds'] * 1e6:.0f} us -> {micro['speedup']:.2f}x "
        f"(bit-identical)"
    )

    record = {
        "benchmark": "bench_paging",
        "quick": bool(args.quick),
        "results": [rows[s] for s in sweep],
        "gather_microbench": micro,
        # registry snapshot of the instrumented runs (pool events, kernel times)
        "metrics": obs.snapshot().to_dict()["metrics"],
    }
    history = []
    if RECORD_PATH.exists():
        try:
            history = json.loads(RECORD_PATH.read_text())
            if not isinstance(history, list):
                history = [history]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    RECORD_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"   record appended to {RECORD_PATH.name}")

    failures = []
    if baseline is not None and baseline["capacity_ratio_vs_dense"] < CAPACITY_THRESHOLD:
        failures.append(
            f"fp32 capacity ratio {baseline['capacity_ratio_vs_dense']:.2f}x below "
            f"the {CAPACITY_THRESHOLD:.0f}x threshold"
        )
    if baseline is not None and "int8" in rows:
        int8_ratio = (
            rows["int8"]["sessions_per_gib_paged"] / baseline["sessions_per_gib_paged"]
        )
        if int8_ratio < INT8_CAPACITY_THRESHOLD:
            failures.append(
                f"int8 sessions-per-GiB only {int8_ratio:.2f}x fp32, below the "
                f"{INT8_CAPACITY_THRESHOLD:.1f}x threshold"
            )
        else:
            print(
                f"   acceptance ok: int8 fits {int8_ratio:.2f}x the fp32 "
                f"sessions-per-GiB (threshold {INT8_CAPACITY_THRESHOLD:.1f}x)"
            )
    if micro["backend"] == "numpy":
        print(
            "   note: no compiled backend available; gather speedup not asserted",
            file=sys.stderr,
        )
    elif micro["speedup"] < GATHER_SPEEDUP_THRESHOLD:
        failures.append(
            f"compiled gather speedup {micro['speedup']:.2f}x below the "
            f"{GATHER_SPEEDUP_THRESHOLD:.1f}x threshold"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if baseline is not None:
        print(
            f"   acceptance ok: paged fp32 layout fits "
            f"{baseline['capacity_ratio_vs_dense']:.1f}x the sessions per byte "
            f"(threshold {CAPACITY_THRESHOLD:.0f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
